// Rack-scale request steering at the top-of-rack switch (DESIGN §12).
//
// The paper argues the NIC is the right place for *intra*-server scheduling
// because it sees every request before the host does. RackSched (OSDI '20,
// PAPERS.md) extends the same argument one level up: a ToR switch sees every
// request before any *server* does, so a two-level policy — request-level
// inter-server load balancing at the ToR on top of the per-server NIC
// schedulers this repo already models — approaches a centralized ideal
// scheduler for the whole rack.
//
// `TorScheduler` is that top level. It owns a virtual service endpoint (one
// VIP MAC/IP the clients address), a downlink wire per backend host, and a
// per-host uplink sink that snoops server→client responses for piggybacked
// load feedback before forwarding them on. Steering policies:
//
//   kFlowHash    flow-level ECMP: a five-tuple hash pins each flow to one
//                host. The uninformed baseline that collapses under skew.
//   kRoundRobin  request-level, uninformed.
//   kRandom      request-level, uninformed.
//   kPowerOfTwo  request-level power-of-two-choices on piggybacked feedback
//                (queue depth + EWMA sojourn snooped off responses).
//   kJsqIdeal    join-shortest-queue on an oracle that reads true
//                instantaneous server state — the centralized-ideal upper
//                bound with zero feedback staleness.
//
// Feedback is stale by construction (it rode a response through real wires),
// so staleness is modelled explicitly: samples older than
// `feedback_stale_after` are ignored and the decision falls back to the
// ToR's own outstanding-request count, which is never stale.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "net/ethernet_switch.h"
#include "net/packet.h"
#include "net/wire.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace nicsched::rack {

enum class TorPolicy : std::uint8_t {
  kFlowHash = 0,
  kRoundRobin = 1,
  kRandom = 2,
  kPowerOfTwo = 3,
  kJsqIdeal = 4,
};

const char* to_string(TorPolicy policy);
std::optional<TorPolicy> tor_policy_from_string(std::string_view name);

struct TorParams {
  TorPolicy policy = TorPolicy::kPowerOfTwo;

  /// Per-request steering decision cost in the switch pipeline. RackSched
  /// implements the decision in P4 match-action stages at line rate; a small
  /// constant models the extra pipeline passes.
  sim::Duration decision_latency = sim::Duration::nanos(50);

  /// ToR↔host port propagation + line rate. Rack links are a hop shorter
  /// than the client path and typically faster than host NICs.
  sim::Duration host_link_latency = sim::Duration::nanos(500);
  double host_link_gbps = 40.0;

  /// EWMA smoothing for snooped sojourn samples (per host).
  double sojourn_alpha = 0.3;
  /// How a microsecond of EWMA sojourn trades against one unit of queue
  /// depth when scoring a host.
  double sojourn_weight_per_us = 1.0;
  /// Feedback older than this is ignored; the decision then scores hosts on
  /// the ToR-local outstanding count only. This is the sweepable staleness
  /// knob: 0 disables feedback entirely, Duration::max() trusts any sample.
  sim::Duration feedback_stale_after = sim::Duration::micros(100);

  /// Request→host affinity entries idle longer than this are evicted (and
  /// their outstanding slot reclaimed). Covers client retry horizons.
  sim::Duration affinity_ttl = sim::Duration::millis(5);

  /// Rack-level death verdict: a host with outstanding requests that has
  /// been silent this long is presumed dead; its feedback state is cleared
  /// and informed policies steer away until it is heard from again.
  sim::Duration host_timeout = sim::Duration::millis(1);

  // ---- failure handling (DESIGN §16), everything below default-off -------

  /// Master switch for active failure handling: health probing, host
  /// ejection on probe timeout, draining/re-steering of in-flight requests
  /// off a dead host, and duplicate-response suppression. Off, the ToR
  /// behaves bit-identically to the passive silence-verdict-only design.
  bool failover = false;

  /// Health tick period, and the uplink-silence threshold after which a
  /// probe is sent: a host that produced any uplink frame within the last
  /// interval is presumed alive for free (feedback-silence detection); only
  /// quiet hosts spend a probe.
  sim::Duration probe_interval = sim::Duration::micros(200);

  /// A probe unanswered for this long is a death verdict — the NIC-level
  /// complement to `host_timeout`, which needs outstanding requests to
  /// trigger. Ejection reuses the same epoch machinery; readmission happens
  /// the moment any uplink frame (usually a late probe ack) arrives.
  sim::Duration probe_timeout = sim::Duration::micros(100);

  /// Opt-in hedged requests, informed by the ToR's health view: a request
  /// still unanswered `hedge_after` after its first steer is duplicated to
  /// a second host — but only if its primary host has also been uplink-
  /// silent for that whole window. A host that produced any frame recently
  /// is alive and merely queueing; duplicating its work would amplify load
  /// exactly when the rack has the least headroom, so those requests wait.
  /// The first response wins and the loser copy is cancelled (best-effort)
  /// and its eventual duplicate response suppressed. Composes with client
  /// retry budgets — the client sees exactly one response either way.
  bool hedge = false;
  sim::Duration hedge_after = sim::Duration::micros(50);
  /// Send a kCancel for the loser copy once a winner responds. On by
  /// default (when hedging is on) — cancellation is what keeps hedges from
  /// doubling backend load at high utilization.
  bool hedge_cancel = true;

  /// Seed for the ToR's own RNG stream (kRandom draws, kPowerOfTwo
  /// candidate pairs). Forked per TorScheduler, never shared with clients
  /// or servers, so adding a rack does not perturb their streams. The
  /// failover paths (re-steer targets, hedge backups) deliberately draw
  /// nothing from it: they pick by deterministic score, so enabling
  /// failover never perturbs the policy's RNG sequence.
  std::uint64_t seed = 0x70F2;

  /// Applies NICSCHED_RACK_* environment overrides on top of `base`:
  ///   NICSCHED_RACK_POLICY          flow_hash|round_robin|random|p2c|jsq
  ///   NICSCHED_RACK_DECISION_NS     steering decision latency
  ///   NICSCHED_RACK_LINK_NS         ToR↔host propagation
  ///   NICSCHED_RACK_LINK_GBPS      ToR↔host line rate
  ///   NICSCHED_RACK_STALE_US        feedback staleness tolerance
  ///   NICSCHED_RACK_SOJOURN_ALPHA   EWMA smoothing factor
  ///   NICSCHED_RACK_SOJOURN_WEIGHT  sojourn-vs-depth score weight
  ///   NICSCHED_RACK_AFFINITY_TTL_US affinity eviction horizon
  ///   NICSCHED_RACK_HOST_TIMEOUT_US death-verdict silence threshold
  ///   NICSCHED_RACK_FAILOVER            enable probing/ejection/draining
  ///   NICSCHED_RACK_FAILOVER_PROBE_US   health tick / silence threshold
  ///   NICSCHED_RACK_FAILOVER_TIMEOUT_US probe-timeout death verdict
  ///   NICSCHED_RACK_HEDGE               enable hedged requests
  ///   NICSCHED_RACK_HEDGE_US            hedge trigger delay
  ///   NICSCHED_RACK_HEDGE_CANCEL        cancel the loser copy (default on)
  static TorParams from_env(TorParams base);
  static TorParams from_env() { return from_env(TorParams{}); }
};

/// Per-tenant slice of the ToR's steering/feedback counters (DESIGN §13):
/// the rack-level view of which tenant the forwarded requests and snooped
/// responses belong to, so p2c feedback and PR 5 backpressure verdicts stay
/// tenant-attributable. Rows appear in first-seen order. Untenanted traffic
/// (wire tenant 0) is not tracked — the vectors stay empty, and the stats
/// bit-identical, when the tenant layer is off.
struct RackTenantStats {
  std::uint16_t tenant = 0;
  std::uint64_t requests = 0;     // forwards (including affinity retransmits)
  std::uint64_t responses = 0;    // kResponse frames matched to an affinity
  std::uint64_t rejects = 0;      // kReject frames matched to an affinity
  std::uint64_t outstanding = 0;  // ToR-local in-flight count
};

struct RackHostStats {
  std::uint64_t requests = 0;   // requests steered to this host
  std::uint64_t responses = 0;  // responses matched to an affinity entry
  std::uint64_t rejects = 0;    // rejects matched to an affinity entry
  std::uint64_t outstanding = 0;  // in-flight snapshot at stats() time
  std::uint64_t deaths = 0;       // silence verdicts
  std::uint64_t revivals = 0;     // heard from again after a verdict
  std::uint64_t resets = 0;       // external mark_host_reset calls
  /// Feedback samples discarded because their request was forwarded before
  /// the host's last death verdict / reset — the rack-level analogue of the
  /// per-worker reset-on-death EWMA rule (DESIGN §11): a late sample from a
  /// previous incarnation must not resurrect the dead incarnation's load
  /// estimate.
  std::uint64_t feedback_discarded = 0;
  double sojourn_ewma_us = 0.0;   // snapshot (0 until seeded)
  std::uint32_t queue_depth = 0;  // last snooped depth (0 until seeded)
  /// Per-tenant slice of this host's counters; empty for untenanted runs.
  std::vector<RackTenantStats> tenants;
};

struct RackStats {
  std::uint64_t requests_forwarded = 0;
  std::uint64_t responses_forwarded = 0;  // kResponse frames sent client-ward
  std::uint64_t rejects_forwarded = 0;    // kReject frames sent client-ward
  std::uint64_t other_forwarded = 0;      // non-client-facing uplink frames
  std::uint64_t malformed_dropped = 0;
  std::uint64_t affinity_hits = 0;     // retransmits steered to their host
  std::uint64_t affinity_expired = 0;  // TTL evictions
  std::uint64_t unknown_responses = 0;  // no affinity entry (dup/expired)
  std::uint64_t informed_decisions = 0;  // p2c with fresh feedback
  std::uint64_t stale_decisions = 0;     // p2c fell back to outstanding-only
  std::uint64_t feedback_samples = 0;    // accepted into a host estimate
  std::uint64_t feedback_discarded_dead = 0;  // sum of per-host discards
  // Failure handling (DESIGN §16); all zero with failover/hedging off.
  std::uint64_t probes_sent = 0;
  std::uint64_t probe_acks = 0;
  std::uint64_t probe_deaths = 0;        // probe-timeout death verdicts
  std::uint64_t requests_resteered = 0;  // drained off a dead host
  std::uint64_t hedges_sent = 0;         // backup copies dispatched
  std::uint64_t hedge_wins = 0;          // backup answered first
  std::uint64_t cancels_sent = 0;        // loser-copy cancellations
  std::uint64_t duplicates_suppressed = 0;  // dup responses swallowed at ToR
  std::vector<RackHostStats> hosts;
  /// Rack-wide per-tenant rows (per-host slices summed, first-seen order).
  std::vector<RackTenantStats> tenants;
};

/// The ToR request scheduler. Clients address the VIP; `deliver` steers each
/// request to a backend host; per-host uplink sinks snoop and forward the
/// return traffic. All state is ToR-local — hosts and clients are unmodified
/// and unaware of the rack layer.
class TorScheduler : public net::PacketSink {
 public:
  /// MAC/IP index of the virtual service endpoint on the client-side
  /// switch. Far above any client index (clients use small integers).
  static constexpr std::uint32_t kVipIndex = 0xF0'0000;

  /// MAC/IP index of each host's probe responder on its *local* fabric
  /// (every host fabric is a separate switch, so one reserved index serves
  /// all hosts; the ProbeMessage host field disambiguates). Only attached
  /// when failover is on, so the off topology is construction-identical.
  static constexpr std::uint32_t kProbeIndex = 0xF1'0000;
  static net::MacAddress probe_mac() {
    return net::MacAddress::from_index(kProbeIndex);
  }
  static net::Ipv4Address probe_ip() {
    return net::Ipv4Address::from_index(kProbeIndex);
  }

  TorScheduler(sim::Simulator& sim, TorParams params);
  ~TorScheduler() override;

  TorScheduler(const TorScheduler&) = delete;
  TorScheduler& operator=(const TorScheduler&) = delete;

  /// Registers a backend host whose ingress endpoint (the server's PF) is
  /// `mac`/`ip` on `host_network`. Steered requests are readdressed to
  /// `mac`/`ip` and egress on a dedicated downlink wire into the host's
  /// fabric. Returns the host index.
  std::size_t add_host(net::MacAddress mac, net::Ipv4Address ip,
                       net::PacketSink& host_network);

  /// The sink a host fabric's uplink (EthernetSwitch::set_uplink) should
  /// target: frames arriving here are snooped for load feedback, then
  /// forwarded on toward the clients.
  net::PacketSink& host_uplink(std::size_t host);

  /// Attaches the VIP endpoint to the client-side switch: frames the
  /// clients send to `vip_mac()` reach `deliver`, and snooped return
  /// traffic re-enters `client_network` for final delivery.
  void attach(net::EthernetSwitch& client_network, sim::Duration latency,
              double gbps);

  net::MacAddress vip_mac() const;
  net::Ipv4Address vip_ip() const;
  std::size_t host_count() const { return hosts_.size(); }

  /// The ToR→host downlink wire, for shard placement: when host `host` runs
  /// on its own shard, the cluster builder marks this wire as crossing from
  /// the ToR's shard to the host's.
  net::Wire& downlink_wire(std::size_t host) { return *hosts_[host]->downlink; }

  /// Installs the kJsqIdeal oracle: a function returning host `i`'s true
  /// instantaneous load. Centralized-ideal baseline — no wire, no staleness.
  void set_oracle(std::function<double(std::size_t)> oracle);

  /// External notice that a host lost state (e.g. a fault schedule killed
  /// its dispatcher): clears the host's feedback estimates and discards
  /// samples from requests forwarded before this instant.
  void mark_host_reset(std::size_t host);

  /// PacketSink: a client→VIP frame to steer.
  void deliver(net::Packet packet) override;

  RackStats stats() const;

  /// ToR-local in-flight count for one host (test/telemetry accessor).
  std::uint64_t outstanding(std::size_t host) const;
  const TorParams& params() const { return params_; }

 private:
  struct HostUplink;

  struct HostState {
    std::size_t index = 0;
    net::MacAddress mac;
    net::Ipv4Address ip;
    std::unique_ptr<net::Wire> downlink;
    std::unique_ptr<HostUplink> uplink;

    std::uint64_t outstanding = 0;
    sim::TimePoint outstanding_since;  // last 0→nonzero transition
    sim::TimePoint last_heard;         // last uplink frame from this host
    sim::TimePoint reset_at;           // feedback epoch floor
    bool dead = false;

    bool sojourn_seeded = false;
    double sojourn_ewma_us = 0.0;
    bool depth_seeded = false;
    std::uint32_t queue_depth = 0;
    sim::TimePoint feedback_at;  // when the freshest sample arrived

    // Health probing (failover only).
    bool probe_outstanding = false;
    sim::TimePoint probe_sent_at;
    std::uint64_t probe_seq = 0;

    RackHostStats counters;  // requests/responses/deaths/... (not snapshots)
  };

  /// Everything needed to re-materialize a steered request on another
  /// host's downlink (drain/re-steer and hedge copies). Only populated when
  /// failover or hedging is on, so the default configuration pays nothing.
  struct StoredRequest {
    net::MacAddress src_mac;
    net::Ipv4Address src_ip;
    std::uint16_t src_port = 0;
    std::uint16_t dst_port = 0;
    std::vector<std::uint8_t> payload;
  };

  static constexpr std::uint32_t kNoHost = 0xFFFF'FFFF;

  struct Affinity {
    std::uint32_t host = 0;
    /// Wire tenant tag snooped off the request (0 = untenanted); return
    /// traffic is attributed to this tenant without reparsing.
    std::uint16_t tenant = 0;
    sim::TimePoint first_sent;
    sim::TimePoint last_sent;
    /// Backup host carrying the hedge copy (kNoHost = none).
    std::uint32_t hedge_host = kNoHost;
    std::unique_ptr<StoredRequest> stored;
  };

  /// Find-or-append the per-tenant row for `id` (first-seen order).
  static RackTenantStats& tenant_row(std::vector<RackTenantStats>& rows,
                                     std::uint16_t id);

  void from_host(std::size_t host, net::Packet packet);
  void steer(net::Packet packet, const net::UdpDatagramView& view,
             std::uint64_t request_id, std::uint16_t tenant);
  std::size_t pick_host(const net::FiveTuple& flow);
  double score(HostState& host, sim::TimePoint now, bool& fresh);
  bool dead_now(HostState& host, sim::TimePoint now);
  /// The dead verdict's mutation half: epoch bump, estimate clear, and —
  /// with failover on — draining the host's in-flight requests.
  void declare_dead(HostState& host, sim::TimePoint now);
  /// Lowest-score non-dead host (ties → lowest index), skipping `exclude`,
  /// or `fallback` when every candidate is dead. Deterministic: draws no
  /// randomness, so failover re-steers never perturb the policy RNG
  /// sequence. Pass `exclude >= hosts_.size()` to consider every host.
  std::size_t best_alive(sim::TimePoint now, std::size_t fallback,
                         std::size_t exclude);
  /// Re-steers every in-flight request pinned to `host` onto the best
  /// alive host (failover only; requests with no stored copy stay put and
  /// age out via the affinity TTL).
  void drain_host(HostState& host, sim::TimePoint now);
  void transmit_stored(const StoredRequest& stored, HostState& target);
  void health_tick();
  void send_probe(HostState& host, sim::TimePoint now);
  void maybe_hedge(std::uint64_t request_id);
  void send_cancel(HostState& host, std::uint64_t request_id,
                   std::uint16_t dst_port);
  void fold_feedback(HostState& host, const Affinity& entry,
                     std::uint32_t depth, bool has_sojourn,
                     std::uint64_t sojourn_ps);
  /// Gives back the outstanding slots an affinity entry holds on its
  /// primary (and, if hedged, backup) host plus the tenant row.
  void reclaim_slots(const Affinity& entry);
  /// Resolves a request: reclaims slots, records the id for duplicate
  /// suppression (dedupe_active() only), and drops the affinity entry.
  void complete(std::uint64_t request_id);
  void sweep_affinity(sim::TimePoint now);
  bool dedupe_active() const { return params_.failover || params_.hedge; }
  void sweep_completed(sim::TimePoint now);

  sim::Simulator& sim_;
  TorParams params_;
  sim::Rng rng_;
  net::EthernetSwitch* client_network_ = nullptr;
  std::vector<std::unique_ptr<HostState>> hosts_;
  std::function<double(std::size_t)> oracle_;
  std::uint64_t round_robin_next_ = 0;

  std::unordered_map<std::uint64_t, Affinity> affinity_;
  /// Insertion-ordered (request_id, last_sent) log for lazy TTL sweeps; an
  /// entry whose logged time no longer matches the map is re-validated, not
  /// evicted.
  std::deque<std::pair<std::uint64_t, sim::TimePoint>> affinity_log_;

  /// Recently completed request ids (dedupe_active() only): a response for
  /// one of these is a late duplicate — a thawed host or hedge loser — and
  /// is swallowed instead of reaching the client twice. Swept lazily on the
  /// affinity TTL, mirroring affinity_log_.
  std::unordered_map<std::uint64_t, sim::TimePoint> completed_;
  std::deque<std::pair<std::uint64_t, sim::TimePoint>> completed_log_;

  RackStats stats_;
};

}  // namespace nicsched::rack
