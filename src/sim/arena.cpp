#include "sim/arena.h"

#include <new>

namespace nicsched::sim {

namespace {

bool needs_extended_alignment(std::size_t alignment) {
  return alignment > __STDCPP_DEFAULT_NEW_ALIGNMENT__;
}

}  // namespace

ArenaResource::~ArenaResource() {
  for (SizeClass& cls : classes_) {
    for (void* block : cls.free_blocks) {
      if (needs_extended_alignment(cls.alignment)) {
        ::operator delete(block, std::align_val_t{cls.alignment});
      } else {
        ::operator delete(block);
      }
    }
  }
}

std::size_t ArenaResource::pooled_blocks() const {
  std::size_t total = 0;
  for (const SizeClass& cls : classes_) total += cls.free_blocks.size();
  return total;
}

ArenaResource::SizeClass& ArenaResource::size_class(std::size_t bytes,
                                                    std::size_t alignment) {
  for (SizeClass& cls : classes_) {
    if (cls.bytes == bytes && cls.alignment == alignment) return cls;
  }
  classes_.push_back(SizeClass{bytes, alignment, {}});
  return classes_.back();
}

void* ArenaResource::do_allocate(std::size_t bytes, std::size_t alignment) {
  SizeClass& cls = size_class(bytes, alignment);
  if (!cls.free_blocks.empty()) {
    void* block = cls.free_blocks.back();
    cls.free_blocks.pop_back();
    ++reused_allocations_;
    return block;
  }
  ++upstream_allocations_;
  if (needs_extended_alignment(alignment)) {
    return ::operator new(bytes, std::align_val_t{alignment});
  }
  return ::operator new(bytes);
}

void ArenaResource::do_deallocate(void* p, std::size_t bytes,
                                  std::size_t alignment) {
  size_class(bytes, alignment).free_blocks.push_back(p);
}

}  // namespace nicsched::sim
