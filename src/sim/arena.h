// ArenaResource: a pooled std::pmr memory resource for per-request
// bookkeeping that churns at steady state.
//
// The reliable-dispatch maps (inflight table, seq→request index, per-worker
// dedupe sets) allocate a node per tracked request and free it a few
// microseconds later when the ack lands — a perfectly recyclable population
// that nevertheless hit the global allocator once per request. ArenaResource
// interposes exact-size freelists: the first wave of requests warms the
// pools, and every allocation after that is a pop from a vector. Containers
// keep their exact semantics (same nodes, same hashing, same iteration),
// which is what lets the reliable-mode goldens stay bit-identical while the
// sim_alloc_test new/delete shims prove the steady state allocates nothing.
//
// Distinct (size, alignment) classes are expected to be few (the node and
// bucket-array types of a handful of containers), so the class lookup is a
// linear scan over a short vector. Blocks are returned to the pool on
// deallocate and only released to the upstream allocator when the arena is
// destroyed; containers built on an arena must therefore be destroyed before
// it (declare the arena first).
//
// Not thread-safe; an arena belongs to one component on one shard, exactly
// like the containers it feeds.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory_resource>
#include <vector>

namespace nicsched::sim {

class ArenaResource : public std::pmr::memory_resource {
 public:
  ArenaResource() = default;
  ~ArenaResource() override;

  ArenaResource(const ArenaResource&) = delete;
  ArenaResource& operator=(const ArenaResource&) = delete;

  /// Allocations served by the upstream global allocator (pool misses).
  std::uint64_t upstream_allocations() const { return upstream_allocations_; }
  /// Allocations served from a freelist (the steady-state path).
  std::uint64_t reused_allocations() const { return reused_allocations_; }
  /// Blocks currently parked in freelists.
  std::size_t pooled_blocks() const;

 private:
  void* do_allocate(std::size_t bytes, std::size_t alignment) override;
  void do_deallocate(void* p, std::size_t bytes, std::size_t alignment) override;
  bool do_is_equal(const std::pmr::memory_resource& other) const noexcept override {
    return this == &other;
  }

  struct SizeClass {
    std::size_t bytes = 0;
    std::size_t alignment = 0;
    std::vector<void*> free_blocks;
  };

  SizeClass& size_class(std::size_t bytes, std::size_t alignment);

  std::vector<SizeClass> classes_;
  std::uint64_t upstream_allocations_ = 0;
  std::uint64_t reused_allocations_ = 0;
};

}  // namespace nicsched::sim
