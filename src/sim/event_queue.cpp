#include "sim/event_queue.h"

#include <utility>

namespace nicsched::sim {

EventHandle EventQueue::schedule(TimePoint when, EventFn callback) {
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.callback = std::move(callback);
  heap_.push(Entry{when, next_seq_++, slot, s.generation});
  ++live_;
  return EventHandle{this, slot, s.generation};
}

bool EventQueue::pop_next(TimePoint& when, EventFn& callback) {
  prune_top();
  if (heap_.empty()) return false;
  // Copy the (trivial) entry out before popping: the caller fires the
  // callback, which may schedule new events and mutate the heap.
  const Entry entry = heap_.top();
  heap_.pop();
  when = entry.when;
  callback = std::move(slots_[entry.slot].callback);
  release_slot(entry.slot);
  return true;
}

TimePoint EventQueue::next_event_time() const {
  prune_top();
  if (heap_.empty()) return TimePoint::max();
  return heap_.top().when;
}

}  // namespace nicsched::sim
