#include "sim/event_queue.h"

#include <algorithm>
#include <bit>
#include <utility>

namespace nicsched::sim {

namespace {
constexpr std::size_t kBucketMask = EventQueue::kBucketCount - 1;
constexpr std::size_t kWordCount = EventQueue::kBucketCount / 64;
}  // namespace

EventHandle EventQueue::schedule(TimePoint when, EventFn callback) {
  return schedule_reserved(when, next_seq_++, std::move(callback));
}

EventHandle EventQueue::schedule_reserved(TimePoint when, std::uint64_t seq,
                                          EventFn callback) {
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.callback = std::move(callback);
  const Entry entry{when, seq, slot, s.generation};
  // Arithmetic shift keeps pathological negative times heap-bound.
  const std::int64_t bucket = when.to_picos() >> kBucketBits;
  if (bucket >= cursor_ &&
      bucket < cursor_ + static_cast<std::int64_t>(kBucketCount)) {
    const std::size_t ws = static_cast<std::size_t>(bucket) & kBucketMask;
    wheel_[ws].push_back(entry);
    occupied_[ws >> 6] |= std::uint64_t{1} << (ws & 63);
    const std::int64_t bucket_start = bucket << kBucketBits;
    if (wheel_size_ == 0 || bucket_start < wheel_min_start_) {
      wheel_min_start_ = bucket_start;
    }
    ++wheel_size_;
  } else {
    heap_push(entry);
  }
  ++live_;
  return EventHandle{this, slot, s.generation};
}

bool EventQueue::pop_next(TimePoint& when, EventFn& callback) {
  settle();
  if (heap_.empty()) return false;
  // Copy the (trivial) entry out before popping: the caller fires the
  // callback, which may schedule new events and mutate the structures.
  const Entry entry = heap_.front();
  heap_pop_root();
  when = entry.when;
  callback = std::move(slots_[entry.slot].callback);
  release_slot(entry.slot);
  return true;
}

TimePoint EventQueue::next_event_time() const {
  settle();
  if (heap_.empty()) return TimePoint::max();
  return heap_.front().when;
}

void EventQueue::heap_push(Entry e) const {
  heap_.push_back(e);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!entry_before(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void EventQueue::heap_pop_root() const {
  heap_.front() = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n <= 1) return;
  std::size_t i = 0;
  for (;;) {
    const std::size_t first = (i << 2) + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + 4, n);
    for (std::size_t child = first + 1; child < last; ++child) {
      if (entry_before(heap_[child], heap_[best])) best = child;
    }
    if (!entry_before(heap_[best], heap_[i])) break;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
}

std::int64_t EventQueue::next_occupied_bucket() const {
  const std::size_t start = static_cast<std::size_t>(cursor_) & kBucketMask;
  const std::size_t word = start >> 6;
  const std::size_t bit = start & 63;
  // First occupied slot at circular distance d from `start` corresponds to
  // absolute bucket cursor_ + d: buckets are only ever populated inside the
  // window [cursor_, cursor_ + kBucketCount).
  const std::uint64_t masked = occupied_[word] & (~std::uint64_t{0} << bit);
  if (masked != 0) {
    const std::size_t slot =
        (word << 6) + static_cast<std::size_t>(std::countr_zero(masked));
    return cursor_ + static_cast<std::int64_t>(slot - start);
  }
  for (std::size_t k = 1; k <= kWordCount; ++k) {
    const std::size_t wi = (word + k) & (kWordCount - 1);
    if (occupied_[wi] == 0) continue;
    const std::size_t slot =
        (wi << 6) + static_cast<std::size_t>(std::countr_zero(occupied_[wi]));
    const std::size_t distance = (slot + kBucketCount - start) & kBucketMask;
    return cursor_ + static_cast<std::int64_t>(distance);
  }
  return cursor_;  // unreachable while wheel_size_ > 0
}

void EventQueue::settle_slow() const {
  for (;;) {
    while (!heap_.empty() &&
           !slot_live(heap_.front().slot, heap_.front().generation)) {
      heap_pop_root();
    }
    if (wheel_size_ == 0) return;
    const std::int64_t bucket = next_occupied_bucket();
    const std::int64_t bucket_start = bucket << kBucketBits;
    wheel_min_start_ = bucket_start;
    if (!heap_.empty() && heap_.front().when.to_picos() < bucket_start) return;
    // Cascade the whole bucket: every entry in it is >= bucket_start, and
    // the heap minimum (if any) is >= bucket_start too, so merging preserves
    // the global (time, seq) order. Cancelled entries are dropped here.
    const std::size_t ws = static_cast<std::size_t>(bucket) & kBucketMask;
    std::vector<Entry>& entries = wheel_[ws];
    for (const Entry& entry : entries) {
      if (slot_live(entry.slot, entry.generation)) heap_push(entry);
    }
    wheel_size_ -= entries.size();
    entries.clear();  // keeps capacity: steady-state cascades allocate nothing
    occupied_[ws >> 6] &= ~(std::uint64_t{1} << (ws & 63));
    cursor_ = bucket + 1;
  }
}

}  // namespace nicsched::sim
