#include "sim/event_queue.h"

#include <utility>

namespace nicsched::sim {

EventHandle EventQueue::schedule(TimePoint when,
                                 std::function<void()> callback) {
  auto state = std::make_shared<detail::EventState>();
  state->callback = std::move(callback);
  EventHandle handle{std::weak_ptr<detail::EventState>(state)};
  heap_.push(Entry{when, next_seq_++, std::move(state)});
  return handle;
}

void EventQueue::drop_cancelled_top() {
  while (!heap_.empty() && heap_.top().state->cancelled) heap_.pop();
}

bool EventQueue::pop_next(TimePoint& when, std::function<void()>& callback) {
  drop_cancelled_top();
  if (heap_.empty()) return false;
  // Move the entry out before returning: the callback may schedule new
  // events and mutate the heap when the caller fires it.
  Entry entry = heap_.top();
  heap_.pop();
  when = entry.when;
  callback = std::move(entry.state->callback);
  return true;
}

TimePoint EventQueue::next_event_time() {
  drop_cancelled_top();
  if (heap_.empty()) return TimePoint::max();
  return heap_.top().when;
}

bool EventQueue::empty() {
  drop_cancelled_top();
  return heap_.empty();
}

std::size_t EventQueue::live_count() const {
  // priority_queue hides its container; copy and drain. Test-only helper.
  auto copy = heap_;
  std::size_t live = 0;
  while (!copy.empty()) {
    if (!copy.top().state->cancelled) ++live;
    copy.pop();
  }
  return live;
}

}  // namespace nicsched::sim
