// Cancellable pending-event queue for the discrete-event simulator.
//
// Events fire in (time, insertion-sequence) order, so simultaneous events run
// in the order they were scheduled — a deterministic tie-break that keeps
// whole-simulation results reproducible for a given seed.
//
// Storage is a slab: callbacks live in a recycled pool of slots and the
// ordering structures hold lightweight `{when, seq, slot, generation}`
// entries. A slot's generation is bumped every time the slot is released
// (fired or cancelled), so a stale handle — or an ordering entry left behind
// by a cancellation — is detected by a generation mismatch instead of by
// `weak_ptr` bookkeeping. Scheduling therefore costs zero heap allocations
// once the structures have warmed up, and the callback itself is a `SmallFn`
// whose common capture (a component pointer plus an id) stays in inline
// storage.
//
// Ordering is a hybrid of a timer wheel and a 4-ary implicit heap. The wheel
// covers the near horizon — 256 buckets of 2^20 ps (~1.05 µs) each, ~268 µs
// of span — so the dominant populations (packet hops at ns..µs reach and the
// re-armed timer-interrupt ticks) insert in O(1) instead of paying a heap
// sift. Everything outside the window (far-future timeouts, or times whose
// bucket the cursor already passed) goes straight to the heap. Before any
// pop the queue "settles": whole buckets cascade into the heap whenever the
// heap's minimum no longer precedes the next occupied bucket, which provably
// preserves the exact global (time, seq) pop order of a single heap — every
// entry still in the wheel is then strictly later than the heap's top. The
// 4-ary layout halves tree depth versus the binary `std::priority_queue` it
// replaced and keeps children in one cache line; pop order is identical
// because (time, seq) is a total order.
//
// Cancellation is O(1): the slot's callback is destroyed and the slot
// recycled immediately; the orphaned wheel/heap entry is dropped lazily when
// it cascades or reaches the heap top. Handles do not keep events alive —
// they observe them — and must not outlive the queue they came from.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "sim/small_fn.h"
#include "sim/time.h"

namespace nicsched::sim {

class EventQueue;

/// A handle to a scheduled event. Default-constructed handles refer to no
/// event; all operations on them are safe no-ops. A handle left over from an
/// event that fired (or was cancelled) goes inert even if its slot has since
/// been recycled for a new event: the generation check tells them apart.
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevents the event from firing. Safe to call multiple times, after the
  /// event fired, or on an empty handle.
  inline void cancel();

  /// True if the event is still scheduled to fire (not cancelled, not fired).
  inline bool pending() const;

 private:
  friend class EventQueue;
  EventHandle(EventQueue* queue, std::uint32_t slot, std::uint64_t generation)
      : queue_(queue), slot_(slot), generation_(generation) {}

  EventQueue* queue_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint64_t generation_ = 0;
};

/// Pending events ordered by (fire time, insertion sequence).
class EventQueue {
 public:
  /// Timer-wheel geometry, exposed for the boundary tests.
  static constexpr int kBucketBits = 20;  // 2^20 ps ≈ 1.05 µs per bucket
  static constexpr std::size_t kBucketCount = 256;
  static constexpr Duration bucket_width() {
    return Duration::picos(std::int64_t{1} << kBucketBits);
  }
  /// Horizon covered by the wheel from the current cursor; schedules beyond
  /// it go to the heap.
  static constexpr Duration wheel_span() {
    return Duration::picos(static_cast<std::int64_t>(kBucketCount)
                           << kBucketBits);
  }

  /// Schedules `callback` to fire at absolute time `when`.
  EventHandle schedule(TimePoint when, EventFn callback);

  /// Reserves the next insertion sequence number without inserting anything.
  /// Pair with schedule_reserved to give an event the tie-break rank of the
  /// moment its cause happened even though the queue insert is deferred —
  /// Wire keeps one live delivery event per wire and re-arms it per frame,
  /// and the re-armed event must sort exactly where a per-frame schedule
  /// would have. Counts toward scheduled_count(), like the insert it stands
  /// for.
  std::uint64_t reserve_seq() { return next_seq_++; }

  /// Schedules with a sequence number from reserve_seq(). Pop order is
  /// (when, seq) regardless of insertion order, so this is behaviourally
  /// identical to having called schedule() at reservation time.
  EventHandle schedule_reserved(TimePoint when, std::uint64_t seq,
                                EventFn callback);

  /// Removes the earliest live event without firing it, skipping cancelled
  /// events. Returns false if no live event remains. The caller advances its
  /// clock to `when` before invoking `callback`, so callbacks always observe
  /// the correct current time.
  bool pop_next(TimePoint& when, EventFn& callback);

  /// Timestamp of the earliest live event, or TimePoint::max() if none.
  TimePoint next_event_time() const;

  bool empty() const { return live_ == 0; }

  /// Number of live (non-cancelled) events. O(1).
  std::size_t live_count() const { return live_; }

  /// Total events ever scheduled; monotonically increasing.
  std::uint64_t scheduled_count() const { return next_seq_; }

  /// Slots currently in the slab (live + recycled). Exposed for tests.
  std::size_t slab_size() const { return slots_.size(); }

  /// Entries currently parked in wheel buckets (live + cancelled-but-lazy).
  /// Exposed so tests can see which structure a schedule landed in.
  std::size_t wheel_size() const { return wheel_size_; }
  /// Entries currently in the heap (live + cancelled-but-lazy).
  std::size_t heap_size() const { return heap_.size(); }

 private:
  friend class EventHandle;

  struct Slot {
    std::uint64_t generation = 0;
    EventFn callback;
  };

  struct Entry {
    TimePoint when;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint64_t generation;
  };

  static bool entry_before(const Entry& a, const Entry& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }

  bool slot_live(std::uint32_t slot, std::uint64_t generation) const {
    return slot < slots_.size() && slots_[slot].generation == generation;
  }

  /// Destroys the slot's callback, bumps its generation (invalidating every
  /// outstanding handle and wheel/heap entry pointing at it), and recycles
  /// it.
  void release_slot(std::uint32_t slot) {
    Slot& s = slots_[slot];
    s.callback.reset();
    ++s.generation;
    free_.push_back(slot);
    --live_;
  }

  void cancel_slot(std::uint32_t slot, std::uint64_t generation) {
    if (slot_live(slot, generation)) release_slot(slot);
  }

  void heap_push(Entry e) const;
  void heap_pop_root() const;

  /// Absolute index of the first occupied bucket at or after the cursor.
  /// Precondition: wheel_size_ > 0.
  std::int64_t next_occupied_bucket() const;

  /// Restores the pop invariant: dead heap tops are pruned and wheel buckets
  /// cascade into the heap until either the wheel is empty or the heap's
  /// (live) minimum strictly precedes every remaining wheel entry. Logically
  /// const: it only reshapes the ordering cache, never the set of live
  /// events, hence the mutable members. The inline fast path — a live heap
  /// top that precedes `wheel_min_start_`, a conservative lower bound on
  /// every wheel entry — is one compare; pops only take the slow path when a
  /// bucket must cascade or the top was cancelled.
  void settle() const {
    if (!heap_.empty()) {
      const Entry& top = heap_.front();
      if (slots_[top.slot].generation == top.generation &&
          (wheel_size_ == 0 || top.when.to_picos() < wheel_min_start_)) {
        return;
      }
    } else if (wheel_size_ == 0) {
      return;
    }
    settle_slow();
  }
  void settle_slow() const;

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
  // 4-ary implicit min-heap on (when, seq).
  mutable std::vector<Entry> heap_;
  // Near-horizon buckets; bucket b (absolute) lives at slot b & (count-1),
  // valid only while b is within [cursor_, cursor_ + kBucketCount).
  mutable std::array<std::vector<Entry>, kBucketCount> wheel_;
  mutable std::array<std::uint64_t, kBucketCount / 64> occupied_{};
  mutable std::int64_t cursor_ = 0;
  mutable std::size_t wheel_size_ = 0;
  // Lower bound (picos) on every entry currently in the wheel; stale-low is
  // fine (the fast path is merely skipped), stale-high never happens: inserts
  // min() it down and settle_slow() recomputes it from the bitmap.
  mutable std::int64_t wheel_min_start_ = 0;
  std::size_t live_ = 0;
  std::uint64_t next_seq_ = 0;
};

inline void EventHandle::cancel() {
  if (queue_ != nullptr) queue_->cancel_slot(slot_, generation_);
}

inline bool EventHandle::pending() const {
  return queue_ != nullptr && queue_->slot_live(slot_, generation_);
}

}  // namespace nicsched::sim
