// Cancellable pending-event queue for the discrete-event simulator.
//
// Events fire in (time, insertion-sequence) order, so simultaneous events run
// in the order they were scheduled — a deterministic tie-break that keeps
// whole-simulation results reproducible for a given seed.
//
// Storage is a slab: callbacks live in a recycled pool of slots and the heap
// orders lightweight `{when, seq, slot, generation}` entries. A slot's
// generation is bumped every time the slot is released (fired or cancelled),
// so a stale handle — or a heap entry left behind by a cancellation — is
// detected by a generation mismatch instead of by `weak_ptr` bookkeeping.
// Scheduling therefore costs zero heap allocations once the slab and heap
// have warmed up, and the callback itself is a `SmallFn` whose common capture
// (a component pointer plus an id) stays in inline storage.
//
// Cancellation is O(1): the slot's callback is destroyed and the slot
// recycled immediately; the orphaned heap entry is dropped lazily when it
// reaches the top. Handles do not keep events alive — they observe them —
// and must not outlive the queue they came from.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "sim/small_fn.h"
#include "sim/time.h"

namespace nicsched::sim {

class EventQueue;

/// A handle to a scheduled event. Default-constructed handles refer to no
/// event; all operations on them are safe no-ops. A handle left over from an
/// event that fired (or was cancelled) goes inert even if its slot has since
/// been recycled for a new event: the generation check tells them apart.
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevents the event from firing. Safe to call multiple times, after the
  /// event fired, or on an empty handle.
  inline void cancel();

  /// True if the event is still scheduled to fire (not cancelled, not fired).
  inline bool pending() const;

 private:
  friend class EventQueue;
  EventHandle(EventQueue* queue, std::uint32_t slot, std::uint64_t generation)
      : queue_(queue), slot_(slot), generation_(generation) {}

  EventQueue* queue_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint64_t generation_ = 0;
};

/// Min-heap of pending events ordered by (fire time, insertion sequence).
class EventQueue {
 public:
  /// Schedules `callback` to fire at absolute time `when`.
  EventHandle schedule(TimePoint when, EventFn callback);

  /// Removes the earliest live event without firing it, skipping cancelled
  /// events. Returns false if no live event remains. The caller advances its
  /// clock to `when` before invoking `callback`, so callbacks always observe
  /// the correct current time.
  bool pop_next(TimePoint& when, EventFn& callback);

  /// Timestamp of the earliest live event, or TimePoint::max() if none.
  TimePoint next_event_time() const;

  bool empty() const { return live_ == 0; }

  /// Number of live (non-cancelled) events. O(1).
  std::size_t live_count() const { return live_; }

  /// Total events ever scheduled; monotonically increasing.
  std::uint64_t scheduled_count() const { return next_seq_; }

  /// Slots currently in the slab (live + recycled). Exposed for tests.
  std::size_t slab_size() const { return slots_.size(); }

 private:
  friend class EventHandle;

  struct Slot {
    std::uint64_t generation = 0;
    EventFn callback;
  };

  struct Entry {
    TimePoint when;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint64_t generation;

    // std::priority_queue is a max-heap; invert so earliest fires first.
    bool operator<(const Entry& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  bool slot_live(std::uint32_t slot, std::uint64_t generation) const {
    return slot < slots_.size() && slots_[slot].generation == generation;
  }

  /// Destroys the slot's callback, bumps its generation (invalidating every
  /// outstanding handle and heap entry pointing at it), and recycles it.
  void release_slot(std::uint32_t slot) {
    Slot& s = slots_[slot];
    s.callback.reset();
    ++s.generation;
    free_.push_back(slot);
    --live_;
  }

  void cancel_slot(std::uint32_t slot, std::uint64_t generation) {
    if (slot_live(slot, generation)) release_slot(slot);
  }

  /// Drops heap entries orphaned by cancellation. Logically const: it only
  /// sheds cache of already-dead events, hence the mutable heap.
  void prune_top() const {
    while (!heap_.empty() &&
           !slot_live(heap_.top().slot, heap_.top().generation)) {
      heap_.pop();
    }
  }

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
  mutable std::priority_queue<Entry> heap_;
  std::size_t live_ = 0;
  std::uint64_t next_seq_ = 0;
};

inline void EventHandle::cancel() {
  if (queue_ != nullptr) queue_->cancel_slot(slot_, generation_);
}

inline bool EventHandle::pending() const {
  return queue_ != nullptr && queue_->slot_live(slot_, generation_);
}

}  // namespace nicsched::sim
