// Cancellable pending-event queue for the discrete-event simulator.
//
// Events fire in (time, insertion-sequence) order, so simultaneous events run
// in the order they were scheduled — a deterministic tie-break that keeps
// whole-simulation results reproducible for a given seed.
//
// Cancellation is lazy: `EventHandle::cancel()` marks the event and the queue
// drops it when it reaches the top. This keeps scheduling O(log n) and is the
// common idiom for timers that are almost always re-armed (e.g. preemption
// timers cancelled when a request finishes early).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace nicsched::sim {

namespace detail {
struct EventState {
  std::function<void()> callback;
  bool cancelled = false;
};
}  // namespace detail

/// A handle to a scheduled event. Default-constructed handles refer to no
/// event; all operations on them are safe no-ops. Handles do not keep the
/// event alive — they observe it.
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevents the event from firing. Safe to call multiple times, after the
  /// event fired, or on an empty handle.
  void cancel() {
    if (auto state = state_.lock()) state->cancelled = true;
  }

  /// True if the event is still scheduled to fire (not cancelled, not fired).
  bool pending() const {
    auto state = state_.lock();
    return state != nullptr && !state->cancelled;
  }

 private:
  friend class EventQueue;
  explicit EventHandle(std::weak_ptr<detail::EventState> state)
      : state_(std::move(state)) {}

  std::weak_ptr<detail::EventState> state_;
};

/// Min-heap of pending events ordered by (fire time, insertion sequence).
class EventQueue {
 public:
  /// Schedules `callback` to fire at absolute time `when`.
  EventHandle schedule(TimePoint when, std::function<void()> callback);

  /// Removes the earliest live event without firing it, skipping cancelled
  /// events. Returns false if no live event remains. The caller advances its
  /// clock to `when` before invoking `callback`, so callbacks always observe
  /// the correct current time.
  bool pop_next(TimePoint& when, std::function<void()>& callback);

  /// Timestamp of the earliest live event, or TimePoint::max() if none.
  TimePoint next_event_time();

  bool empty();

  /// Number of live (non-cancelled) events. O(n); intended for tests.
  std::size_t live_count() const;

  /// Total events ever scheduled; monotonically increasing.
  std::uint64_t scheduled_count() const { return next_seq_; }

 private:
  struct Entry {
    TimePoint when;
    std::uint64_t seq;
    std::shared_ptr<detail::EventState> state;

    // std::priority_queue is a max-heap; invert so earliest fires first.
    bool operator<(const Entry& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  void drop_cancelled_top();

  std::priority_queue<Entry> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace nicsched::sim
