// Seeded random-number generation for workloads.
//
// One `Rng` per stochastic component (arrival process, service-time sampler),
// each derived from the experiment's master seed via `fork()`. Deriving
// sub-streams instead of sharing one generator keeps components statistically
// independent and, more importantly, keeps results reproducible when one
// component changes how many numbers it draws.
#pragma once

#include <cstdint>
#include <random>

namespace nicsched::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  std::uint64_t seed() const { return seed_; }

  /// Derives an independent child stream. Successive calls produce distinct
  /// streams; the derivation is deterministic in (seed, fork index).
  Rng fork() {
    // SplitMix64-style mixing of (seed, fork counter) gives well-separated
    // child seeds even for adjacent parents.
    std::uint64_t z = seed_ + 0x9E3779B97F4A7C15ULL * (++fork_count_);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    z = z ^ (z >> 31);
    return Rng(z);
  }

  /// Uniform in [0, 1).
  double uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi) {
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
  }

  /// Exponential with the given mean (not rate).
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  double lognormal(double log_mean, double log_stddev) {
    return std::lognormal_distribution<double>(log_mean, log_stddev)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
  std::uint64_t fork_count_ = 0;
};

}  // namespace nicsched::sim
