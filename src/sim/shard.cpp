#include "sim/shard.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <utility>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace nicsched::sim {

namespace {

// Pin the calling worker thread to `core`. Best-effort: affinity is a
// scheduling hint, never a correctness knob, so failures are ignored.
void pin_self_to_core(std::size_t core) {
#ifdef __linux__
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(core % CPU_SETSIZE, &set);
  pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)core;
#endif
}

// Window end from a start time and the lookahead, saturating: an unbounded
// lookahead (no cross-shard links) or a start near the epoch horizon both
// clamp to "forever" and let the deadline/sync clips decide.
TimePoint saturating_end(TimePoint start, Duration lookahead) {
  const std::int64_t s = start.to_picos();
  const std::int64_t l = lookahead.to_picos();
  if (l >= std::numeric_limits<std::int64_t>::max() - s) return TimePoint::max();
  return TimePoint::from_picos(s + l);
}

}  // namespace

ShardGroup::ShardGroup(std::size_t shard_count) {
  if (shard_count == 0) shard_count = 1;
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Simulator>());
  }
  outboxes_ = std::vector<Outbox>(shard_count);
  const unsigned hw = std::thread::hardware_concurrency();
  // Spinning only pays when the other shard threads actually run in
  // parallel; on an oversubscribed machine go straight to the futex.
  spin_budget_ = (hw >= shard_count && shard_count > 1) ? 4096 : 0;
}

ShardGroup::~ShardGroup() {
  if (!workers_.empty()) {
    shutdown_.store(true, std::memory_order_release);
    epoch_.fetch_add(1, std::memory_order_release);
    epoch_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }
}

void ShardGroup::register_link(Duration latency) {
  if (latency <= Duration::zero()) {
    throw std::logic_error(
        "ShardGroup::register_link: cross-shard links need positive latency");
  }
  lookahead_ = std::min(lookahead_, latency);
}

void ShardGroup::post(std::uint32_t src, std::uint32_t dst, TimePoint when,
                      EventFn fn) {
  if (when < window_end_) {
    throw std::logic_error(
        "ShardGroup::post: arrival inside the current sync window — "
        "cross-shard link shorter than the registered lookahead");
  }
  outboxes_[src].mail.push_back(Mail{when, dst, std::move(fn)});
}

void ShardGroup::sync_at(TimePoint when, EventFn fn) {
  if (shard_count() == 1) {
    shards_[0]->at(when, std::move(fn));
    return;
  }
  syncs_.emplace(when, std::move(fn));
}

std::uint64_t ShardGroup::run() {
  if (shard_count() == 1) return shards_[0]->run();
  return drain(TimePoint::max(), /*finish_clocks_at_deadline=*/false);
}

std::uint64_t ShardGroup::run_until(TimePoint deadline) {
  if (shard_count() == 1) return shards_[0]->run_until(deadline);
  return drain(deadline, /*finish_clocks_at_deadline=*/true);
}

std::uint64_t ShardGroup::events_fired() const {
  std::uint64_t total = 0;
  for (const auto& sim : shards_) total += sim->events_fired();
  return total;
}

bool ShardGroup::any_stopped() const {
  for (const auto& sim : shards_) {
    if (sim->stopped()) return true;
  }
  return false;
}

void ShardGroup::flush_mailboxes() {
  std::size_t total = 0;
  for (const Outbox& box : outboxes_) total += box.mail.size();
  if (total == 0) return;
  // Stable order: concatenating outboxes in source order and stable-sorting
  // by `when` yields (when, src, send order) — the deterministic sequence in
  // which destination seq numbers are assigned.
  flush_scratch_.clear();
  flush_scratch_.reserve(total);
  for (Outbox& box : outboxes_) {
    for (Mail& mail : box.mail) flush_scratch_.push_back(&mail);
  }
  std::stable_sort(
      flush_scratch_.begin(), flush_scratch_.end(),
      [](const Mail* a, const Mail* b) { return a->when < b->when; });
  for (Mail* mail : flush_scratch_) {
    shards_[mail->dst]->at(mail->when, std::move(mail->fn));
  }
  for (Outbox& box : outboxes_) box.mail.clear();
}

void ShardGroup::start_workers() {
  if (!workers_.empty()) return;
  const char* pin_env = std::getenv("NICSCHED_SHARD_PIN");
  if (pin_env != nullptr && std::strcmp(pin_env, "1") == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw != 0 && hw < shard_count()) {
      std::fprintf(stderr,
                   "nicsched: NICSCHED_SHARD_PIN=1 ignored: %zu shards need "
                   "%zu cores but hardware_concurrency() is %u\n",
                   shard_count(), shard_count(), hw);
    } else {
#ifdef __linux__
      pin_workers_ = true;
#else
      std::fprintf(stderr,
                   "nicsched: NICSCHED_SHARD_PIN=1 ignored: no thread "
                   "affinity on this platform\n");
#endif
    }
  }
  workers_.reserve(shard_count() - 1);
  for (std::size_t i = 1; i < shard_count(); ++i) {
    workers_.emplace_back([this, i] { worker_main(i); });
  }
}

void ShardGroup::worker_main(std::size_t index) {
  if (pin_workers_) pin_self_to_core(index);
  std::uint64_t seen = 0;
  for (;;) {
    std::uint64_t current = epoch_.load(std::memory_order_acquire);
    for (int spin = 0; current == seen && spin < spin_budget_; ++spin) {
      current = epoch_.load(std::memory_order_acquire);
    }
    while (current == seen) {
      epoch_.wait(seen, std::memory_order_acquire);
      current = epoch_.load(std::memory_order_acquire);
    }
    if (shutdown_.load(std::memory_order_acquire)) return;
    seen = current;
    shards_[index]->run_window(window_end_);
    arrived_.fetch_add(1, std::memory_order_release);
    arrived_.notify_all();
  }
}

std::uint64_t ShardGroup::run_epoch(TimePoint end) {
  const std::uint64_t before = events_fired();
  window_end_ = end;
  arrived_.store(0, std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_release);
  epoch_.notify_all();
  shards_[0]->run_window(end);
  const std::size_t worker_count = shard_count() - 1;
  for (;;) {
    std::size_t done = arrived_.load(std::memory_order_acquire);
    for (int spin = 0; done != worker_count && spin < spin_budget_; ++spin) {
      done = arrived_.load(std::memory_order_acquire);
    }
    if (done == worker_count) break;
    arrived_.wait(done, std::memory_order_acquire);
  }
  return events_fired() - before;
}

std::uint64_t ShardGroup::drain(TimePoint deadline,
                                bool finish_clocks_at_deadline) {
  start_workers();
  std::uint64_t fired = 0;
  for (auto& sim : shards_) sim->reset_stop();
  for (;;) {
    flush_mailboxes();
    TimePoint next = TimePoint::max();
    for (const auto& sim : shards_) {
      next = std::min(next, sim->queue().next_event_time());
    }
    const TimePoint next_sync =
        syncs_.empty() ? TimePoint::max() : syncs_.begin()->first;
    const TimePoint target = std::min(next, next_sync);
    if (target > deadline || target == TimePoint::max()) break;
    if (next > next_sync) {
      // Every event at or before the sync instant has fired (the window clip
      // below is inclusive); run the sync callbacks (registration order) with
      // all clocks at exactly that time. The inclusive cut mirrors the serial
      // engine, where the harness registers its syncs *after* the components
      // whose events can coincide with them, so same-instant events hold
      // earlier sequence numbers and fire first there too.
      for (auto& sim : shards_) sim->advance_to(next_sync);
      while (!syncs_.empty() && syncs_.begin()->first == next_sync) {
        EventFn fn = std::move(syncs_.begin()->second);
        syncs_.erase(syncs_.begin());
        fn();
      }
      continue;
    }
    TimePoint end = saturating_end(next, lookahead_);
    if (next_sync < TimePoint::max()) {
      // Inclusive: the window may fire events at the sync instant itself.
      end = std::min(end, next_sync + Duration::picos(1));
    }
    if (deadline < TimePoint::max()) {
      end = std::min(end, deadline + Duration::picos(1));
    }
    fired += run_epoch(end);
    if (any_stopped()) break;
  }
  // A final flush keeps late cross-shard sends queued (beyond the deadline)
  // rather than stranded in outboxes, mirroring serial run_until semantics
  // where unfired events stay in the queue.
  flush_mailboxes();
  if (finish_clocks_at_deadline) {
    for (auto& sim : shards_) sim->advance_to(deadline);
  }
  return fired;
}

}  // namespace nicsched::sim
