// ShardGroup: conservative-lookahead parallel discrete-event simulation.
//
// A ShardGroup owns N independent `Simulator` shards — each with its own
// event queue, clock, and tracer — and synchronizes them with the classic
// conservative (Chandy–Misra–Bryant-style) windowing scheme:
//
//   * Every cross-shard communication path is a wire with a positive modelled
//     latency, registered up front via `register_link`. The minimum over all
//     registered links is the *lookahead* L.
//   * Time advances in windows. Each epoch the coordinator computes
//     `start` = the global minimum next-event time, fast-forwarding over idle
//     gaps, and `end = start + L` (clipped at sync points and the run
//     deadline). Every shard then fires its events with `when < end`
//     concurrently: a cross-shard send produced inside the window leaves at
//     `now >= start` and arrives at `now + latency >= start + L >= end`, so
//     no shard can receive anything that would land inside the window it is
//     currently executing.
//   * Cross-shard delivery is a time-stamped mailbox, not a direct queue
//     insert: `post()` appends to the source shard's outbox (single-writer
//     during the window), and at the barrier the coordinator flushes all
//     outboxes into the destination queues sorted by (when, source shard,
//     send order). Destination sequence numbers are therefore assigned in a
//     deterministic order, which is what makes multi-shard runs replayable:
//     same seed, same shard count → bit-identical results.
//
// Shard-count invariance (digests identical for 1, 2, and N shards) holds
// because per-shard sequence numbers preserve the relative order of any two
// same-shard schedules, and entities on different shards only interact
// through wires whose serialization makes equal-timestamp cross-source
// deliveries measure-zero; the `sim_shard_determinism_test` tier pins this
// empirically across seeds and workload families.
//
// A group of one shard is exactly the serial engine: `run_until`/`run`
// delegate to the shard's own loop, `sync_at` degenerates to `Simulator::at`,
// and no mailboxes exist — bit-identity with pre-shard goldens is by
// construction, not by testing luck.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "sim/simulator.h"
#include "sim/time.h"

namespace nicsched::sim {

class ShardGroup {
 public:
  explicit ShardGroup(std::size_t shard_count = 1);
  ~ShardGroup();

  ShardGroup(const ShardGroup&) = delete;
  ShardGroup& operator=(const ShardGroup&) = delete;

  std::size_t shard_count() const { return shards_.size(); }

  Simulator& shard(std::size_t index) { return *shards_[index]; }
  const Simulator& shard(std::size_t index) const { return *shards_[index]; }

  /// Shard 0 — where clients, the client network, and the ToR live in the
  /// cluster placement; the natural "main" simulator for callers that only
  /// ever use one shard.
  Simulator& front() { return *shards_[0]; }

  /// Declares a cross-shard link. The minimum latency over all declared
  /// links bounds the sync window; posting through an undeclared (or
  /// shorter) link trips the arrival check in post(). Latency must be
  /// positive — a zero-latency cross-shard link would collapse the window.
  void register_link(Duration latency);

  /// The current sync window width: min over registered links, or
  /// Duration::max() when no link is registered (fully independent shards).
  Duration lookahead() const { return lookahead_; }

  /// Mails `fn` from shard `src`'s running window into shard `dst`'s queue,
  /// to fire at `when`. Wait-free for the posting shard; the actual queue
  /// insert happens at the next barrier. `when` must be at or after the
  /// current window's end (guaranteed by any link with latency >=
  /// lookahead()); violations throw, because they would mean a shard could
  /// observe an event inside a window another shard already executed.
  void post(std::uint32_t src, std::uint32_t dst, TimePoint when, EventFn fn);

  /// Schedules `fn` to run on the coordinating thread at sim time `when`,
  /// after every shard has fired all events at or before `when` and before
  /// any shard fires an event after it. All shard clocks read exactly `when`
  /// inside `fn`, and all shard state may be touched — this is the only
  /// sanctioned way to read or mutate cross-shard state mid-run (snapshots,
  /// metric sampling ticks). With one shard this is exactly
  /// `front().at(when, fn)`; the inclusive cut matches that serial ordering
  /// as long as syncs are registered after the components whose events can
  /// coincide with them (events scheduled *after* the sync that land exactly
  /// at `when` fire before it here but after it serially — the harness never
  /// creates that pairing). Multiple syncs at one instant run in
  /// registration order. Must be called from the coordinating thread (setup
  /// code or another sync callback).
  void sync_at(TimePoint when, EventFn fn);

  /// Runs until every queue, mailbox, and sync is drained (or a shard called
  /// stop()). Returns events fired by this call across all shards.
  std::uint64_t run();

  /// Runs events with timestamps <= `deadline`; every shard clock finishes
  /// at `deadline` even if it drained earlier. Returns events fired across
  /// all shards.
  std::uint64_t run_until(TimePoint deadline);

  /// Total events fired across all shards since construction.
  std::uint64_t events_fired() const;

 private:
  struct Mail {
    TimePoint when;
    std::uint32_t dst;
    EventFn fn;
  };
  // One outbox per source shard, cache-line-isolated: the source thread
  // appends during its window, the coordinator drains at the barrier.
  struct alignas(64) Outbox {
    std::vector<Mail> mail;
  };

  void start_workers();
  void worker_main(std::size_t index);
  /// Drains every outbox into the destination queues, sorted by
  /// (when, src, send order). Coordinator-only, between epochs.
  void flush_mailboxes();
  /// Runs one concurrent window [.., end) across all shards. Returns events
  /// fired in the window.
  std::uint64_t run_epoch(TimePoint end);
  /// Shared drain loop; `deadline` is TimePoint::max() for run().
  std::uint64_t drain(TimePoint deadline, bool finish_clocks_at_deadline);
  bool any_stopped() const;

  std::vector<std::unique_ptr<Simulator>> shards_;
  std::vector<Outbox> outboxes_;
  std::vector<Mail*> flush_scratch_;
  // Sync events keyed by time; multimap preserves registration order within
  // one instant.
  std::multimap<TimePoint, EventFn> syncs_;
  Duration lookahead_ = Duration::max();

  // Epoch protocol state. The coordinator publishes window_end_, bumps
  // epoch_ (release), and runs shard 0 itself; workers acquire epoch_, run
  // their shard's window, and arrive (release). Futex-backed atomic waits
  // keep the idle side cheap on oversubscribed machines; a short spin keeps
  // latency down when real cores are available.
  std::vector<std::thread> workers_;
  TimePoint window_end_;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::size_t> arrived_{0};
  std::atomic<bool> shutdown_{false};
  int spin_budget_ = 0;
  // NICSCHED_SHARD_PIN=1: pin worker thread i to core i (core 0 stays with
  // the coordinating thread, which runs shard 0 in place). No-op with a
  // one-time warning when the machine has fewer cores than shards, or on
  // platforms without thread affinity. Scheduling-only: pinning cannot
  // change results, and the determinism tier runs with and without it.
  bool pin_workers_ = false;
};

}  // namespace nicsched::sim
