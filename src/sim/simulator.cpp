#include "sim/simulator.h"

namespace nicsched::sim {

std::uint64_t Simulator::run() {
  stopped_ = false;
  std::uint64_t fired = 0;
  TimePoint when;
  EventFn callback;
  while (!stopped_ && queue_.pop_next(when, callback)) {
    now_ = when;
    callback();
    ++fired;
    ++events_fired_;
  }
  return fired;
}

std::uint64_t Simulator::run_until(TimePoint deadline) {
  stopped_ = false;
  std::uint64_t fired = 0;
  TimePoint when;
  EventFn callback;
  while (!stopped_) {
    const TimePoint next = queue_.next_event_time();
    if (next > deadline) break;
    if (!queue_.pop_next(when, callback)) break;
    now_ = when;
    callback();
    ++fired;
    ++events_fired_;
  }
  if (now_ < deadline) now_ = deadline;
  return fired;
}

std::uint64_t Simulator::run_window(TimePoint end) {
  std::uint64_t fired = 0;
  TimePoint when;
  EventFn callback;
  while (!stopped_) {
    const TimePoint next = queue_.next_event_time();
    if (next >= end) break;
    if (!queue_.pop_next(when, callback)) break;
    now_ = when;
    callback();
    ++fired;
    ++events_fired_;
  }
  return fired;
}

bool Simulator::step() {
  TimePoint when;
  EventFn callback;
  if (!queue_.pop_next(when, callback)) return false;
  now_ = when;
  callback();
  ++events_fired_;
  return true;
}

}  // namespace nicsched::sim
