// The discrete-event simulator driving every modelled component.
//
// A `Simulator` owns the clock and the event queue. Components hold a
// reference to it and schedule callbacks; the main loop fires events in
// timestamp order and advances the clock to each event's time. The design is
// single-threaded on purpose: determinism (same seed → bit-identical result)
// is what makes the reproduction's experiments debuggable and its tests
// meaningful.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "sim/event_queue.h"
#include "sim/time.h"
#include "sim/trace.h"

namespace nicsched::sim {

class Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time. Monotonically non-decreasing.
  TimePoint now() const { return now_; }

  /// Schedules `fn` to run at absolute time `when`. Scheduling in the past
  /// is a logic error and throws.
  EventHandle at(TimePoint when, EventFn fn) {
    if (when < now_) {
      throw std::logic_error("Simulator::at: scheduling into the past");
    }
    return queue_.schedule(when, std::move(fn));
  }

  /// Schedules `fn` to run `delay` after the current time.
  EventHandle after(Duration delay, EventFn fn) {
    if (delay.is_negative()) {
      throw std::logic_error("Simulator::after: negative delay");
    }
    return queue_.schedule(now_ + delay, std::move(fn));
  }

  /// Schedules `fn` at the current time, after all callbacks already queued
  /// for this instant. Used to decouple call chains without advancing time.
  EventHandle defer(EventFn fn) {
    return queue_.schedule(now_, std::move(fn));
  }

  /// Runs events until the queue drains or `stop()` is called. Returns the
  /// number of events fired.
  std::uint64_t run();

  /// Runs events with timestamps <= `deadline`; the clock finishes at
  /// `deadline` even if the queue drained earlier. Returns events fired.
  std::uint64_t run_until(TimePoint deadline);

  /// Convenience: run_until(now() + span).
  std::uint64_t run_for(Duration span) { return run_until(now_ + span); }

  /// Runs events with timestamps strictly before `end`, leaving the clock at
  /// the last fired event (it does NOT fast-forward to `end`). This is the
  /// shard-window primitive of the conservative-lookahead parallel engine:
  /// cross-shard sends produced inside a window [start, end) always arrive at
  /// or after `end`, so a ShardGroup may run every shard's window
  /// concurrently and exchange mailboxes at the barrier. Returns events
  /// fired; ignores stop() semantics on entry (does not reset stopped_).
  std::uint64_t run_window(TimePoint end);

  /// Fast-forwards the clock without firing anything. Never moves backwards.
  void advance_to(TimePoint t) {
    if (t > now_) now_ = t;
  }

  /// Fires exactly one event if present. Returns false if queue is empty.
  bool step();

  /// Makes run()/run_until() return after the current event completes.
  void stop() { stopped_ = true; }

  bool stopped() const { return stopped_; }

  /// Re-arms a stopped simulator. run()/run_until() do this on entry; the
  /// ShardGroup drain loop does it explicitly because it drives shards
  /// through run_window(), which deliberately leaves stop state alone.
  void reset_stop() { stopped_ = false; }

  /// Total events fired since construction.
  std::uint64_t events_fired() const { return events_fired_; }

  EventQueue& queue() { return queue_; }

  /// The simulation-wide tracer. Disabled (and free) by default; tests and
  /// debugging tools install a sink. Components emit via
  /// `sim.trace(category, "component", "message")`.
  Tracer& tracer() { return tracer_; }

  void trace(TraceCategory category, std::string component,
             std::string message) {
    tracer_.emit(now_, category, std::move(component), std::move(message));
  }

  /// Lazy form: `format` (returning a {component, message} pair) only runs
  /// when a sink is installed. Hot paths use this so disabled tracing costs
  /// one branch, never an allocation.
  template <typename Fn>
    requires std::is_invocable_v<Fn&>
  void trace(TraceCategory category, Fn&& format) {
    tracer_.emit(now_, category, std::forward<Fn>(format));
  }

  bool span_enabled() const { return tracer_.span_enabled(); }

  /// Emits a span mark stamped with the current time.
  void span(std::uint64_t request_id, std::uint16_t kind, bool begin,
            std::uint32_t component = 0) {
    tracer_.span(SpanEvent{now_, request_id, kind, begin, component});
  }

  /// Emits a span mark with an explicit (possibly earlier) timestamp — used
  /// when a parse site learns the request id of a packet whose arrival was
  /// stamped by the NIC.
  void span_at(TimePoint when, std::uint64_t request_id, std::uint16_t kind,
               bool begin, std::uint32_t component = 0) {
    tracer_.span(SpanEvent{when, request_id, kind, begin, component});
  }

 private:
  EventQueue queue_;
  TimePoint now_;
  bool stopped_ = false;
  std::uint64_t events_fired_ = 0;
  Tracer tracer_;
};

}  // namespace nicsched::sim
