// Move-only type-erased callable with small-buffer optimization.
//
// The simulator fires millions of events per second of wall time, and every
// one of them used to round-trip a `std::function` whose capture exceeded the
// libstdc++ inline buffer — a heap allocation per event. `SmallFn` keeps the
// common simulation capture (a component pointer plus an id, or a component
// pointer plus a moved-in `Packet`) in 64 bytes of inline storage, and being
// move-only it can hold move-only captures directly, which is what lets the
// packet path move frames into event closures instead of wrapping them in
// `std::make_shared`.
//
// Semantics mirror the useful subset of `std::move_only_function`:
//  * construct from any callable; small + nothrow-movable ones live inline,
//    anything else falls back to a single heap allocation
//  * move-only; moved-from is empty
//  * invoking an empty SmallFn is undefined (callers check `operator bool`)
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace nicsched::sim {

template <typename Signature, std::size_t Capacity = 64>
class SmallFn;

template <typename R, typename... Args, std::size_t Capacity>
class SmallFn<R(Args...), Capacity> {
 public:
  SmallFn() noexcept = default;
  SmallFn(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, SmallFn> &&
                                        std::is_invocable_r_v<R, D&, Args...>>>
  SmallFn(F&& fn) {  // NOLINT(google-explicit-constructor)
    if constexpr (fits_inline<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(fn)));
      ops_ = &kHeapOps<D>;
    }
  }

  SmallFn(SmallFn&& other) noexcept { steal(other); }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }

  SmallFn& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  /// Destroys the held callable, leaving the SmallFn empty.
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  R operator()(Args... args) {
    return ops_->invoke(storage_, std::forward<Args>(args)...);
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// True if the held callable lives in the inline buffer (empty counts as
  /// inline). Exposed so tests can assert the hot captures never heap-spill.
  bool is_inline() const noexcept {
    return ops_ == nullptr || !ops_->heap_allocated;
  }

 private:
  struct Ops {
    R (*invoke)(void*, Args&&...);
    void (*relocate)(void* from, void* to) noexcept;
    void (*destroy)(void*) noexcept;
    bool heap_allocated;
  };

  template <typename D>
  static constexpr bool fits_inline =
      sizeof(D) <= Capacity && alignof(D) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<D>;

  template <typename D>
  static D* inline_target(void* storage) noexcept {
    return std::launder(reinterpret_cast<D*>(storage));
  }
  template <typename D>
  static D* heap_target(void* storage) noexcept {
    return *std::launder(reinterpret_cast<D**>(storage));
  }

  template <typename D>
  static constexpr Ops kInlineOps = {
      /*invoke=*/[](void* storage, Args&&... args) -> R {
        return (*inline_target<D>(storage))(std::forward<Args>(args)...);
      },
      /*relocate=*/
      [](void* from, void* to) noexcept {
        D* source = inline_target<D>(from);
        ::new (to) D(std::move(*source));
        source->~D();
      },
      /*destroy=*/[](void* storage) noexcept { inline_target<D>(storage)->~D(); },
      /*heap_allocated=*/false,
  };

  template <typename D>
  static constexpr Ops kHeapOps = {
      /*invoke=*/[](void* storage, Args&&... args) -> R {
        return (*heap_target<D>(storage))(std::forward<Args>(args)...);
      },
      /*relocate=*/
      [](void* from, void* to) noexcept {
        ::new (to) D*(heap_target<D>(from));
      },
      /*destroy=*/[](void* storage) noexcept { delete heap_target<D>(storage); },
      /*heap_allocated=*/true,
  };

  void steal(SmallFn& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(other.storage_, storage_);
      ops_ = std::exchange(other.ops_, nullptr);
    }
  }

  alignas(std::max_align_t) unsigned char storage_[Capacity];
  const Ops* ops_ = nullptr;
};

/// The event-callback type used throughout the simulator.
using EventFn = SmallFn<void()>;

}  // namespace nicsched::sim
