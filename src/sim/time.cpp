#include "sim/time.h"

#include <cmath>
#include <cstdio>

namespace nicsched::sim {

namespace {

std::string format_with_unit(double value, const char* unit) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4g%s", value, unit);
  return buf;
}

}  // namespace

std::string Duration::to_string() const {
  const double abs_ps = std::fabs(static_cast<double>(ps_));
  if (abs_ps < 1e3) return format_with_unit(static_cast<double>(ps_), "ps");
  if (abs_ps < 1e6) return format_with_unit(to_nanos(), "ns");
  if (abs_ps < 1e9) return format_with_unit(to_micros(), "us");
  if (abs_ps < 1e12) return format_with_unit(to_millis(), "ms");
  return format_with_unit(to_seconds(), "s");
}

std::string TimePoint::to_string() const {
  return Duration::picos(ps_).to_string();
}

}  // namespace nicsched::sim
