// Simulated-time primitives.
//
// All simulation time is kept in integer picoseconds. Picosecond resolution
// lets us represent single CPU cycles exactly (one cycle at 2.3 GHz is
// ~434.78 ps; we round to the nearest picosecond) while still covering more
// than 100 days of simulated time in an int64_t. Integer time keeps the
// simulator deterministic: there is no floating-point drift, and equal
// timestamps compare equal on every platform.
#pragma once

#include <cstdint>
#include <compare>
#include <concepts>
#include <string>

namespace nicsched::sim {

/// A signed span of simulated time, in picoseconds.
///
/// `Duration` is a value type with full arithmetic support. Use the named
/// constructors (`Duration::nanos(250)`, `Duration::micros(2.56)`) rather
/// than raw picosecond counts at call sites.
class Duration {
 public:
  constexpr Duration() = default;

  static constexpr Duration picos(std::int64_t ps) { return Duration(ps); }
  template <std::integral T>
  static constexpr Duration nanos(T ns) {
    return Duration(static_cast<std::int64_t>(ns) * kPicosPerNano);
  }
  template <std::integral T>
  static constexpr Duration micros(T us) {
    return Duration(static_cast<std::int64_t>(us) * kPicosPerMicro);
  }
  template <std::integral T>
  static constexpr Duration millis(T ms) {
    return Duration(static_cast<std::int64_t>(ms) * kPicosPerMilli);
  }
  template <std::integral T>
  static constexpr Duration seconds(T s) {
    return Duration(static_cast<std::int64_t>(s) * kPicosPerSecond);
  }

  /// Fractional-unit constructors; rounds to the nearest picosecond.
  static constexpr Duration nanos(double ns) {
    return Duration(round_to_picos(ns * static_cast<double>(kPicosPerNano)));
  }
  static constexpr Duration micros(double us) {
    return Duration(round_to_picos(us * static_cast<double>(kPicosPerMicro)));
  }
  static constexpr Duration millis(double ms) {
    return Duration(round_to_picos(ms * static_cast<double>(kPicosPerMilli)));
  }
  static constexpr Duration seconds(double s) {
    return Duration(round_to_picos(s * static_cast<double>(kPicosPerSecond)));
  }

  static constexpr Duration zero() { return Duration(0); }
  static constexpr Duration max() { return Duration(INT64_MAX); }

  constexpr std::int64_t to_picos() const { return ps_; }
  constexpr double to_nanos() const {
    return static_cast<double>(ps_) / static_cast<double>(kPicosPerNano);
  }
  constexpr double to_micros() const {
    return static_cast<double>(ps_) / static_cast<double>(kPicosPerMicro);
  }
  constexpr double to_millis() const {
    return static_cast<double>(ps_) / static_cast<double>(kPicosPerMilli);
  }
  constexpr double to_seconds() const {
    return static_cast<double>(ps_) / static_cast<double>(kPicosPerSecond);
  }

  constexpr bool is_zero() const { return ps_ == 0; }
  constexpr bool is_negative() const { return ps_ < 0; }

  constexpr Duration operator+(Duration other) const {
    return Duration(ps_ + other.ps_);
  }
  constexpr Duration operator-(Duration other) const {
    return Duration(ps_ - other.ps_);
  }
  constexpr Duration operator-() const { return Duration(-ps_); }
  template <std::integral T>
  constexpr Duration operator*(T k) const {
    return Duration(ps_ * static_cast<std::int64_t>(k));
  }
  constexpr Duration operator*(double k) const {
    return Duration(round_to_picos(static_cast<double>(ps_) * k));
  }
  template <std::integral T>
  constexpr Duration operator/(T k) const {
    return Duration(ps_ / static_cast<std::int64_t>(k));
  }
  /// Ratio of two durations (e.g. utilization computations).
  constexpr double operator/(Duration other) const {
    return static_cast<double>(ps_) / static_cast<double>(other.ps_);
  }

  constexpr Duration& operator+=(Duration other) {
    ps_ += other.ps_;
    return *this;
  }
  constexpr Duration& operator-=(Duration other) {
    ps_ -= other.ps_;
    return *this;
  }

  constexpr auto operator<=>(const Duration&) const = default;

  /// Human-readable rendering with an auto-selected unit, e.g. "2.56us".
  std::string to_string() const;

 private:
  static constexpr std::int64_t kPicosPerNano = 1'000;
  static constexpr std::int64_t kPicosPerMicro = 1'000'000;
  static constexpr std::int64_t kPicosPerMilli = 1'000'000'000;
  static constexpr std::int64_t kPicosPerSecond = 1'000'000'000'000;

  static constexpr std::int64_t round_to_picos(double ps) {
    return static_cast<std::int64_t>(ps >= 0 ? ps + 0.5 : ps - 0.5);
  }

  constexpr explicit Duration(std::int64_t ps) : ps_(ps) {}

  std::int64_t ps_ = 0;
};

template <std::integral T>
constexpr Duration operator*(T k, Duration d) {
  return d * k;
}
constexpr Duration operator*(double k, Duration d) { return d * k; }

/// An absolute instant of simulated time (picoseconds since simulation
/// start). Only differences between `TimePoint`s are meaningful.
class TimePoint {
 public:
  constexpr TimePoint() = default;

  static constexpr TimePoint origin() { return TimePoint(); }
  static constexpr TimePoint from_picos(std::int64_t ps) {
    return TimePoint(ps);
  }
  static constexpr TimePoint max() { return TimePoint(INT64_MAX); }

  constexpr std::int64_t to_picos() const { return ps_; }
  constexpr double to_micros() const {
    return static_cast<double>(ps_) / 1e6;
  }
  constexpr double to_seconds() const {
    return static_cast<double>(ps_) / 1e12;
  }

  constexpr Duration since_origin() const { return Duration::picos(ps_); }

  constexpr TimePoint operator+(Duration d) const {
    return TimePoint(ps_ + d.to_picos());
  }
  constexpr TimePoint operator-(Duration d) const {
    return TimePoint(ps_ - d.to_picos());
  }
  constexpr Duration operator-(TimePoint other) const {
    return Duration::picos(ps_ - other.ps_);
  }
  constexpr TimePoint& operator+=(Duration d) {
    ps_ += d.to_picos();
    return *this;
  }

  constexpr auto operator<=>(const TimePoint&) const = default;

  std::string to_string() const;

 private:
  constexpr explicit TimePoint(std::int64_t ps) : ps_(ps) {}

  std::int64_t ps_ = 0;
};

/// A CPU clock frequency; converts cycle counts to durations. The paper
/// reports preemption costs in cycles on 2.3 GHz Xeon E5-2658 cores, so the
/// hardware model needs exact cycles→time conversion.
class Frequency {
 public:
  constexpr Frequency() = default;

  static constexpr Frequency gigahertz(double ghz) { return Frequency(ghz); }
  static constexpr Frequency megahertz(double mhz) {
    return Frequency(mhz / 1e3);
  }

  constexpr double to_gigahertz() const { return ghz_; }

  /// Duration of `n` cycles at this frequency.
  constexpr Duration cycles(std::int64_t n) const {
    // One cycle at f GHz lasts 1000/f picoseconds.
    return Duration::picos(static_cast<std::int64_t>(
        static_cast<double>(n) * 1e3 / ghz_ + 0.5));
  }

  /// Number of whole cycles that fit in `d` at this frequency.
  constexpr std::int64_t cycles_in(Duration d) const {
    return static_cast<std::int64_t>(static_cast<double>(d.to_picos()) * ghz_ /
                                     1e3);
  }

  constexpr auto operator<=>(const Frequency&) const = default;

 private:
  constexpr explicit Frequency(double ghz) : ghz_(ghz) {}

  double ghz_ = 1.0;
};

}  // namespace nicsched::sim
