#include "sim/trace.h"

namespace nicsched::sim {

const char* to_string(TraceCategory category) {
  switch (category) {
    case TraceCategory::kPacket: return "packet";
    case TraceCategory::kQueue: return "queue";
    case TraceCategory::kDispatch: return "dispatch";
    case TraceCategory::kPreempt: return "preempt";
    case TraceCategory::kWorker: return "worker";
    case TraceCategory::kClient: return "client";
  }
  return "unknown";
}

}  // namespace nicsched::sim
