// Lightweight, zero-cost-when-disabled tracing for simulator components.
//
// Components emit structured trace records through a `Tracer` owned by the
// simulation harness. The default tracer discards everything; tests and the
// debug CLI install collectors. Tracing never affects simulation behaviour.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/time.h"

namespace nicsched::sim {

enum class TraceCategory : std::uint8_t {
  kPacket,      // packet handed between network elements
  kQueue,       // enqueue/dequeue on a task or RX queue
  kDispatch,    // scheduling decision
  kPreempt,     // preemption timer / interrupt activity
  kWorker,      // worker state transition
  kClient,      // request issued / response received
};

const char* to_string(TraceCategory category);

struct TraceRecord {
  TimePoint when;
  TraceCategory category;
  std::string component;  // e.g. "worker[3]", "dispatcher"
  std::string message;
};

class Tracer {
 public:
  using Sink = std::function<void(const TraceRecord&)>;

  /// Installs a sink; pass nullptr to disable. Returns the previous sink.
  Sink set_sink(Sink sink) {
    Sink old = std::move(sink_);
    sink_ = std::move(sink);
    return old;
  }

  bool enabled() const { return static_cast<bool>(sink_); }

  void emit(TimePoint when, TraceCategory category, std::string component,
            std::string message) const {
    if (sink_) {
      sink_(TraceRecord{when, category, std::move(component),
                        std::move(message)});
    }
  }

 private:
  Sink sink_;
};

/// A sink that appends records to a vector, for tests.
class TraceCollector {
 public:
  Tracer::Sink sink() {
    return [this](const TraceRecord& record) { records_.push_back(record); };
  }

  const std::vector<TraceRecord>& records() const { return records_; }
  void clear() { records_.clear(); }

 private:
  std::vector<TraceRecord> records_;
};

}  // namespace nicsched::sim
