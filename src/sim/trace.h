// Lightweight, zero-cost-when-disabled tracing for simulator components.
//
// Two channels flow through the simulation-wide `Tracer`:
//
//   * Text records (`TraceRecord`) — free-form, human-oriented messages for
//     debugging and for benches that read the trace stream. Call sites pass
//     a formatter callable so no string is built unless a sink is installed.
//   * Span events (`SpanEvent`) — typed begin/end marks keyed by request id,
//     the substrate of the src/obs request-lifecycle observability layer.
//     The sim layer treats `kind` as an opaque integer; obs::SpanKind gives
//     the taxonomy.
//
// The default tracer discards everything; tests, the debug CLI, and the
// obs capture layer install sinks. Tracing never affects simulation
// behaviour.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/time.h"

namespace nicsched::sim {

enum class TraceCategory : std::uint8_t {
  kPacket,      // packet handed between network elements
  kQueue,       // enqueue/dequeue on a task or RX queue
  kDispatch,    // scheduling decision
  kPreempt,     // preemption timer / interrupt activity
  kWorker,      // worker state transition
  kClient,      // request issued / response received
};

const char* to_string(TraceCategory category);

struct TraceRecord {
  TimePoint when;
  TraceCategory category;
  std::string component;  // e.g. "worker[3]", "dispatcher"
  std::string message;
};

/// One begin or end mark of a request-lifecycle span. POD on purpose: span
/// emission sits on hot paths, so the event must cost a handful of stores
/// (and nothing at all when no span sink is installed).
struct SpanEvent {
  TimePoint when;
  std::uint64_t request_id = 0;
  std::uint16_t kind = 0;  // obs::SpanKind, opaque at this layer
  bool begin = true;
  /// Emitting entity (worker index, dispatcher group, client id) — becomes
  /// the "thread" lane in Chrome trace exports.
  std::uint32_t component = 0;
};

class Tracer {
 public:
  using Sink = std::function<void(const TraceRecord&)>;
  using SpanSink = std::function<void(const SpanEvent&)>;

  /// Installs a sink; pass nullptr to disable. Returns the previous sink.
  Sink set_sink(Sink sink) {
    Sink old = std::move(sink_);
    sink_ = std::move(sink);
    return old;
  }

  bool enabled() const { return static_cast<bool>(sink_); }

  void emit(TimePoint when, TraceCategory category, std::string component,
            std::string message) const {
    if (sink_) {
      sink_(TraceRecord{when, category, std::move(component),
                        std::move(message)});
    }
  }

  /// Lazy variant: `format` is only invoked when a sink is installed, so
  /// call sites pay no allocation or formatting while tracing is disabled.
  /// `format` returns a {component, message} pair.
  template <typename Fn>
    requires std::is_invocable_v<Fn&>
  void emit(TimePoint when, TraceCategory category, Fn&& format) const {
    if (sink_) {
      auto [component, message] = format();
      sink_(TraceRecord{when, category, std::move(component),
                        std::move(message)});
    }
  }

  /// Installs a span sink; pass nullptr to disable. Returns the previous
  /// sink. Independent of the text-record sink.
  SpanSink set_span_sink(SpanSink sink) {
    SpanSink old = std::move(span_sink_);
    span_sink_ = std::move(sink);
    return old;
  }

  bool span_enabled() const { return static_cast<bool>(span_sink_); }

  void span(const SpanEvent& event) const {
    if (span_sink_) span_sink_(event);
  }

 private:
  Sink sink_;
  SpanSink span_sink_;
};

/// A sink that appends records to a vector, for tests.
class TraceCollector {
 public:
  Tracer::Sink sink() {
    return [this](const TraceRecord& record) { records_.push_back(record); };
  }

  const std::vector<TraceRecord>& records() const { return records_; }
  void clear() { records_.clear(); }

 private:
  std::vector<TraceRecord> records_;
};

}  // namespace nicsched::sim
