#include "stats/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace nicsched::stats {

namespace {
// Enough buckets to cover the full uint64 nanosecond range.
constexpr std::size_t kBucketArraySize = (64 - 7 + 1) * (1ULL << 7);
}  // namespace

Histogram::Histogram() : buckets_(kBucketArraySize, 0) {}

std::size_t Histogram::index_for(std::uint64_t nanos) {
  if (nanos < kSubBucketCount) return static_cast<std::size_t>(nanos);
  const unsigned msb = 63u - static_cast<unsigned>(std::countl_zero(nanos));
  const unsigned shift = msb - kSubBucketBits + 1;
  const std::uint64_t mantissa = nanos >> shift;
  return static_cast<std::size_t>(shift) * kSubBucketCount +
         static_cast<std::size_t>(mantissa);
}

std::uint64_t Histogram::representative_nanos(std::size_t index) {
  const std::uint64_t shift = index / kSubBucketCount;
  const std::uint64_t mantissa = index % kSubBucketCount;
  if (shift == 0) return mantissa;
  // Midpoint of [mantissa << shift, (mantissa + 1) << shift).
  return (mantissa << shift) + (1ULL << (shift - 1));
}

void Histogram::record(sim::Duration value) {
  std::int64_t ns = static_cast<std::int64_t>(value.to_nanos());
  if (ns < 0) ns = 0;
  const std::size_t index = index_for(static_cast<std::uint64_t>(ns));
  buckets_[std::min(index, buckets_.size() - 1)] += 1;
  ++count_;
  sum_ns_ += ns;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

sim::Duration Histogram::quantile(double q) const {
  if (count_ == 0) return sim::Duration::zero();
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the sample we want (1-based), per the nearest-rank definition.
  const std::uint64_t target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count_))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      return sim::Duration::nanos(
          static_cast<std::int64_t>(representative_nanos(i)));
    }
  }
  return max_;
}

sim::Duration Histogram::mean() const {
  if (count_ == 0) return sim::Duration::zero();
  return sim::Duration::nanos(static_cast<double>(sum_ns_) /
                              static_cast<double>(count_));
}

void Histogram::merge(const Histogram& other) {
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ns_ += other.sum_ns_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Histogram::clear() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ns_ = 0;
  min_ = sim::Duration::max();
  max_ = sim::Duration::zero();
}

}  // namespace nicsched::stats
