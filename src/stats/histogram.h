// Log-linear latency histogram (HdrHistogram-style).
//
// Values are bucketed with 2^kSubBucketBits linear sub-buckets per power of
// two, bounding relative quantile error by 2^-kSubBucketBits (<0.8 %) while
// keeping record() O(1) and memory constant. Tail-latency experiments record
// millions of samples; storing them individually would dominate simulation
// memory and sort time.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.h"

namespace nicsched::stats {

class Histogram {
 public:
  Histogram();

  /// Records one latency sample. Negative durations are counted as zero.
  void record(sim::Duration value);

  /// Value at quantile `q` in [0, 1]; returns zero when empty. The result is
  /// the representative (midpoint) value of the containing bucket.
  sim::Duration quantile(double q) const;

  sim::Duration percentile(double p) const { return quantile(p / 100.0); }

  std::uint64_t count() const { return count_; }
  sim::Duration min() const { return count_ == 0 ? sim::Duration::zero() : min_; }
  sim::Duration max() const { return max_; }
  sim::Duration mean() const;

  /// Adds all samples of `other` into this histogram.
  void merge(const Histogram& other);

  void clear();

 private:
  static constexpr unsigned kSubBucketBits = 7;
  static constexpr std::uint64_t kSubBucketCount = 1ULL << kSubBucketBits;

  static std::size_t index_for(std::uint64_t nanos);
  static std::uint64_t representative_nanos(std::size_t index);

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::int64_t sum_ns_ = 0;
  sim::Duration min_ = sim::Duration::max();
  sim::Duration max_ = sim::Duration::zero();
};

}  // namespace nicsched::stats
