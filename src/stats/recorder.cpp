#include "stats/recorder.h"

namespace nicsched::stats {

void LatencyRecorder::record(const workload::ResponseRecord& response) {
  if (response.sent_at < window_start_ || response.sent_at > window_end_) {
    return;
  }
  ++completed_;
  if (response.within_deadline()) ++goodput_;
  preemptions_ += response.preempt_count;
  overall_.record(response.latency());
  per_kind_[response.kind].record(response.latency());
}

const Histogram& LatencyRecorder::by_kind(std::uint16_t kind) const {
  static const Histogram kEmpty;
  auto it = per_kind_.find(kind);
  return it == per_kind_.end() ? kEmpty : it->second;
}

RunSummary LatencyRecorder::summarize(double offered_rps) const {
  RunSummary summary;
  summary.offered_rps = offered_rps;
  summary.issued = issued_;
  summary.completed = completed_;
  const double window_seconds = (window_end_ - window_start_).to_seconds();
  if (window_seconds > 0.0) {
    summary.achieved_rps =
        static_cast<double>(completed_) / window_seconds;
    summary.goodput_rps = static_cast<double>(goodput_) / window_seconds;
  }
  summary.goodput = goodput_;
  summary.mean_us = overall_.mean().to_micros();
  summary.p50_us = overall_.quantile(0.50).to_micros();
  summary.p90_us = overall_.quantile(0.90).to_micros();
  summary.p99_us = overall_.quantile(0.99).to_micros();
  summary.p999_us = overall_.quantile(0.999).to_micros();
  summary.max_us = overall_.max().to_micros();
  summary.preemptions = preemptions_;
  return summary;
}

}  // namespace nicsched::stats
