// Latency recording and per-run summaries.
#pragma once

#include <cstdint>
#include <map>

#include "sim/time.h"
#include "stats/histogram.h"
#include "workload/client.h"

namespace nicsched::stats {

/// The numbers one load point of a figure reports.
struct RunSummary {
  double offered_rps = 0.0;
  double achieved_rps = 0.0;
  std::uint64_t issued = 0;      // requests issued in the measurement window
  std::uint64_t completed = 0;   // responses for those requests
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p90_us = 0.0;
  double p99_us = 0.0;           // "tail latency" in the paper
  double p999_us = 0.0;
  double max_us = 0.0;
  std::uint64_t preemptions = 0; // total across the measurement window
  /// Responses that met their deadline (== completed when deadlines are
  /// off). Overload figures plot goodput_rps against achieved_rps to show
  /// the hockey-stick vs graceful degradation (DESIGN §11).
  std::uint64_t goodput = 0;
  double goodput_rps = 0.0;
};

/// Collects client-side response records inside a measurement window
/// (requests *issued* between window start and end count; warmup and
/// cooldown are excluded, matching standard load-generator methodology).
class LatencyRecorder {
 public:
  void set_window(sim::TimePoint start, sim::TimePoint end) {
    window_start_ = start;
    window_end_ = end;
  }

  sim::TimePoint window_start() const { return window_start_; }
  sim::TimePoint window_end() const { return window_end_; }

  void record(const workload::ResponseRecord& response);

  /// All samples regardless of kind.
  const Histogram& overall() const { return overall_; }

  /// Samples for one request kind (e.g. bimodal short=0 / long=1); an empty
  /// histogram if the kind was never seen.
  const Histogram& by_kind(std::uint16_t kind) const;

  std::uint64_t issued_in_window() const { return issued_; }
  std::uint64_t completed_in_window() const { return completed_; }
  std::uint64_t goodput_in_window() const { return goodput_; }
  std::uint64_t preemptions_observed() const { return preemptions_; }

  /// Called by the harness for every request issued (the recorder cannot see
  /// requests that never complete otherwise).
  void note_issued(sim::TimePoint sent_at) {
    if (sent_at >= window_start_ && sent_at <= window_end_) ++issued_;
  }

  RunSummary summarize(double offered_rps) const;

 private:
  sim::TimePoint window_start_;
  sim::TimePoint window_end_ = sim::TimePoint::max();
  Histogram overall_;
  std::map<std::uint16_t, Histogram> per_kind_;
  std::uint64_t issued_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t goodput_ = 0;
  std::uint64_t preemptions_ = 0;
};

}  // namespace nicsched::stats
