#include "stats/response_log.h"

#include <ostream>

#include "stats/table.h"

namespace nicsched::stats {

void ResponseLog::write_csv(std::ostream& out) const {
  out << "sent_us,latency_us,kind,preempts,work_us\n";
  for (const auto& record : records_) {
    out << fmt(record.sent_at.to_micros(), 3) << ','
        << fmt(record.latency().to_micros(), 3) << ',' << record.kind << ','
        << record.preempt_count << ',' << fmt(record.work.to_micros(), 3)
        << '\n';
  }
}

}  // namespace nicsched::stats
