// Per-request response logging: collect every ResponseRecord of a run and
// export it as CSV for external analysis/plotting. This is the raw data
// behind a RunSummary when percentiles aren't enough (per-request
// scatter, preemption counts vs latency, time series of tail behaviour).
#pragma once

#include <iosfwd>
#include <vector>

#include "workload/client.h"

namespace nicsched::stats {

class ResponseLog {
 public:
  /// Maximum records kept; once reached, further records are counted but
  /// not stored (bounding memory on long overload runs).
  explicit ResponseLog(std::size_t capacity = 1'000'000)
      : capacity_(capacity) {}

  void record(const workload::ResponseRecord& response) {
    ++seen_;
    if (records_.size() < capacity_) records_.push_back(response);
  }

  const std::vector<workload::ResponseRecord>& records() const {
    return records_;
  }
  std::uint64_t seen() const { return seen_; }
  bool truncated() const { return seen_ > records_.size(); }

  /// Writes `sent_us,latency_us,kind,preempts,work_us` rows with a header.
  void write_csv(std::ostream& out) const;

 private:
  std::size_t capacity_;
  std::vector<workload::ResponseRecord> records_;
  std::uint64_t seen_ = 0;
};

}  // namespace nicsched::stats
