#include "stats/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace nicsched::stats {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table::add_row: wrong cell count");
  }
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << (c == 0 ? "" : "  ");
      // Right-align for numeric readability.
      for (std::size_t pad = cells[c].size(); pad < widths[c]; ++pad) {
        out << ' ';
      }
      out << cells[c];
    }
    out << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  for (std::size_t i = 0; i < total; ++i) out << '-';
  out << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& out) const {
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) out << ',';
      out << cells[c];
    }
    out << '\n';
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

std::string fmt(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

Table make_sweep_table(const std::vector<RunSummary>& points) {
  Table table({"offered_krps", "achieved_krps", "p50_us", "p90_us", "p99_us",
               "p999_us", "mean_us", "completed", "preempts"});
  for (const auto& point : points) {
    table.add_row({fmt(point.offered_rps / 1e3), fmt(point.achieved_rps / 1e3),
                   fmt(point.p50_us), fmt(point.p90_us), fmt(point.p99_us),
                   fmt(point.p999_us), fmt(point.mean_us),
                   std::to_string(point.completed),
                   std::to_string(point.preemptions)});
  }
  return table;
}

void print_sweep(std::ostream& out, const std::string& title,
                 const std::vector<RunSummary>& points) {
  out << "== " << title << " ==\n";
  make_sweep_table(points).print(out);
  out << '\n';
}

}  // namespace nicsched::stats
