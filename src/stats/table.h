// Console table / CSV rendering for experiment output. Every bench binary
// prints its figure's series through these helpers so output stays uniform
// and greppable.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "stats/recorder.h"

namespace nicsched::stats {

/// A generic column-aligned text table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Renders with column alignment, a header underline, and a trailing
  /// newline.
  void print(std::ostream& out) const;

  void print_csv(std::ostream& out) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant decimals.
std::string fmt(double value, int digits = 1);

/// Standard columns for a latency/throughput sweep, one row per load point.
Table make_sweep_table(const std::vector<RunSummary>& points);

/// Prints a titled sweep: header line, table, blank line.
void print_sweep(std::ostream& out, const std::string& title,
                 const std::vector<RunSummary>& points);

}  // namespace nicsched::stats
