#include "tenant/tenant.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "core/env_spec.h"

namespace nicsched::tenant {

const char* to_string(SloClass slo) {
  switch (slo) {
    case SloClass::kLatencyCritical:
      return "latency_critical";
    case SloClass::kStandard:
      return "standard";
    case SloClass::kBestEffort:
      return "best_effort";
  }
  return "unknown";
}

std::optional<SloClass> slo_class_from_string(std::string_view name) {
  if (name == "lc" || name == "latency_critical") {
    return SloClass::kLatencyCritical;
  }
  if (name == "std" || name == "standard") return SloClass::kStandard;
  if (name == "be" || name == "best_effort") return SloClass::kBestEffort;
  return std::nullopt;
}

TenantParams TenantParams::from_specs(const std::vector<TenantSpec>& specs) {
  TenantParams params;
  // A mix that is only tenant 0 is the one-tenant shim over the legacy
  // single-stream knobs: the server must keep its classic path bit for bit,
  // so the layer only switches on when a real (non-zero) tenant id appears.
  for (const TenantSpec& spec : specs) {
    if (spec.id != 0) params.enabled = true;
  }
  params.tenants.reserve(specs.size());
  for (const TenantSpec& spec : specs) {
    params.tenants.push_back({spec.id, spec.weight, spec.slo});
  }
  return params;
}

void accumulate(std::vector<TenantStats>& lhs,
                const std::vector<TenantStats>& rhs) {
  if (lhs.size() < rhs.size()) lhs.resize(rhs.size());
  for (std::size_t i = 0; i < rhs.size(); ++i) {
    lhs[i].id = rhs[i].id;
    lhs[i].enqueued += rhs[i].enqueued;
    lhs[i].dispatched += rhs[i].dispatched;
    lhs[i].max_depth = std::max(lhs[i].max_depth, rhs[i].max_depth);
    lhs[i].overload.admitted += rhs[i].overload.admitted;
    lhs[i].overload.rejected += rhs[i].overload.rejected;
    lhs[i].overload.shed_expired += rhs[i].overload.shed_expired;
    lhs[i].overload.k_shrinks += rhs[i].overload.k_shrinks;
    lhs[i].overload.k_restores += rhs[i].overload.k_restores;
  }
}

std::optional<std::vector<TenantSpec>> parse_tenant_list(
    std::string_view text) {
  std::vector<TenantSpec> specs;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find(',', start);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view item = text.substr(start, end - start);
    start = end + 1;
    if (item.empty()) return std::nullopt;

    // id : weight : class [: rate_rps]
    std::vector<std::string> fields;
    std::size_t field_start = 0;
    while (field_start <= item.size()) {
      std::size_t field_end = item.find(':', field_start);
      if (field_end == std::string_view::npos) field_end = item.size();
      fields.emplace_back(item.substr(field_start, field_end - field_start));
      field_start = field_end + 1;
    }
    if (fields.size() < 3 || fields.size() > 4) return std::nullopt;

    TenantSpec spec;
    char* parse_end = nullptr;
    const unsigned long id = std::strtoul(fields[0].c_str(), &parse_end, 10);
    if (parse_end != fields[0].c_str() + fields[0].size() || id > 0xFFFF) {
      return std::nullopt;
    }
    spec.id = static_cast<std::uint16_t>(id);
    spec.weight = std::strtod(fields[1].c_str(), &parse_end);
    if (parse_end != fields[1].c_str() + fields[1].size() ||
        spec.weight <= 0.0) {
      return std::nullopt;
    }
    const auto slo = slo_class_from_string(fields[2]);
    if (!slo) return std::nullopt;
    spec.slo = *slo;
    if (fields.size() == 4) {
      spec.rate_rps = std::strtod(fields[3].c_str(), &parse_end);
      if (parse_end != fields[3].c_str() + fields[3].size() ||
          spec.rate_rps < 0.0) {
        return std::nullopt;
      }
    }
    specs.push_back(std::move(spec));
    if (end == text.size()) break;
  }
  return specs;
}

std::vector<TenantSpec> tenants_from_env() {
  std::string text;
  if (!core::EnvSpec::text("NICSCHED_TENANTS", text)) return {};
  auto specs = parse_tenant_list(text);
  if (!specs) {
    std::fprintf(stderr,
                 "nicsched: ignoring malformed NICSCHED_TENANTS=\"%s\" "
                 "(expected id:weight:class[:rate_rps],...)\n",
                 text.c_str());
    return {};
  }
  return *specs;
}

// ---- TenantDispatchQueue ---------------------------------------------------

TenantDispatchQueue::TenantDispatchQueue(const TenantParams& params)
    : params_(params) {
  const std::size_t count = std::max<std::size_t>(params_.tenants.size(), 1);
  lanes_.resize(count);
  stats_.resize(count);
  for (std::size_t i = 0; i < params_.tenants.size(); ++i) {
    stats_[i].id = params_.tenants[i].id;
    by_class_[static_cast<std::size_t>(params_.tenants[i].slo)].push_back(i);
  }
  if (params_.tenants.empty()) {
    by_class_[static_cast<std::size_t>(SloClass::kStandard)].push_back(0);
  }
}

void TenantDispatchQueue::push_new(proto::RequestDescriptor descriptor,
                                   sim::TimePoint now) {
  const std::size_t index = params_.index_of(descriptor.tenant);
  enqueue(index, Entry{std::move(descriptor), now});
}

void TenantDispatchQueue::push_preempted(proto::RequestDescriptor descriptor,
                                         sim::TimePoint now) {
  const std::size_t index = params_.index_of(descriptor.tenant);
  enqueue(index, Entry{std::move(descriptor), now});
}

void TenantDispatchQueue::enqueue(std::size_t index, Entry entry) {
  Lane& lane = lanes_[index];
  lane.entries.push_back(std::move(entry));
  ++size_;
  max_depth_ = std::max(max_depth_, size_);
  ++stats_[index].enqueued;
  stats_[index].max_depth =
      std::max(stats_[index].max_depth, lane.entries.size());
  if (!params_.fair_dispatch) fifo_order_.push_back(index);
}

bool TenantDispatchQueue::expired(const proto::RequestDescriptor& descriptor,
                                  sim::TimePoint now) const {
  return shed_expired_ && descriptor.deadline_ps != 0 &&
         now.to_picos() >=
             static_cast<std::int64_t>(descriptor.deadline_ps);
}

bool TenantDispatchQueue::cancelled(
    const proto::RequestDescriptor& descriptor) const {
  return !cancelled_ids_.empty() &&
         cancelled_ids_.count(descriptor.request_id) != 0;
}

void TenantDispatchQueue::shed_expired_front(std::size_t index,
                                             sim::TimePoint now) {
  Lane& lane = lanes_[index];
  while (!lane.entries.empty()) {
    const proto::RequestDescriptor& front = lane.entries.front().descriptor;
    if (cancelled(front)) {
      cancelled_ids_.erase(front.request_id);
      ++cancelled_total_;
    } else if (expired(front, now)) {
      ++stats_[index].overload.shed_expired;
      ++shed_total_;
    } else {
      break;
    }
    lane.entries.pop_front();
    --size_;
  }
}

TenantDispatchQueue::Popped TenantDispatchQueue::take_front(
    std::size_t index) {
  Lane& lane = lanes_[index];
  Popped popped;
  popped.descriptor = std::move(lane.entries.front().descriptor);
  popped.tenant_index = index;
  popped.queue_delay = sim::Duration{};
  lane.entries.pop_front();
  --size_;
  ++stats_[index].dispatched;
  return popped;
}

std::optional<TenantDispatchQueue::Popped> TenantDispatchQueue::pop(
    sim::TimePoint now) {
  if (!params_.fair_dispatch) {
    // Interference baseline: one FIFO across all tenants. fifo_order_ holds
    // slot indices in arrival order; since each lane is itself FIFO, the
    // k-th occurrence of a slot always names that lane's k-th entry, so the
    // global head is lanes_[fifo_order_.front()].front().
    while (!fifo_order_.empty()) {
      const std::size_t index = fifo_order_.front();
      Lane& lane = lanes_[index];
      if (cancelled(lane.entries.front().descriptor)) {
        cancelled_ids_.erase(lane.entries.front().descriptor.request_id);
        ++cancelled_total_;
        fifo_order_.pop_front();
        lane.entries.pop_front();
        --size_;
        continue;
      }
      if (expired(lane.entries.front().descriptor, now)) {
        fifo_order_.pop_front();
        lane.entries.pop_front();
        --size_;
        ++stats_[index].overload.shed_expired;
        ++shed_total_;
        continue;
      }
      const sim::TimePoint enqueued_at = lane.entries.front().enqueued_at;
      fifo_order_.pop_front();
      Popped popped = take_front(index);
      popped.queue_delay = now - enqueued_at;
      return popped;
    }
    return std::nullopt;
  }

  // Strict priority across classes; DRR inside the class. The cursor lane
  // holds the current *turn*: it is granted quantum x weight once per turn,
  // serves head entries while its deficit covers their remaining work, then
  // yields and carries any leftover credit into its next turn. Every full
  // rotation grants each backlogged lane exactly one quantum, so deficits
  // strictly grow and the loop terminates even when a single request costs
  // more than one grant.
  for (std::size_t c = 0; c < kSloClassCount; ++c) {
    const auto& members = by_class_[c];
    if (members.empty()) continue;
    for (const std::size_t index : members) shed_expired_front(index, now);

    std::size_t active = 0;
    for (const std::size_t index : members) {
      if (!lanes_[index].entries.empty()) ++active;
    }
    if (active == 0) continue;

    std::size_t position = cursor_[c] % members.size();
    while (true) {
      const std::size_t index = members[position];
      Lane& lane = lanes_[index];
      if (lane.entries.empty()) {
        // A lane that drained banks no credit into the next busy period.
        lane.deficit_ps = 0.0;
        turn_granted_[c] = false;
        position = (position + 1) % members.size();
        continue;
      }
      const double cost =
          static_cast<double>(lane.entries.front().descriptor.remaining_ps);
      if (!turn_granted_[c]) {
        const double weight =
            index < params_.tenants.size() ? params_.tenants[index].weight
                                           : 1.0;
        lane.deficit_ps +=
            static_cast<double>(params_.quantum.to_picos()) * weight;
        turn_granted_[c] = true;
      }
      if (lane.deficit_ps >= cost) {
        lane.deficit_ps -= cost;
        cursor_[c] = position;
        const sim::TimePoint enqueued_at = lane.entries.front().enqueued_at;
        Popped popped = take_front(index);
        popped.queue_delay = now - enqueued_at;
        if (lane.entries.empty()) {
          lane.deficit_ps = 0.0;
          cursor_[c] = (position + 1) % members.size();
          turn_granted_[c] = false;
        }
        return popped;
      }
      // Turn exhausted: yield, carrying the leftover credit forward.
      turn_granted_[c] = false;
      position = (position + 1) % members.size();
    }
  }
  return std::nullopt;
}

// ---- TenantAdmission -------------------------------------------------------

TenantAdmission::TenantAdmission(const TenantParams& params,
                                 const overload::OverloadParams& overload) {
  const std::size_t count = std::max<std::size_t>(params.tenants.size(), 1);
  gates_.reserve(count);
  stats_.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    gates_.emplace_back(overload);
  }
}

bool TenantAdmission::admit(std::size_t index, std::size_t tenant_depth) {
  const bool admitted = gates_[index].admit(tenant_depth);
  if (admitted) {
    ++stats_[index].admitted;
  } else {
    ++stats_[index].rejected;
  }
  return admitted;
}

void TenantAdmission::observe(std::size_t index, sim::Duration delay) {
  gates_[index].observe_queue_delay(delay);
}

std::vector<TenantStats> assemble_stats(const TenantParams& params,
                                        const TenantDispatchQueue* queue,
                                        const TenantAdmission* admission) {
  if (!params.enabled) return {};
  const std::size_t count = std::max<std::size_t>(params.tenants.size(), 1);
  std::vector<TenantStats> rows(count);
  for (std::size_t i = 0; i < params.tenants.size(); ++i) {
    rows[i].id = params.tenants[i].id;
  }
  if (queue != nullptr) accumulate(rows, queue->stats());
  if (admission != nullptr) {
    const auto& gates = admission->stats();
    for (std::size_t i = 0; i < rows.size() && i < gates.size(); ++i) {
      rows[i].overload.admitted += gates[i].admitted;
      rows[i].overload.rejected += gates[i].rejected;
    }
  }
  return rows;
}

}  // namespace nicsched::tenant
