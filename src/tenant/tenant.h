// Multi-tenant serving at the NIC (DESIGN §13).
//
// Millions of users are not one Poisson stream: production serving multiplexes
// many tenants — each with its own service distribution, offered load, SLO
// class, and share weight — onto one NIC dispatcher. This layer adds:
//
//  * `TenantSpec` — the canonical, client-facing description of one tenant's
//    offered load (the `ExperimentConfig.with_tenants` API). The legacy
//    single-stream knobs survive as a one-tenant shim built from them.
//  * `TenantParams` — the server-facing dispatch/admission config derived
//    from the specs: id → weight → SLO class, carried by every family's
//    Config and by `HostSpec` for rack mode.
//  * `TenantDispatchQueue` — strict priority across SLO classes, deficit
//    round robin (DRR) between the tenants inside a class. Deficits are in
//    picoseconds of *work*, so a weight buys a share of worker time, not a
//    share of request count (the quota model from SNIPPETS.md §2: a weight
//    is a number of service-time-equivalents per round).
//  * `TenantAdmission` — per-tenant EWMA admission gates composing with the
//    PR 5 overload controller: a saturating tenant's queueing-delay samples
//    close *its* gate without poisoning its neighbours' estimates.
//
// Everything defaults OFF. With no tenant mix configured the servers keep
// their classic TaskQueue/global-gate path, clients emit untenanted frames,
// and runs are bit-identical to pre-tenant builds.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "overload/overload.h"
#include "proto/messages.h"
#include "sim/time.h"
#include "workload/distribution.h"

namespace nicsched::tenant {

/// Strict-priority service classes. Lower value = served first; within one
/// class tenants share by DRR weight.
enum class SloClass : std::uint8_t {
  kLatencyCritical = 0,
  kStandard = 1,
  kBestEffort = 2,
};
inline constexpr std::size_t kSloClassCount = 3;

const char* to_string(SloClass slo);
/// Accepts "lc"/"latency_critical", "std"/"standard", "be"/"best_effort".
std::optional<SloClass> slo_class_from_string(std::string_view name);

/// One tenant's offered load, as the workload layer sees it. The canonical
/// way to describe load to `run_experiment`; the single-stream
/// `ExperimentConfig` knobs are a one-tenant shim over this.
struct TenantSpec {
  /// Wire tag. 0 is "untenanted": frames stay version 1 and the tenant
  /// layer stays off — the one-tenant shim uses it for bit-identity.
  /// Real mixes should use ids >= 1.
  std::uint16_t id = 0;
  /// Label for tables/JSON; empty = "t<id>".
  std::string name;
  /// DRR share (of worker time) within this tenant's SLO class.
  double weight = 1.0;
  SloClass slo = SloClass::kStandard;
  /// Offered load. 0 = inherit the experiment's `offered_rps` (split across
  /// env-declared tenants by weight).
  double rate_rps = 0.0;
  /// Service-time distribution; null = inherit the experiment's.
  std::shared_ptr<workload::ServiceDistribution> service;
  /// Per-request completion deadline; zero = inherit the overload params'
  /// deadline when overload control is on, else none.
  sim::Duration deadline{};

  // Fluent setters, mirroring ExperimentConfig's builder style.
  TenantSpec& named(std::string label) {
    name = std::move(label);
    return *this;
  }
  TenantSpec& weighted(double share) {
    weight = share;
    return *this;
  }
  TenantSpec& slo_class(SloClass value) {
    slo = value;
    return *this;
  }
  TenantSpec& load(double rps) {
    rate_rps = rps;
    return *this;
  }
  TenantSpec& with_service(
      std::shared_ptr<workload::ServiceDistribution> distribution) {
    service = std::move(distribution);
    return *this;
  }
  TenantSpec& fixed(sim::Duration work) {
    return with_service(std::make_shared<workload::FixedDistribution>(work));
  }
  TenantSpec& bimodal(sim::Duration common, sim::Duration rare,
                      double rare_fraction) {
    return with_service(std::make_shared<workload::BimodalDistribution>(
        common, rare, rare_fraction));
  }
  TenantSpec& with_deadline(sim::Duration value) {
    deadline = value;
    return *this;
  }

  std::string label() const {
    return name.empty() ? "t" + std::to_string(id) : name;
  }
};

/// Convenience root for the fluent spec: `make_tenant(1).weighted(4)...`.
inline TenantSpec make_tenant(std::uint16_t id) {
  TenantSpec spec;
  spec.id = id;
  return spec;
}

/// Server-side view of one tenant: everything dispatch needs, nothing the
/// workload layer owns.
struct TenantClass {
  std::uint16_t id = 0;
  double weight = 1.0;
  SloClass slo = SloClass::kStandard;

  bool operator==(const TenantClass&) const = default;
};

/// Per-server tenant dispatch/admission configuration. Travels on every
/// family's Config and on `HostSpec` for rack mode.
struct TenantParams {
  /// Master switch. False = the server keeps its classic single-queue path
  /// bit for bit; no per-tenant state is even allocated.
  bool enabled = false;
  /// True: strict SLO-class priority + DRR between per-tenant queues.
  /// False: one FIFO across all tenants (the interference baseline the
  /// isolation bench compares against), still tenant-tagged for stats.
  bool fair_dispatch = true;
  /// DRR credit granted per unit weight per round, in service time.
  sim::Duration quantum = sim::Duration::micros(5);
  std::vector<TenantClass> tenants;

  /// Slot for a wire tenant id; unknown ids (including untagged 0 when no
  /// tenant declares it) ride slot 0 so nothing is ever dropped for lack of
  /// a matching spec.
  std::size_t index_of(std::uint16_t id) const {
    for (std::size_t i = 0; i < tenants.size(); ++i) {
      if (tenants[i].id == id) return i;
    }
    return 0;
  }

  static TenantParams from_specs(const std::vector<TenantSpec>& specs);

  bool operator==(const TenantParams&) const = default;
};

/// Per-tenant counters every server reports via `ServerStats::tenants` and
/// the exp JSON/CSV sinks. The overload sub-struct carries this tenant's
/// admission/shedding outcomes (k_* stay zero: adaptive-K is per worker,
/// not per tenant).
struct TenantStats {
  std::uint16_t id = 0;
  std::uint64_t enqueued = 0;    ///< admitted into the dispatch queue
  std::uint64_t dispatched = 0;  ///< popped for worker assignment
  std::size_t max_depth = 0;     ///< this tenant's queue high-water mark
  overload::OverloadStats overload;

  bool operator==(const TenantStats&) const = default;
};

/// Sums rhs into lhs element-wise (rack mode aggregates per-host rows).
void accumulate(std::vector<TenantStats>& lhs,
                const std::vector<TenantStats>& rhs);

/// Parses the compact `NICSCHED_TENANTS` spec string:
///   id:weight:class[:rate_rps][,id:weight:class[:rate_rps]...]
/// e.g. "1:4:lc,2:1:be" — class as per slo_class_from_string. Service
/// distributions cannot be expressed here; callers fill them from the
/// experiment's legacy service knob. Returns nullopt on malformed input.
std::optional<std::vector<TenantSpec>> parse_tenant_list(std::string_view text);

/// `parse_tenant_list` applied to NICSCHED_TENANTS; empty when unset or
/// malformed (malformed input also warns on stderr — a typo'd override must
/// not silently vanish).
std::vector<TenantSpec> tenants_from_env();

/// The NIC dispatcher's multi-tenant queue: strict priority across SLO
/// classes, work-cost DRR between tenants within a class. Drop-in for the
/// TaskQueue role in the dispatch loop (push_new / push_preempted / pop with
/// shed-at-pop), with the tenant slot of every popped entry reported so the
/// caller can feed per-tenant admission EWMAs.
class TenantDispatchQueue {
 public:
  explicit TenantDispatchQueue(const TenantParams& params);

  void push_new(proto::RequestDescriptor descriptor, sim::TimePoint now);
  void push_preempted(proto::RequestDescriptor descriptor, sim::TimePoint now);

  struct Popped {
    proto::RequestDescriptor descriptor;
    std::size_t tenant_index = 0;
    /// Time the entry waited in the queue (admission EWMA feed).
    sim::Duration queue_delay{};
  };
  /// Next descriptor under the dispatch policy; expired entries are shed on
  /// the way (counted per tenant) when shedding is enabled.
  std::optional<Popped> pop(sim::TimePoint now);

  void set_shed_expired(bool on) { shed_expired_ = on; }

  /// Lazy cancel (DESIGN §16): a still-queued request with this id is
  /// dropped at the next pop instead of occupying a worker. Ids are unique
  /// per run, so a stale mark can never hit a later request; it is consumed
  /// on match and harmless otherwise.
  void cancel(std::uint64_t request_id) { cancelled_ids_.insert(request_id); }
  std::uint64_t cancelled_total() const { return cancelled_total_; }

  bool empty() const { return size_ == 0; }
  std::size_t depth() const { return size_; }
  std::size_t depth_of(std::size_t index) const {
    return lanes_[index].entries.size();
  }
  std::size_t index_of(std::uint16_t id) const { return params_.index_of(id); }
  std::size_t tenant_count() const { return lanes_.size(); }

  /// Per-tenant enqueued/dispatched/shed/max-depth counters, slot-aligned
  /// with `TenantParams::tenants`.
  const std::vector<TenantStats>& stats() const { return stats_; }
  std::uint64_t shed_total() const { return shed_total_; }
  /// Global (all-tenant) backlog high-water mark, the ServerStats
  /// `queue_max_depth` analogue.
  std::size_t max_depth() const { return max_depth_; }

 private:
  struct Entry {
    proto::RequestDescriptor descriptor;
    sim::TimePoint enqueued_at;
  };
  struct Lane {
    std::deque<Entry> entries;
    /// DRR credit in picoseconds of work.
    double deficit_ps = 0.0;
  };

  void enqueue(std::size_t index, Entry entry);
  bool expired(const proto::RequestDescriptor& descriptor,
               sim::TimePoint now) const;
  bool cancelled(const proto::RequestDescriptor& descriptor) const;
  /// Drops expired (shedding on only) and cancelled entries from the front
  /// of `lane`.
  void shed_expired_front(std::size_t index, sim::TimePoint now);
  Popped take_front(std::size_t index);

  TenantParams params_;
  bool shed_expired_ = false;
  std::vector<Lane> lanes_;
  /// FIFO order across all tenants for `fair_dispatch == false`: slot
  /// indices in arrival order (entries still live in their lanes so the
  /// per-tenant counters stay exact).
  std::deque<std::size_t> fifo_order_;
  /// Tenant slots per SLO class, in spec order.
  std::array<std::vector<std::size_t>, kSloClassCount> by_class_;
  /// DRR position within each class's member list.
  std::array<std::size_t, kSloClassCount> cursor_{};
  /// Whether the cursor lane already received its quantum for the turn in
  /// progress (a turn spans multiple pop() calls while the deficit lasts).
  std::array<bool, kSloClassCount> turn_granted_{};
  std::vector<TenantStats> stats_;
  std::uint64_t shed_total_ = 0;
  std::uint64_t cancelled_total_ = 0;
  std::unordered_set<std::uint64_t> cancelled_ids_;
  std::size_t size_ = 0;
  std::size_t max_depth_ = 0;
};

/// Per-tenant ingress admission: one PR 5 EWMA gate per tenant, fed by that
/// tenant's own queueing delays. Replaces the dispatcher's single global
/// gate when the tenant layer is on — under a mixed load the aggressive
/// tenant's delay samples would otherwise close the shared gate against its
/// well-behaved neighbours.
class TenantAdmission {
 public:
  TenantAdmission(const TenantParams& params,
                  const overload::OverloadParams& overload);

  /// Admit/reject a request for tenant slot `index`, judged against that
  /// tenant's own queue depth. Counts the outcome per tenant.
  bool admit(std::size_t index, std::size_t tenant_depth);
  /// Feeds one dispatch-observed queueing delay into `index`'s gate.
  void observe(std::size_t index, sim::Duration delay);

  /// Admitted/rejected per tenant slot.
  const std::vector<overload::OverloadStats>& stats() const { return stats_; }

 private:
  std::vector<overload::AdmissionController> gates_;
  std::vector<overload::OverloadStats> stats_;
};

/// Builds the `ServerStats::tenants` rows: the queue's per-tenant counters
/// merged with the admission gates' outcomes. Either source may be null
/// (e.g. run-to-completion families have gates but no central queue).
std::vector<TenantStats> assemble_stats(const TenantParams& params,
                                        const TenantDispatchQueue* queue,
                                        const TenantAdmission* admission);

}  // namespace nicsched::tenant
