// Inter-arrival processes for the open-loop load generator.
#pragma once

#include <memory>
#include <string>

#include "sim/random.h"
#include "sim/time.h"

namespace nicsched::workload {

class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  /// Gap until the next arrival.
  virtual sim::Duration next_gap(sim::Rng& rng) = 0;

  virtual std::string name() const = 0;
};

/// Poisson arrivals at `rate_rps` requests/second — the standard open-loop
/// assumption for datacenter load generators like mutilate (§4).
class PoissonArrivals final : public ArrivalProcess {
 public:
  explicit PoissonArrivals(double rate_rps) : mean_gap_ns_(1e9 / rate_rps) {}

  sim::Duration next_gap(sim::Rng& rng) override {
    return sim::Duration::nanos(rng.exponential(mean_gap_ns_));
  }

  std::string name() const override { return "poisson"; }

 private:
  double mean_gap_ns_;
};

/// Two-state Markov-modulated Poisson process: a `normal` Poisson rate that
/// occasionally switches to a `burst` rate for exponentially-distributed
/// spells. Models §2.2's concern that "a workload comprised mainly of short
/// requests could see a burst of long requests" — or simply bursty offered
/// load, the regime where reactive control (work stealing, elastic RSS)
/// lags and preemption/centralization shine.
class BurstyArrivals final : public ArrivalProcess {
 public:
  struct Config {
    double normal_rps = 100'000.0;
    double burst_rps = 500'000.0;
    /// Mean time between burst onsets (while in the normal state).
    sim::Duration mean_normal_spell = sim::Duration::millis(5);
    /// Mean burst duration.
    sim::Duration mean_burst_spell = sim::Duration::millis(1);
  };

  explicit BurstyArrivals(Config config) : config_(config) {}

  sim::Duration next_gap(sim::Rng& rng) override {
    // Draw the gap at the current state's rate; then advance the state
    // clock and possibly flip. Gaps are short relative to spells, so
    // per-gap state evaluation is an accurate MMPP discretization.
    const double rate =
        in_burst_ ? config_.burst_rps : config_.normal_rps;
    const sim::Duration gap =
        sim::Duration::nanos(rng.exponential(1e9 / rate));
    spell_remaining_ -= gap;
    if (spell_remaining_.is_negative() || spell_remaining_.is_zero()) {
      in_burst_ = !in_burst_;
      const sim::Duration mean_spell = in_burst_
                                           ? config_.mean_burst_spell
                                           : config_.mean_normal_spell;
      spell_remaining_ =
          sim::Duration::nanos(rng.exponential(mean_spell.to_nanos()));
    }
    return gap;
  }

  std::string name() const override { return "bursty"; }

  bool in_burst() const { return in_burst_; }

  /// Long-run average rate: spells weight the two Poisson rates.
  double mean_rate_rps() const {
    const double normal_s = config_.mean_normal_spell.to_seconds();
    const double burst_s = config_.mean_burst_spell.to_seconds();
    return (config_.normal_rps * normal_s + config_.burst_rps * burst_s) /
           (normal_s + burst_s);
  }

 private:
  Config config_;
  bool in_burst_ = false;
  sim::Duration spell_remaining_;
};

/// Evenly spaced arrivals; isolates queueing effects from arrival burstiness.
class UniformArrivals final : public ArrivalProcess {
 public:
  explicit UniformArrivals(double rate_rps)
      : gap_(sim::Duration::nanos(1e9 / rate_rps)) {}

  sim::Duration next_gap(sim::Rng&) override { return gap_; }

  std::string name() const override { return "uniform"; }

 private:
  sim::Duration gap_;
};

}  // namespace nicsched::workload
