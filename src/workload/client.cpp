#include "workload/client.h"

#include <cmath>
#include <utility>

#include "obs/span.h"
#include "proto/messages.h"

namespace nicsched::workload {

namespace {

// Client machines are not the system under test: their NIC path is modelled
// as instantaneous so measured latency isolates the server.
net::Nic::Config client_nic_config() {
  net::Nic::Config config;
  config.name = "client-nic";
  config.rx_latency = sim::Duration::zero();
  config.tx_latency = sim::Duration::zero();
  return config;
}

}  // namespace

ClientMachine::ClientMachine(sim::Simulator& sim,
                             net::EthernetSwitch& network, Config config,
                             std::shared_ptr<ServiceDistribution> service,
                             std::unique_ptr<ArrivalProcess> arrivals,
                             sim::Rng rng)
    : sim_(sim),
      config_(std::move(config)),
      service_(std::move(service)),
      arrivals_(std::move(arrivals)),
      rng_(std::move(rng)),
      retry_rng_(rng_.seed() ^ 0x9E3779B97F4A7C15ULL),
      nic_(sim, client_nic_config()) {
  interface_ = &nic_.add_interface("client" + std::to_string(config_.client_id),
                                   config_.mac, config_.ip);
  nic_.attach_to_switch(network, config_.wire_latency, 10.0);
  interface_->ring(0).set_on_packet([this]() { handle_rx(); });
}

void ClientMachine::start(sim::TimePoint until) {
  issue_until_ = until;
  schedule_next_arrival();
}

void ClientMachine::schedule_next_arrival() {
  const sim::Duration gap = arrivals_->next_gap(rng_);
  sim_.after(gap, [this]() {
    if (sim_.now() > issue_until_) return;
    issue_request();
    schedule_next_arrival();
  });
}

void ClientMachine::issue_request() {
  const ServiceSample sample = service_->sample(rng_);
  const std::uint64_t request_id =
      (static_cast<std::uint64_t>(config_.client_id) << 40) | next_sequence_++;
  const overload::OverloadParams& overload = config_.overload;

  net::DatagramAddress address;
  address.src_mac = config_.mac;
  address.dst_mac = config_.server_mac;
  address.src_ip = config_.ip;
  address.dst_ip = config_.server_ip;
  address.src_port = static_cast<std::uint16_t>(
      config_.port_base + rng_.uniform_int(0, config_.flow_count - 1));
  address.dst_port = config_.server_port;
  if (config_.partition_count > 0) {
    address.dst_port = static_cast<std::uint16_t>(
        config_.server_port + rng_.uniform_int(0, config_.partition_count - 1));
  }

  Pending pending{sim_.now(), sample.work, sample.kind,
                  sim::TimePoint(),   {},    address,     {}};
  if (overload.enabled && !overload.deadline.is_zero()) {
    pending.deadline = sim_.now() + overload.deadline;
  }
  pending.attempts = 1;
  auto [it, inserted] = pending_.emplace(request_id, std::move(pending));
  ++sent_;
  if (on_issue_) on_issue_(sim_.now());
  if (sim_.span_enabled()) {
    obs::begin_span(sim_, request_id, obs::SpanKind::kClientWire,
                    config_.client_id);
  }
  transmit_pending(request_id, it->second);
  if (overload.enabled) arm_timer(request_id, it->second);
}

void ClientMachine::transmit_pending(std::uint64_t request_id,
                                     const Pending& pending) {
  proto::RequestMessage message;
  message.request_id = request_id;
  message.client_id = config_.client_id;
  message.kind = pending.kind;
  message.work_ps = static_cast<std::uint64_t>(pending.work.to_picos());
  message.deadline_ps = pending.deadline == sim::TimePoint()
                            ? 0
                            : static_cast<std::uint64_t>(
                                  pending.deadline.to_picos());
  message.padding = config_.request_padding;
  message.tenant = config_.tenant;
  auto& scratch = proto::serialization_scratch();
  message.serialize_into(scratch);
  interface_->transmit(net::make_udp_datagram(pending.address, scratch));
}

void ClientMachine::arm_timer(std::uint64_t request_id, Pending& pending) {
  const overload::OverloadParams& overload = config_.overload;
  if (overload.retry_budget > 0) {
    // Exponential backoff with deterministic per-client jitter. The jitter
    // draw comes from retry_rng_, so the workload streams never shift.
    sim::Duration delay =
        overload.retry_timeout *
        std::pow(overload.retry_backoff,
                 static_cast<double>(pending.attempts - 1));
    if (overload.retry_jitter > 0.0) {
      delay = delay * (1.0 + retry_rng_.uniform(-overload.retry_jitter,
                                                overload.retry_jitter));
    }
    pending.timer = sim_.after(delay, [this, request_id]() {
      on_timer(request_id);
    });
  } else if (pending.deadline != sim::TimePoint()) {
    // No retries: just expire the request locally at its deadline so the
    // conservation identity closes at quiescence.
    pending.timer = sim_.at(pending.deadline, [this, request_id]() {
      on_timer(request_id);
    });
  }
}

void ClientMachine::on_timer(std::uint64_t request_id) {
  auto it = pending_.find(request_id);
  if (it == pending_.end()) return;
  Pending& pending = it->second;
  const overload::OverloadParams& overload = config_.overload;

  const bool past_deadline = pending.deadline != sim::TimePoint() &&
                             sim_.now() >= pending.deadline;
  if (past_deadline) {
    ++expired_;  // deadline passed with no response: stop retrying
    pending_.erase(it);
    return;
  }
  if (pending.attempts <= overload.retry_budget) {
    ++pending.attempts;
    ++retries_;
    transmit_pending(request_id, pending);
    arm_timer(request_id, pending);
    return;
  }
  ++abandoned_;  // retry budget exhausted before the deadline
  pending_.erase(it);
}

void ClientMachine::handle_rx() {
  while (auto packet = interface_->ring(0).pop()) {
    const auto datagram = net::parse_udp_datagram(*packet);
    if (!datagram) continue;
    const auto type = proto::peek_type(datagram->payload);
    if (!type) continue;

    if (*type == proto::MessageType::kReject) {
      const auto reject = proto::RejectMessage::parse(datagram->payload);
      if (!reject) continue;
      auto it = pending_.find(reject->request_id);
      if (it == pending_.end()) {
        ++duplicates_;  // raced a local expiry/abandonment
        continue;
      }
      ++rejected_;  // explicit server backpressure: terminal, no retry
      it->second.timer.cancel();
      if (sim_.span_enabled()) {
        obs::end_span(sim_, reject->request_id, obs::SpanKind::kResponse,
                      config_.client_id);
      }
      pending_.erase(it);
      continue;
    }

    const auto response = proto::ResponseMessage::parse(datagram->payload);
    if (!response) continue;

    auto it = pending_.find(response->request_id);
    if (it == pending_.end()) {
      ++duplicates_;  // re-executed under reliable dispatch, or stray
      continue;
    }

    ++received_;
    it->second.timer.cancel();
    if (sim_.span_enabled()) {
      obs::end_span(sim_, response->request_id, obs::SpanKind::kResponse,
                    config_.client_id);
    }
    ResponseRecord record;
    record.request_id = response->request_id;
    record.kind = it->second.kind;
    record.tenant = config_.tenant;
    record.preempt_count = response->preempt_count;
    record.sent_at = it->second.sent_at;
    record.received_at = sim_.now();
    record.work = it->second.work;
    record.deadline = it->second.deadline;
    if (record.within_deadline()) ++goodput_;
    if (on_response_) on_response_(record);
    pending_.erase(it);
  }
}

}  // namespace nicsched::workload
