#include "workload/client.h"

#include <utility>

#include "obs/span.h"
#include "proto/messages.h"

namespace nicsched::workload {

namespace {

// Client machines are not the system under test: their NIC path is modelled
// as instantaneous so measured latency isolates the server.
net::Nic::Config client_nic_config() {
  net::Nic::Config config;
  config.name = "client-nic";
  config.rx_latency = sim::Duration::zero();
  config.tx_latency = sim::Duration::zero();
  return config;
}

}  // namespace

ClientMachine::ClientMachine(sim::Simulator& sim,
                             net::EthernetSwitch& network, Config config,
                             std::shared_ptr<ServiceDistribution> service,
                             std::unique_ptr<ArrivalProcess> arrivals,
                             sim::Rng rng)
    : sim_(sim),
      config_(std::move(config)),
      service_(std::move(service)),
      arrivals_(std::move(arrivals)),
      rng_(std::move(rng)),
      nic_(sim, client_nic_config()) {
  interface_ = &nic_.add_interface("client" + std::to_string(config_.client_id),
                                   config_.mac, config_.ip);
  nic_.attach_to_switch(network, config_.wire_latency, 10.0);
  interface_->ring(0).set_on_packet([this]() { handle_rx(); });
}

void ClientMachine::start(sim::TimePoint until) {
  issue_until_ = until;
  schedule_next_arrival();
}

void ClientMachine::schedule_next_arrival() {
  const sim::Duration gap = arrivals_->next_gap(rng_);
  sim_.after(gap, [this]() {
    if (sim_.now() > issue_until_) return;
    issue_request();
    schedule_next_arrival();
  });
}

void ClientMachine::issue_request() {
  const ServiceSample sample = service_->sample(rng_);
  const std::uint64_t request_id =
      (static_cast<std::uint64_t>(config_.client_id) << 40) | next_sequence_++;

  proto::RequestMessage message;
  message.request_id = request_id;
  message.client_id = config_.client_id;
  message.kind = sample.kind;
  message.work_ps = static_cast<std::uint64_t>(sample.work.to_picos());
  message.padding = config_.request_padding;

  net::DatagramAddress address;
  address.src_mac = config_.mac;
  address.dst_mac = config_.server_mac;
  address.src_ip = config_.ip;
  address.dst_ip = config_.server_ip;
  address.src_port = static_cast<std::uint16_t>(
      config_.port_base + rng_.uniform_int(0, config_.flow_count - 1));
  address.dst_port = config_.server_port;
  if (config_.partition_count > 0) {
    address.dst_port = static_cast<std::uint16_t>(
        config_.server_port + rng_.uniform_int(0, config_.partition_count - 1));
  }

  pending_.emplace(request_id, Pending{sim_.now(), sample.work, sample.kind});
  ++sent_;
  if (on_issue_) on_issue_(sim_.now());
  if (sim_.span_enabled()) {
    obs::begin_span(sim_, request_id, obs::SpanKind::kClientWire,
                    config_.client_id);
  }
  interface_->transmit(net::make_udp_datagram(address, message.serialize()));
}

void ClientMachine::handle_rx() {
  while (auto packet = interface_->ring(0).pop()) {
    const auto datagram = net::parse_udp_datagram(*packet);
    if (!datagram) continue;
    const auto response = proto::ResponseMessage::parse(datagram->payload);
    if (!response) continue;

    auto it = pending_.find(response->request_id);
    if (it == pending_.end()) {
      ++duplicates_;  // re-executed under reliable dispatch, or stray
      continue;
    }

    ++received_;
    if (sim_.span_enabled()) {
      obs::end_span(sim_, response->request_id, obs::SpanKind::kResponse,
                    config_.client_id);
    }
    if (on_response_) {
      ResponseRecord record;
      record.request_id = response->request_id;
      record.kind = it->second.kind;
      record.preempt_count = response->preempt_count;
      record.sent_at = it->second.sent_at;
      record.received_at = sim_.now();
      record.work = it->second.work;
      on_response_(record);
    }
    pending_.erase(it);
  }
}

}  // namespace nicsched::workload
