// Open-loop client machine, modelled after the mutilate-style UDP load
// generator the paper uses (§4): requests are issued on a Poisson schedule
// regardless of outstanding responses, so server slowdown shows up as
// latency, never as reduced offered load.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "net/ethernet_switch.h"
#include "net/nic.h"
#include "overload/overload.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "workload/arrival.h"
#include "workload/distribution.h"

namespace nicsched::workload {

/// One completed request as observed by the client.
struct ResponseRecord {
  std::uint64_t request_id = 0;
  std::uint16_t kind = 0;
  /// Tenant the issuing stream belongs to (DESIGN §13); 0 = untenanted.
  std::uint16_t tenant = 0;
  std::uint16_t preempt_count = 0;
  sim::TimePoint sent_at;
  sim::TimePoint received_at;
  sim::Duration work;
  /// Absolute deadline the request was issued with; origin (0) = none.
  sim::TimePoint deadline;

  sim::Duration latency() const { return received_at - sent_at; }
  /// Goodput test: completed in time (deadline-less requests always count).
  bool within_deadline() const {
    return deadline == sim::TimePoint() || received_at <= deadline;
  }
};

class ClientMachine {
 public:
  struct Config {
    std::uint32_t client_id = 0;
    net::MacAddress mac;
    net::Ipv4Address ip;
    /// Requests rotate their source port across [port_base,
    /// port_base+flow_count) to emulate many connections; RSS-based systems
    /// need flow diversity to spread load (§2.2 "require a large number of
    /// concurrent connections").
    std::uint16_t port_base = 20000;
    std::uint16_t flow_count = 64;
    net::MacAddress server_mac;
    net::Ipv4Address server_ip;
    std::uint16_t server_port = 8080;
    /// Extra payload bytes per request (request size experiments).
    std::uint16_t request_padding = 24;
    /// MICA-style client-assisted partitioning: when > 0 each request is
    /// addressed to server_port + partition, where the partition is drawn
    /// uniformly (a uniformly hashed key space). 0 sends everything to
    /// server_port.
    std::uint16_t partition_count = 0;
    /// One-way propagation between this client machine and the ToR.
    sim::Duration wire_latency = sim::Duration::micros(2);
    /// Overload-control knobs: per-request deadlines, timeout retries with
    /// backoff + jitter, retry budget. Disabled by default; when disabled
    /// the client's RNG draws and event sequence are untouched.
    overload::OverloadParams overload;
    /// Tenant id stamped on every request (DESIGN §13). 0 = untenanted:
    /// requests stay version-1 frames, bit-identical to pre-tenant builds.
    std::uint16_t tenant = 0;
  };

  using ResponseCallback = std::function<void(const ResponseRecord&)>;

  /// Creates the client with its own NIC attached to `network`.
  ClientMachine(sim::Simulator& sim, net::EthernetSwitch& network,
                Config config,
                std::shared_ptr<ServiceDistribution> service,
                std::unique_ptr<ArrivalProcess> arrivals, sim::Rng rng);

  void set_on_response(ResponseCallback callback) {
    on_response_ = std::move(callback);
  }

  /// Called at the instant each request is issued (for issued-in-window
  /// accounting by recorders).
  void set_on_issue(std::function<void(sim::TimePoint)> callback) {
    on_issue_ = std::move(callback);
  }

  /// Starts the open loop; no requests are issued after `until`.
  void start(sim::TimePoint until);

  std::uint64_t sent() const { return sent_; }
  std::uint64_t received() const { return received_; }
  std::uint64_t outstanding() const { return pending_.size(); }
  /// Responses for requests no longer pending — re-executed work under
  /// reliable dispatch (the request was re-steered or the original worker
  /// revived and finished it twice). Conservation tests read this.
  std::uint64_t duplicates() const { return duplicates_; }
  /// Completed within deadline (== received() when deadlines are off).
  std::uint64_t goodput() const { return goodput_; }
  /// Terminal outcomes besides completion; at quiescence
  /// `sent == received + rejected + expired + abandoned + outstanding`.
  std::uint64_t rejected() const { return rejected_; }
  std::uint64_t expired() const { return expired_; }
  std::uint64_t abandoned() const { return abandoned_; }
  /// Timeout-triggered retransmissions (not counted in sent()).
  std::uint64_t retries() const { return retries_; }

 private:
  struct Pending {
    sim::TimePoint sent_at;
    sim::Duration work;
    std::uint16_t kind;
    sim::TimePoint deadline;       // origin = none
    std::uint32_t attempts = 1;    // transmissions so far
    net::DatagramAddress address;  // reused verbatim on retransmit
    sim::EventHandle timer;        // retry/expiry timer
  };

  void schedule_next_arrival();
  void issue_request();
  void handle_rx();
  void transmit_pending(std::uint64_t request_id, const Pending& pending);
  void arm_timer(std::uint64_t request_id, Pending& pending);
  void on_timer(std::uint64_t request_id);

  sim::Simulator& sim_;
  Config config_;
  std::shared_ptr<ServiceDistribution> service_;
  std::unique_ptr<ArrivalProcess> arrivals_;
  sim::Rng rng_;
  /// Dedicated stream for retry-backoff jitter. Derived from the workload
  /// stream's seed but never shared with it: enabling retries must not
  /// perturb arrival/service/port draws, and runs with overload disabled
  /// draw nothing from it at all.
  sim::Rng retry_rng_;
  net::Nic nic_;
  net::NicInterface* interface_ = nullptr;

  sim::TimePoint issue_until_;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t goodput_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t expired_ = 0;
  std::uint64_t abandoned_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t next_sequence_ = 0;
  std::unordered_map<std::uint64_t, Pending> pending_;
  ResponseCallback on_response_;
  std::function<void(sim::TimePoint)> on_issue_;
};

}  // namespace nicsched::workload
