#include "workload/distribution.h"

#include <cmath>
#include <stdexcept>

namespace nicsched::workload {

std::string FixedDistribution::name() const {
  return "fixed(" + value_.to_string() + ")";
}

BimodalDistribution::BimodalDistribution(sim::Duration short_value,
                                         sim::Duration long_value,
                                         double long_fraction)
    : short_value_(short_value),
      long_value_(long_value),
      long_fraction_(long_fraction) {
  if (long_fraction < 0.0 || long_fraction > 1.0) {
    throw std::invalid_argument("BimodalDistribution: fraction out of range");
  }
}

ServiceSample BimodalDistribution::sample(sim::Rng& rng) {
  if (rng.bernoulli(long_fraction_)) return {long_value_, kLongKind};
  return {short_value_, kShortKind};
}

sim::Duration BimodalDistribution::mean() const {
  return short_value_ * (1.0 - long_fraction_) + long_value_ * long_fraction_;
}

std::string BimodalDistribution::name() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "bimodal(%.1f%%x%s, %.1f%%x%s)",
                (1.0 - long_fraction_) * 100.0, short_value_.to_string().c_str(),
                long_fraction_ * 100.0, long_value_.to_string().c_str());
  return buf;
}

ServiceSample ExponentialDistribution::sample(sim::Rng& rng) {
  return {sim::Duration::nanos(rng.exponential(mean_.to_nanos())), 0};
}

std::string ExponentialDistribution::name() const {
  return "exp(" + mean_.to_string() + ")";
}

LogNormalDistribution::LogNormalDistribution(sim::Duration mean_value,
                                             double cv)
    : mean_(mean_value), cv_(cv) {
  if (cv <= 0.0) {
    throw std::invalid_argument("LogNormalDistribution: cv must be positive");
  }
  // For lognormal: mean = exp(mu + sigma^2/2), cv^2 = exp(sigma^2) - 1.
  sigma_ = std::sqrt(std::log(1.0 + cv * cv));
  mu_ = std::log(mean_value.to_nanos()) - sigma_ * sigma_ / 2.0;
}

ServiceSample LogNormalDistribution::sample(sim::Rng& rng) {
  return {sim::Duration::nanos(rng.lognormal(mu_, sigma_)), 0};
}

std::string LogNormalDistribution::name() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "lognormal(%s, cv=%.2f)",
                mean_.to_string().c_str(), cv_);
  return buf;
}

BoundedParetoDistribution::BoundedParetoDistribution(sim::Duration min_value,
                                                     sim::Duration max_value,
                                                     double alpha)
    : min_us_(min_value.to_micros()),
      max_us_(max_value.to_micros()),
      alpha_(alpha) {
  if (min_us_ <= 0.0 || max_us_ <= min_us_) {
    throw std::invalid_argument("BoundedParetoDistribution: bad bounds");
  }
  if (alpha <= 0.0) {
    throw std::invalid_argument("BoundedParetoDistribution: bad alpha");
  }
}

ServiceSample BoundedParetoDistribution::sample(sim::Rng& rng) {
  // Inverse-CDF sampling of the bounded Pareto.
  const double u = rng.uniform();
  const double la = std::pow(min_us_, alpha_);
  const double ha = std::pow(max_us_, alpha_);
  const double x =
      std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha_);
  return {sim::Duration::micros(x), 0};
}

sim::Duration BoundedParetoDistribution::mean() const {
  const double la = std::pow(min_us_, alpha_);
  const double ha = std::pow(max_us_, alpha_);
  double mean_us;
  if (alpha_ == 1.0) {
    mean_us = (std::log(max_us_) - std::log(min_us_)) * min_us_ * max_us_ /
              (max_us_ - min_us_);
  } else {
    mean_us = la / (1.0 - la / ha) * (alpha_ / (alpha_ - 1.0)) *
              (1.0 / std::pow(min_us_, alpha_ - 1.0) -
               1.0 / std::pow(max_us_, alpha_ - 1.0));
  }
  return sim::Duration::micros(mean_us);
}

std::string BoundedParetoDistribution::name() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "pareto(%.3gus..%.3gus, a=%.2f)", min_us_,
                max_us_, alpha_);
  return buf;
}

MixtureDistribution::MixtureDistribution(std::vector<Component> components)
    : components_(std::move(components)), total_weight_(0.0) {
  if (components_.empty()) {
    throw std::invalid_argument("MixtureDistribution: no components");
  }
  for (const auto& component : components_) {
    if (component.weight <= 0.0 || component.distribution == nullptr) {
      throw std::invalid_argument("MixtureDistribution: bad component");
    }
    total_weight_ += component.weight;
  }
}

ServiceSample MixtureDistribution::sample(sim::Rng& rng) {
  double pick = rng.uniform() * total_weight_;
  for (std::size_t i = 0; i < components_.size(); ++i) {
    pick -= components_[i].weight;
    if (pick <= 0.0 || i + 1 == components_.size()) {
      ServiceSample sample = components_[i].distribution->sample(rng);
      sample.kind = static_cast<std::uint16_t>(i);
      return sample;
    }
  }
  // Unreachable: the loop always returns on the last component.
  return {};
}

sim::Duration MixtureDistribution::mean() const {
  sim::Duration sum;
  for (const auto& component : components_) {
    sum += component.distribution->mean() *
           (component.weight / total_weight_);
  }
  return sum;
}

std::string MixtureDistribution::name() const {
  std::string result = "mix(";
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if (i > 0) result += ", ";
    result += components_[i].distribution->name();
  }
  return result + ")";
}

}  // namespace nicsched::workload
