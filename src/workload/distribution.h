// Service-time distributions for the synthetic workload (§4.1): "requests
// contain fake work that keeps the server busy for a specific amount of
// time", letting one load generator emulate KVS lookups, search, FaaS, and
// database mixes.
//
// A sample carries both the work amount and a `kind` tag so experiments can
// report tail latency per request class (e.g. the bimodal workload's short
// vs long requests).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/random.h"
#include "sim/time.h"

namespace nicsched::workload {

struct ServiceSample {
  sim::Duration work;
  std::uint16_t kind = 0;
};

class ServiceDistribution {
 public:
  virtual ~ServiceDistribution() = default;

  virtual ServiceSample sample(sim::Rng& rng) = 0;

  /// Expected service time; used to compute offered utilization.
  virtual sim::Duration mean() const = 0;

  virtual std::string name() const = 0;
};

/// Every request takes exactly `value` (Figures 3–6).
class FixedDistribution final : public ServiceDistribution {
 public:
  explicit FixedDistribution(sim::Duration value) : value_(value) {}

  ServiceSample sample(sim::Rng&) override { return {value_, 0}; }
  sim::Duration mean() const override { return value_; }
  std::string name() const override;

 private:
  sim::Duration value_;
};

/// With probability `long_fraction` a request takes `long_value` (kind 1),
/// otherwise `short_value` (kind 0). Figure 2 uses 0.5 % × 100 µs +
/// 99.5 % × 5 µs.
class BimodalDistribution final : public ServiceDistribution {
 public:
  BimodalDistribution(sim::Duration short_value, sim::Duration long_value,
                      double long_fraction);

  ServiceSample sample(sim::Rng& rng) override;
  sim::Duration mean() const override;
  std::string name() const override;

  static constexpr std::uint16_t kShortKind = 0;
  static constexpr std::uint16_t kLongKind = 1;

 private:
  sim::Duration short_value_;
  sim::Duration long_value_;
  double long_fraction_;
};

/// Exponential with the given mean; the classic M/M/k service assumption.
class ExponentialDistribution final : public ServiceDistribution {
 public:
  explicit ExponentialDistribution(sim::Duration mean_value)
      : mean_(mean_value) {}

  ServiceSample sample(sim::Rng& rng) override;
  sim::Duration mean() const override { return mean_; }
  std::string name() const override;

 private:
  sim::Duration mean_;
};

/// Log-normal parameterized by mean and coefficient of variation; models
/// "varying handling times for the same request type" (§2.2).
class LogNormalDistribution final : public ServiceDistribution {
 public:
  LogNormalDistribution(sim::Duration mean_value, double cv);

  ServiceSample sample(sim::Rng& rng) override;
  sim::Duration mean() const override { return mean_; }
  std::string name() const override;

 private:
  sim::Duration mean_;
  double cv_;
  double mu_;     // log-space mean
  double sigma_;  // log-space stddev
};

/// Bounded Pareto — heavy-tailed service times, the worst case for
/// non-preemptive scheduling.
class BoundedParetoDistribution final : public ServiceDistribution {
 public:
  BoundedParetoDistribution(sim::Duration min_value, sim::Duration max_value,
                            double alpha);

  ServiceSample sample(sim::Rng& rng) override;
  sim::Duration mean() const override;
  std::string name() const override;

 private:
  double min_us_;
  double max_us_;
  double alpha_;
};

/// Weighted mixture of arbitrary components; each component's samples are
/// re-tagged with the component index as `kind`. Models co-located
/// applications from different latency classes (§2.2).
class MixtureDistribution final : public ServiceDistribution {
 public:
  struct Component {
    std::shared_ptr<ServiceDistribution> distribution;
    double weight;
  };

  explicit MixtureDistribution(std::vector<Component> components);

  ServiceSample sample(sim::Rng& rng) override;
  sim::Duration mean() const override;
  std::string name() const override;

 private:
  std::vector<Component> components_;
  double total_weight_;
};

}  // namespace nicsched::workload
