#include "workload/paced_client.h"

#include <algorithm>
#include <utility>

#include "obs/span.h"
#include "proto/messages.h"

namespace nicsched::workload {

namespace {

net::Nic::Config client_nic_config() {
  net::Nic::Config config;
  config.name = "paced-client-nic";
  config.rx_latency = sim::Duration::zero();
  config.tx_latency = sim::Duration::zero();
  return config;
}

}  // namespace

PacedClient::PacedClient(sim::Simulator& sim, net::EthernetSwitch& network,
                         Config config,
                         std::shared_ptr<ServiceDistribution> service,
                         sim::Rng rng)
    : sim_(sim),
      config_(std::move(config)),
      service_(std::move(service)),
      rng_(std::move(rng)),
      nic_(sim, client_nic_config()),
      window_(config_.initial_window) {
  interface_ = &nic_.add_interface(
      "paced-client" + std::to_string(config_.client_id), config_.mac,
      config_.ip);
  nic_.attach_to_switch(network, config_.wire_latency, 10.0);
  interface_->ring(0).set_on_packet([this]() { handle_rx(); });
}

void PacedClient::start(sim::TimePoint until) {
  issue_until_ = until;
  fill_window();
}

void PacedClient::fill_window() {
  if (sim_.now() > issue_until_) return;
  while (pending_.size() <
         static_cast<std::size_t>(std::max(1.0, window_))) {
    issue_request();
  }
}

void PacedClient::issue_request() {
  const ServiceSample sample = service_->sample(rng_);
  const std::uint64_t request_id =
      (static_cast<std::uint64_t>(config_.client_id) << 40) | next_sequence_++;

  sim::TimePoint deadline;
  if (config_.overload.enabled && !config_.overload.deadline.is_zero()) {
    deadline = sim_.now() + config_.overload.deadline;
  }

  proto::RequestMessage message;
  message.request_id = request_id;
  message.client_id = config_.client_id;
  message.kind = sample.kind;
  message.work_ps = static_cast<std::uint64_t>(sample.work.to_picos());
  message.deadline_ps =
      deadline == sim::TimePoint()
          ? 0
          : static_cast<std::uint64_t>(deadline.to_picos());
  message.padding = config_.request_padding;

  net::DatagramAddress address;
  address.src_mac = config_.mac;
  address.dst_mac = config_.server_mac;
  address.src_ip = config_.ip;
  address.dst_ip = config_.server_ip;
  address.src_port = static_cast<std::uint16_t>(
      config_.port_base + rng_.uniform_int(0, config_.flow_count - 1));
  address.dst_port = config_.server_port;

  pending_.emplace(request_id,
                   Pending{sim_.now(), sample.work, sample.kind, deadline});
  ++sent_;
  if (sim_.span_enabled()) {
    obs::begin_span(sim_, request_id, obs::SpanKind::kClientWire,
                    config_.client_id);
  }
  auto& scratch = proto::serialization_scratch();
  message.serialize_into(scratch);
  interface_->transmit(net::make_udp_datagram(address, scratch));
}

void PacedClient::on_feedback(std::uint32_t queue_depth) {
  last_depth_ = queue_depth;
  if (queue_depth > config_.target_queue_depth) {
    window_ = std::max(1.0, window_ * config_.multiplicative_decrease);
  } else {
    window_ = std::min(config_.max_window,
                       window_ + config_.additive_increase / window_);
  }
}

void PacedClient::handle_rx() {
  while (auto packet = interface_->ring(0).pop()) {
    const auto datagram = net::parse_udp_datagram(*packet);
    if (!datagram) continue;
    const auto type = proto::peek_type(datagram->payload);
    if (!type) continue;

    if (*type == proto::MessageType::kReject) {
      const auto reject = proto::RejectMessage::parse(datagram->payload);
      if (!reject) continue;
      auto it = pending_.find(reject->request_id);
      if (it == pending_.end()) continue;
      ++rejected_;
      // A rejection is the strongest congestion signal the server can send:
      // treat it as loss-equivalent (multiplicative decrease), not as a
      // completion that would grow the window.
      last_depth_ = reject->queue_depth;
      window_ = std::max(1.0, window_ * config_.multiplicative_decrease);
      if (sim_.span_enabled()) {
        obs::end_span(sim_, reject->request_id, obs::SpanKind::kResponse,
                      config_.client_id);
      }
      pending_.erase(it);
      continue;
    }

    const auto response = proto::ResponseMessage::parse(datagram->payload);
    if (!response) continue;

    auto it = pending_.find(response->request_id);
    if (it == pending_.end()) continue;

    ++received_;
    if (sim_.span_enabled()) {
      obs::end_span(sim_, response->request_id, obs::SpanKind::kResponse,
                    config_.client_id);
    }
    on_feedback(response->queue_depth);
    ResponseRecord record;
    record.request_id = response->request_id;
    record.kind = it->second.kind;
    record.preempt_count = response->preempt_count;
    record.sent_at = it->second.sent_at;
    record.received_at = sim_.now();
    record.work = it->second.work;
    record.deadline = it->second.deadline;
    if (record.within_deadline()) ++goodput_;
    if (on_response_) on_response_(record);
    pending_.erase(it);
  }
  fill_window();
}

}  // namespace nicsched::workload
