// A closed-loop client implementing the §5.2 congestion-control co-design:
// "the network's goal is not to deliver packets as fast as possible but
// rather just in time for processing."
//
// Instead of an open-loop schedule, the client keeps a bounded window of
// outstanding requests and adapts it with AIMD on the *server scheduler's
// queue depth*, which every response carries back (the "fine-grained data
// from ... the host cores" the co-design requires). The controller aims to
// keep a small standing queue at the server — enough to keep workers busy,
// not enough to build millisecond tails.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "net/ethernet_switch.h"
#include "net/nic.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "workload/client.h"
#include "workload/distribution.h"

namespace nicsched::workload {

class PacedClient {
 public:
  struct Config {
    /// Addressing, identical to the open-loop client's fields.
    std::uint32_t client_id = 0;
    net::MacAddress mac;
    net::Ipv4Address ip;
    std::uint16_t port_base = 20000;
    std::uint16_t flow_count = 64;
    net::MacAddress server_mac;
    net::Ipv4Address server_ip;
    std::uint16_t server_port = 8080;
    std::uint16_t request_padding = 24;
    /// One-way propagation between this client machine and the ToR.
    sim::Duration wire_latency = sim::Duration::micros(2);
    /// Overload-control knobs. The closed loop needs no retry machinery —
    /// a kReject completes the window slot and doubles as a congestion
    /// signal — so only deadlines (goodput) and reject handling apply.
    overload::OverloadParams overload;

    /// Congestion-control parameters.
    std::uint32_t target_queue_depth = 4;  // standing queue to aim for
    double additive_increase = 1.0;        // window += ai/window per response
    double multiplicative_decrease = 0.85; // window *= md on congestion
    double initial_window = 4.0;
    double max_window = 4096.0;
  };

  using ResponseCallback = std::function<void(const ResponseRecord&)>;

  PacedClient(sim::Simulator& sim, net::EthernetSwitch& network, Config config,
              std::shared_ptr<ServiceDistribution> service, sim::Rng rng);

  void set_on_response(ResponseCallback callback) {
    on_response_ = std::move(callback);
  }

  /// Starts the closed loop; no new requests are issued after `until`.
  void start(sim::TimePoint until);

  std::uint64_t sent() const { return sent_; }
  std::uint64_t received() const { return received_; }
  std::uint64_t outstanding() const { return pending_.size(); }
  /// Completed within deadline (== received() when deadlines are off).
  std::uint64_t goodput() const { return goodput_; }
  /// Admission-control rejections (each also triggers a window decrease).
  std::uint64_t rejected() const { return rejected_; }
  double window() const { return window_; }
  std::uint32_t last_reported_depth() const { return last_depth_; }

 private:
  struct Pending {
    sim::TimePoint sent_at;
    sim::Duration work;
    std::uint16_t kind;
    sim::TimePoint deadline;  // origin = none
  };

  void fill_window();
  void issue_request();
  void handle_rx();
  void on_feedback(std::uint32_t queue_depth);

  sim::Simulator& sim_;
  Config config_;
  std::shared_ptr<ServiceDistribution> service_;
  sim::Rng rng_;
  net::Nic nic_;
  net::NicInterface* interface_ = nullptr;

  sim::TimePoint issue_until_;
  double window_;
  std::uint32_t last_depth_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t goodput_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t next_sequence_ = 0;
  std::unordered_map<std::uint64_t, Pending> pending_;
  ResponseCallback on_response_;
};

}  // namespace nicsched::workload
