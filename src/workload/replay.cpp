#include "workload/replay.h"

#include <cstdlib>
#include <stdexcept>

namespace nicsched::workload {

WorkloadTrace::WorkloadTrace(std::vector<TraceEntry> entries)
    : entries_(std::move(entries)) {
  if (entries_.empty()) {
    throw std::invalid_argument("WorkloadTrace: empty trace");
  }
}

std::optional<WorkloadTrace> WorkloadTrace::parse_csv(std::string_view text,
                                                      std::string* error) {
  std::vector<TraceEntry> entries;
  std::size_t line_number = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    ++line_number;
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    start = end + 1;
    if (start > text.size() && line.empty()) break;

    // Trim a trailing carriage return and skip blanks/comments.
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty() || line.front() == '#') continue;

    const std::string owned(line);
    char* cursor = nullptr;
    const double gap_ns = std::strtod(owned.c_str(), &cursor);
    if (cursor == owned.c_str() || *cursor != ',') {
      if (error) *error = "line " + std::to_string(line_number) + ": bad gap";
      return std::nullopt;
    }
    char* after_work = nullptr;
    const double work_ns = std::strtod(cursor + 1, &after_work);
    if (after_work == cursor + 1 || gap_ns < 0 || work_ns < 0) {
      if (error) *error = "line " + std::to_string(line_number) + ": bad work";
      return std::nullopt;
    }
    long kind = 0;
    if (*after_work == ',') {
      char* after_kind = nullptr;
      kind = std::strtol(after_work + 1, &after_kind, 10);
      if (after_kind == after_work + 1 || *after_kind != '\0' || kind < 0 ||
          kind > 0xFFFF) {
        if (error) {
          *error = "line " + std::to_string(line_number) + ": bad kind";
        }
        return std::nullopt;
      }
    } else if (*after_work != '\0') {
      if (error) {
        *error = "line " + std::to_string(line_number) + ": trailing junk";
      }
      return std::nullopt;
    }
    entries.push_back(TraceEntry{sim::Duration::nanos(gap_ns),
                                 sim::Duration::nanos(work_ns),
                                 static_cast<std::uint16_t>(kind)});
  }
  if (entries.empty()) {
    if (error) *error = "trace has no entries";
    return std::nullopt;
  }
  return WorkloadTrace(std::move(entries));
}

sim::Duration WorkloadTrace::mean_work() const {
  sim::Duration sum;
  for (const auto& entry : entries_) sum += entry.work;
  return sum / static_cast<std::int64_t>(entries_.size());
}

double WorkloadTrace::mean_rate_rps() const {
  sim::Duration sum;
  for (const auto& entry : entries_) sum += entry.gap;
  const double mean_gap_s =
      sum.to_seconds() / static_cast<double>(entries_.size());
  return mean_gap_s == 0.0 ? 0.0 : 1.0 / mean_gap_s;
}

}  // namespace nicsched::workload
