// Trace-driven workloads: replay recorded (inter-arrival, service-time,
// kind) tuples instead of sampling distributions. This is how production
// traces — or traces exported from another simulator run — drive the
// open-loop client.
//
// The replay couples an ArrivalProcess and a ServiceDistribution reading
// from the same trace with independent cursors; the ClientMachine consumes
// exactly one gap and one service sample per request, so tuple i's gap and
// work stay paired.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "workload/arrival.h"
#include "workload/distribution.h"

namespace nicsched::workload {

struct TraceEntry {
  sim::Duration gap;   // time since the previous request
  sim::Duration work;  // synthetic service time
  std::uint16_t kind = 0;
};

/// An in-memory workload trace, shareable between the arrival and service
/// adapters below.
class WorkloadTrace {
 public:
  explicit WorkloadTrace(std::vector<TraceEntry> entries);

  /// Parses CSV lines of the form `gap_ns,work_ns[,kind]`. Blank lines and
  /// lines starting with '#' are skipped. Returns nullopt on any malformed
  /// line (reported via `error` if provided).
  static std::optional<WorkloadTrace> parse_csv(std::string_view text,
                                                std::string* error = nullptr);

  std::size_t size() const { return entries_.size(); }
  const TraceEntry& entry(std::size_t i) const { return entries_[i]; }

  /// Mean service time across the trace.
  sim::Duration mean_work() const;
  /// Mean arrival rate implied by the gaps, requests/second.
  double mean_rate_rps() const;

 private:
  std::vector<TraceEntry> entries_;
};

/// Arrival gaps replayed from the trace, looping when exhausted.
class TraceArrivals final : public ArrivalProcess {
 public:
  explicit TraceArrivals(std::shared_ptr<const WorkloadTrace> trace)
      : trace_(std::move(trace)) {}

  sim::Duration next_gap(sim::Rng&) override {
    const TraceEntry& entry = trace_->entry(cursor_);
    cursor_ = (cursor_ + 1) % trace_->size();
    return entry.gap;
  }

  std::string name() const override { return "trace"; }

 private:
  std::shared_ptr<const WorkloadTrace> trace_;
  std::size_t cursor_ = 0;
};

/// Service times replayed from the trace, looping when exhausted.
class TraceService final : public ServiceDistribution {
 public:
  explicit TraceService(std::shared_ptr<const WorkloadTrace> trace)
      : trace_(std::move(trace)) {}

  ServiceSample sample(sim::Rng&) override {
    const TraceEntry& entry = trace_->entry(cursor_);
    cursor_ = (cursor_ + 1) % trace_->size();
    return {entry.work, entry.kind};
  }

  sim::Duration mean() const override { return trace_->mean_work(); }

  std::string name() const override {
    return "trace(" + std::to_string(trace_->size()) + " entries)";
  }

 private:
  std::shared_ptr<const WorkloadTrace> trace_;
  std::size_t cursor_ = 0;
};

}  // namespace nicsched::workload
