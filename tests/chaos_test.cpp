// The chaos tier (DESIGN §16): seed-derived composed fault storms — host
// crashes, link partitions, worker stalls/crashes, loss windows — sprayed
// across a failover rack running every server family, with overload control
// and the tenant layer active, checked for three properties:
//
//   * Conservation: at quiescence every issued request is accounted for
//     exactly once (sent == completed + rejected + expired + abandoned +
//     outstanding), no matter what the storm did to the rack mid-run.
//   * Replay: the same seed reproduces the run bit for bit.
//   * Shard invariance: the digest of everything observable is independent
//     of how many simulator shards executed the run.
//
// The smoke tier (NICSCHED_FAST=1, the `chaos_smoke` ctest entry) keeps one
// seed and shard counts {1, 2}; the full tier runs three seeds and {1, 2, 4}.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <tuple>
#include <vector>

#include "core/testbed.h"
#include "fault/chaos_schedule.h"
#include "fault/fault_schedule.h"
#include "rack/tor_scheduler.h"
#include "stats/response_log.h"
#include "tenant/tenant.h"

namespace nicsched {
namespace {

sim::TimePoint at_ms(std::int64_t ms) {
  return sim::TimePoint::origin() + sim::Duration::millis(ms);
}

bool fast_mode() { return std::getenv("NICSCHED_FAST") != nullptr; }

std::vector<std::uint64_t> tier_seeds() {
  return fast_mode() ? std::vector<std::uint64_t>{11}
                     : std::vector<std::uint64_t>{11, 12, 13};
}

std::vector<std::size_t> tier_shard_counts() {
  return fast_mode() ? std::vector<std::size_t>{1, 2}
                     : std::vector<std::size_t>{1, 2, 4};
}

class Digest {
 public:
  void add(std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (value >> (8 * i)) & 0xff;
      hash_ *= 1099511628211ULL;  // FNV-1a 64
    }
  }
  void add_signed(std::int64_t value) {
    add(static_cast<std::uint64_t>(value));
  }
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 14695981039346656037ULL;
};

/// A 4-host failover+hedge rack under a chaos storm, with overload control
/// (deadlines + retries) and a two-tenant mix active — the kitchen-sink
/// configuration the tier is about.
core::ExperimentConfig chaos_config(core::SystemKind kind, std::uint64_t seed,
                                    std::size_t shards) {
  overload::OverloadParams over;
  over.enabled = true;
  over.deadline = sim::Duration::micros(400);
  over.retry_budget = 2;
  over.retry_timeout = sim::Duration::micros(150);

  auto config =
      core::ExperimentConfig::of(kind)
          .workers(2)
          .outstanding(2)
          .bimodal()  // 5us/100us: preemption + requeue traffic
          .load(200e3)
          .clients(2, 8)
          .measure_for(sim::Duration::millis(2))
          .with_seed(seed)
          .with_rack(4, rack::TorPolicy::kPowerOfTwo)
          .with_failover()
          .with_hedging()
          .with_shards(shards)
          .with_chaos(seed * 131 + 7)
          .with_overload(over)
          .with_tenants({tenant::make_tenant(1).named("lc").weighted(4).slo_class(
                             tenant::SloClass::kLatencyCritical),
                         tenant::make_tenant(2).named("be")});
  config.warmup = sim::Duration::millis(1);
  config.drain = sim::Duration::millis(2);
  return config;
}

struct ChaosRun {
  std::uint64_t digest = 0;
  core::ExperimentResult result;
};

/// Runs one chaos point and hashes everything observable; also asserts the
/// conservation identity — the storm may cost requests (expired, abandoned,
/// rejected) but never lose track of one.
ChaosRun chaos_run(core::SystemKind kind, std::uint64_t seed,
                   std::size_t shards) {
  stats::ResponseLog log;
  auto config = chaos_config(kind, seed, shards);
  config.response_log = &log;

  ChaosRun run;
  run.result = core::run_experiment(config);

  const auto& ca = run.result.clients;
  EXPECT_EQ(ca.sent, ca.completed + ca.rejected + ca.expired + ca.abandoned +
                         ca.outstanding)
      << "conservation broken: kind=" << core::to_string(kind)
      << " seed=" << seed << " shards=" << shards;
  EXPECT_GT(ca.completed, 0u);
  // Per-tenant conservation holds independently under the storm too.
  for (const auto& t : run.result.tenants) {
    const auto& tc = t.clients;
    EXPECT_EQ(tc.sent, tc.completed + tc.rejected + tc.expired + tc.abandoned +
                           tc.outstanding)
        << "tenant " << t.spec.id << " kind=" << core::to_string(kind)
        << " seed=" << seed;
  }

  Digest digest;
  digest.add(log.seen());
  // Hash the response records in a canonical order, not log-append order.
  // The shard contract (sim/shard.h) totally orders deliveries at distinct
  // timestamps only; the failover machinery legitimately batches emissions
  // onto one instant (a death verdict re-steers every stray in one event,
  // every request pinned to a silent host re-arms its hedge at the same
  // last_heard + hedge_after), so two clients on different shards can log
  // responses at the same picosecond — and their append order then depends
  // on the shard layout. The shard-invariant observable is the multiset.
  auto recs = log.records();
  std::vector<workload::ResponseRecord> canonical(recs.begin(), recs.end());
  std::sort(canonical.begin(), canonical.end(),
            [](const workload::ResponseRecord& x,
               const workload::ResponseRecord& y) {
              return std::tie(x.request_id, x.sent_at, x.received_at, x.kind,
                              x.preempt_count, x.work) <
                     std::tie(y.request_id, y.sent_at, y.received_at, y.kind,
                              y.preempt_count, y.work);
            });
  for (const auto& r : canonical) {
    digest.add(r.request_id);
    digest.add(r.kind);
    digest.add(r.preempt_count);
    digest.add_signed(r.sent_at.to_picos());
    digest.add_signed(r.received_at.to_picos());
    digest.add_signed(r.work.to_picos());
  }
  digest.add(ca.sent);
  digest.add(ca.completed);
  digest.add(ca.goodput);
  digest.add(ca.rejected);
  digest.add(ca.expired);
  digest.add(ca.abandoned);
  digest.add(ca.outstanding);
  digest.add(ca.retries);
  digest.add(ca.duplicates);
  const core::ServerStats& s = run.result.server;
  digest.add(s.requests_received);
  digest.add(s.responses_sent);
  digest.add(s.preemptions);
  digest.add(s.drops);
  digest.add(s.cancelled);
  digest.add(s.overload.admitted);
  digest.add(s.overload.rejected);
  digest.add(s.overload.shed_expired);
  if (run.result.rack) {
    const rack::RackStats& r = *run.result.rack;
    digest.add(r.requests_forwarded);
    digest.add(r.responses_forwarded);
    digest.add(r.rejects_forwarded);
    digest.add(r.affinity_hits);
    digest.add(r.affinity_expired);
    digest.add(r.unknown_responses);
    digest.add(r.feedback_samples);
    digest.add(r.feedback_discarded_dead);
    digest.add(r.probes_sent);
    digest.add(r.probe_acks);
    digest.add(r.probe_deaths);
    digest.add(r.requests_resteered);
    digest.add(r.hedges_sent);
    digest.add(r.hedge_wins);
    digest.add(r.cancels_sent);
    digest.add(r.duplicates_suppressed);
    for (const auto& host : r.hosts) {
      digest.add(host.requests);
      digest.add(host.responses);
      digest.add(host.deaths);
      digest.add(host.revivals);
      digest.add(host.feedback_discarded);
    }
  }
  run.digest = digest.value();
  return run;
}

const core::SystemKind kFamilies[] = {
    core::SystemKind::kShinjuku,
    core::SystemKind::kShinjukuOffload,
    core::SystemKind::kRss,
    core::SystemKind::kIdealNic,
    core::SystemKind::kRain,
};

// ---------------------------------------------------------------------------
// The schedule generator itself: pure, quiescent, category-independent.
// ---------------------------------------------------------------------------

fault::ChaosOptions options_for(std::uint64_t seed) {
  fault::ChaosOptions options;
  options.seed = seed;
  options.host_count = 4;
  options.worker_count = 2;
  options.start = at_ms(0);
  options.end = at_ms(10);
  return options;
}

TEST(ChaosSchedule, SameOptionsSameScheduleToTheNanosecond) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 99ULL}) {
    const fault::FaultSchedule a =
        fault::make_chaos_schedule(options_for(seed));
    const fault::FaultSchedule b =
        fault::make_chaos_schedule(options_for(seed));
    ASSERT_EQ(a.host_actions().size(), b.host_actions().size());
    for (std::size_t i = 0; i < a.host_actions().size(); ++i) {
      EXPECT_EQ(a.host_actions()[i].at, b.host_actions()[i].at);
      EXPECT_EQ(a.host_actions()[i].host, b.host_actions()[i].host);
      EXPECT_EQ(a.host_actions()[i].kind, b.host_actions()[i].kind);
    }
    ASSERT_EQ(a.partition_windows().size(), b.partition_windows().size());
    for (std::size_t i = 0; i < a.partition_windows().size(); ++i) {
      EXPECT_EQ(a.partition_windows()[i].start, b.partition_windows()[i].start);
      EXPECT_EQ(a.partition_windows()[i].end, b.partition_windows()[i].end);
      EXPECT_EQ(a.partition_windows()[i].host, b.partition_windows()[i].host);
    }
    ASSERT_EQ(a.worker_actions().size(), b.worker_actions().size());
    ASSERT_EQ(a.ingress_loss_windows().size(), b.ingress_loss_windows().size());
    EXPECT_TRUE(a.host_scoped());
  }
}

TEST(ChaosSchedule, EveryFaultRecoversStrictlyBeforeEnd) {
  for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL, 1234ULL}) {
    const fault::ChaosOptions options = options_for(seed);
    const fault::FaultSchedule schedule = fault::make_chaos_schedule(options);
    // Every crash has a later recover on the same host, inside the window.
    for (const auto& action : schedule.host_actions()) {
      EXPECT_GE(action.at, options.start);
      EXPECT_LT(action.at, options.end);
      if (action.kind == fault::HostActionKind::kCrash) {
        bool recovered = false;
        for (const auto& other : schedule.host_actions()) {
          if (other.kind == fault::HostActionKind::kRecover &&
              other.host == action.host && other.at > action.at) {
            recovered = true;
          }
        }
        EXPECT_TRUE(recovered) << "host " << action.host << " never recovers";
      }
    }
    for (const auto& window : schedule.partition_windows()) {
      EXPECT_GE(window.start, options.start);
      EXPECT_LT(window.end, options.end);
    }
    for (const auto& window : schedule.ingress_loss_windows()) {
      EXPECT_LT(window.end, options.end);
    }
    for (const auto& window : schedule.dispatch_loss_windows()) {
      EXPECT_LT(window.end, options.end);
    }
    for (const auto& action : schedule.worker_actions()) {
      if (action.kind == fault::WorkerActionKind::kStall) {
        EXPECT_LT(action.at + action.duration, options.end);
      } else if (action.kind == fault::WorkerActionKind::kCrash) {
        bool resumed = false;
        for (const auto& other : schedule.worker_actions()) {
          if (other.kind == fault::WorkerActionKind::kResume &&
              other.host == action.host && other.worker == action.worker &&
              other.at > action.at) {
            resumed = true;
          }
        }
        EXPECT_TRUE(resumed) << "worker never resumes";
      }
    }
  }
}

TEST(ChaosSchedule, CategoryTogglesDoNotRetimeOtherCategories) {
  // The per-category RNG streams are forked in a fixed order, so switching
  // one class of faults off leaves every other class's windows untouched —
  // a test can isolate host faults without perturbing the storm around them.
  fault::ChaosOptions all = options_for(5);
  fault::ChaosOptions no_hosts = all;
  no_hosts.host_faults = false;
  const fault::FaultSchedule full = fault::make_chaos_schedule(all);
  const fault::FaultSchedule trimmed = fault::make_chaos_schedule(no_hosts);
  EXPECT_TRUE(trimmed.host_actions().empty());
  ASSERT_EQ(full.partition_windows().size(),
            trimmed.partition_windows().size());
  for (std::size_t i = 0; i < full.partition_windows().size(); ++i) {
    EXPECT_EQ(full.partition_windows()[i].start,
              trimmed.partition_windows()[i].start);
    EXPECT_EQ(full.partition_windows()[i].host,
              trimmed.partition_windows()[i].host);
  }
  ASSERT_EQ(full.worker_actions().size(), trimmed.worker_actions().size());
  for (std::size_t i = 0; i < full.worker_actions().size(); ++i) {
    EXPECT_EQ(full.worker_actions()[i].at, trimmed.worker_actions()[i].at);
  }
  ASSERT_EQ(full.ingress_loss_windows().size(),
            trimmed.ingress_loss_windows().size());
}

// ---------------------------------------------------------------------------
// Satellite: builders reject silently-inert inputs instead of carrying them.
// ---------------------------------------------------------------------------

TEST(ChaosSchedule, BuildersDropInertInputs) {
  fault::FaultSchedule schedule;
  schedule.ingress_loss(at_ms(2), at_ms(2), 0.5);    // zero-length window
  schedule.ingress_loss(at_ms(2), at_ms(1), 0.5);    // inverted window
  schedule.ingress_loss(at_ms(1), at_ms(2), 0.0);    // injects nothing
  schedule.ingress_loss(at_ms(1), at_ms(2), -0.3);   // injects nothing
  schedule.dispatch_loss(at_ms(1), at_ms(2), 0.0);   // injects nothing
  schedule.degrade_ingress(at_ms(1), at_ms(2), 1.0); // does not degrade
  schedule.degrade_ingress(at_ms(1), at_ms(2), 0.5); // does not degrade
  schedule.stall_worker(at_ms(1), 0, sim::Duration::zero());  // pauses nothing
  schedule.partition(at_ms(3), at_ms(3), 0, fault::LinkDirection::kBoth);
  EXPECT_TRUE(schedule.empty())
      << "an inert input rode along instead of being dropped";

  // Out-of-range probabilities are clamped, not dropped: the caller asked
  // for loss and gets the strongest expressible version of it.
  schedule.ingress_loss(at_ms(1), at_ms(2), 7.0);
  ASSERT_EQ(schedule.ingress_loss_windows().size(), 1u);
  EXPECT_DOUBLE_EQ(schedule.ingress_loss_windows()[0].probability, 1.0);

  // Valid inputs still land.
  schedule.crash_host(at_ms(1), 2);
  schedule.recover_host(at_ms(2), 2);
  schedule.blackhole_host(at_ms(1), at_ms(2), 1);
  EXPECT_EQ(schedule.host_actions().size(), 2u);
  EXPECT_EQ(schedule.partition_windows().size(), 1u);
  EXPECT_TRUE(schedule.host_scoped());
}

// ---------------------------------------------------------------------------
// The tier proper: conservation + replay + shard invariance under the storm.
// ---------------------------------------------------------------------------

TEST(ChaosTier, EveryFamilyConservesAndReplaysBitForBit) {
  for (const core::SystemKind kind : kFamilies) {
    for (const std::uint64_t seed : tier_seeds()) {
      SCOPED_TRACE(std::string(core::to_string(kind)) +
                   " seed=" + std::to_string(seed));
      const ChaosRun first = chaos_run(kind, seed, 1);
      const ChaosRun second = chaos_run(kind, seed, 1);
      EXPECT_EQ(first.digest, second.digest) << "chaos replay diverged";
      ASSERT_GT(first.result.clients.sent, 0u);
    }
  }
}

TEST(ChaosTier, DigestInvariantAcrossShardCounts) {
  for (const core::SystemKind kind : kFamilies) {
    for (const std::uint64_t seed : tier_seeds()) {
      const std::uint64_t serial = chaos_run(kind, seed, 1).digest;
      for (const std::size_t shards : tier_shard_counts()) {
        if (shards == 1) continue;
        EXPECT_EQ(chaos_run(kind, seed, shards).digest, serial)
            << "kind=" << core::to_string(kind) << " seed=" << seed
            << " shards=" << shards;
      }
    }
  }
}

TEST(ChaosTier, StormActuallyBitesAndDeadHostsStayDead) {
  // Guard against a storm that silently degenerated into a no-op, and check
  // the §16 failure-handling accounting on a scripted crash: the victim is
  // declared dead (probe timeout — its links are severed, so feedback
  // silence alone cannot clear it), its in-flight requests re-steer, and
  // the dead-incarnation EWMA rule's books balance: the rack-wide discard
  // counter is exactly the sum of the per-host ones (a sample from before
  // the death verdict must never resurrect the dead host's load estimate).
  auto config = chaos_config(core::SystemKind::kShinjukuOffload, 11, 1);
  config.chaos.reset();
  config.with_faults(fault::FaultSchedule{}
                         .crash_host(at_ms(1) + sim::Duration::micros(500), 2)
                         .recover_host(at_ms(2) + sim::Duration::micros(500),
                                       2));
  stats::ResponseLog log;
  config.response_log = &log;
  const core::ExperimentResult result = core::run_experiment(config);

  ASSERT_TRUE(result.rack.has_value());
  const rack::RackStats& r = *result.rack;
  EXPECT_GE(r.hosts.at(2).deaths, 1u) << "crashed host never declared dead";
  EXPECT_GE(r.hosts.at(2).revivals, 1u) << "recovered host never readmitted";
  EXPECT_GT(r.probes_sent, 0u);
  EXPECT_GT(r.probe_acks, 0u);
  EXPECT_GE(r.probes_sent, r.probe_acks);
  EXPECT_GT(r.requests_resteered, 0u)
      << "the dead host's in-flight requests were never drained";
  std::uint64_t discarded = 0;
  for (const auto& host : r.hosts) discarded += host.feedback_discarded;
  EXPECT_EQ(r.feedback_discarded_dead, discarded);
  const auto& ca = result.clients;
  EXPECT_EQ(ca.sent, ca.completed + ca.rejected + ca.expired + ca.abandoned +
                         ca.outstanding);
  EXPECT_GT(ca.completed, 0u);
}

}  // namespace
}  // namespace nicsched
