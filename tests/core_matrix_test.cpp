// Configuration-matrix conservation tests: every (system × queue policy ×
// placement × timer) combination the library supports must conserve
// requests under preemption churn. These are the invariants that make every
// other measurement trustworthy.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "core/testbed.h"

namespace nicsched::core {
namespace {

ExperimentConfig churny_base() {
  ExperimentConfig config;
  config.worker_count = 4;
  config.outstanding_per_worker = 3;
  config.time_slice = sim::Duration::micros(10);
  config.service = std::make_shared<workload::BimodalDistribution>(
      sim::Duration::micros(5), sim::Duration::micros(100), 0.05);
  config.offered_rps = 250e3;
  config.measure = sim::Duration::millis(20);
  config.drain = sim::Duration::millis(10);
  return config;
}

using PolicyMatrixParam = std::tuple<SystemKind, QueuePolicy>;

class PolicyMatrix : public ::testing::TestWithParam<PolicyMatrixParam> {};

TEST_P(PolicyMatrix, ConservesUnderPreemptionChurn) {
  ExperimentConfig config = churny_base();
  config.system = std::get<0>(GetParam());
  config.queue_policy = std::get<1>(GetParam());
  const auto result = run_experiment(config);
  EXPECT_EQ(result.summary.completed, result.summary.issued);
  EXPECT_EQ(result.server.drops, 0u);
  EXPECT_GT(result.server.preemptions, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    SystemsByPolicies, PolicyMatrix,
    ::testing::Combine(::testing::Values(SystemKind::kShinjuku,
                                         SystemKind::kShinjukuOffload,
                                         SystemKind::kIdealNic,
                                         SystemKind::kRain),
                       ::testing::Values(QueuePolicy::kFcfs, QueuePolicy::kSjf,
                                         QueuePolicy::kMultiClass,
                                         QueuePolicy::kBvt)),
    [](const ::testing::TestParamInfo<PolicyMatrixParam>& info) {
      std::string name = std::string(to_string(std::get<0>(info.param))) +
                         "_" + to_string(std::get<1>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

class PlacementMatrix
    : public ::testing::TestWithParam<hw::PlacementPolicy> {};

TEST_P(PlacementMatrix, OffloadConservesUnderEveryPlacement) {
  ExperimentConfig config = churny_base();
  config.system = SystemKind::kShinjukuOffload;
  config.placement = GetParam();
  const auto result = run_experiment(config);
  EXPECT_EQ(result.summary.completed, result.summary.issued);
  // Every request's payload was touched exactly once per (re)start; with
  // preemptions, touches >= requests.
  EXPECT_GE(result.server.ddio.total(), result.server.requests_received);
}

INSTANTIATE_TEST_SUITE_P(Placements, PlacementMatrix,
                         ::testing::Values(hw::PlacementPolicy::kDram,
                                           hw::PlacementPolicy::kDdioLlc,
                                           hw::PlacementPolicy::kDdioL1),
                         [](const auto& info) {
                           std::string name = hw::to_string(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(ConfigMatrix, LinuxTimerModeConservesAndCostsMore) {
  ExperimentConfig config = churny_base();
  config.system = SystemKind::kShinjukuOffload;
  config.timer_costs = hw::TimerCosts::dune();
  const auto dune = run_experiment(config);
  config.timer_costs = hw::TimerCosts::linux_signal();
  const auto linux_mode = run_experiment(config);

  EXPECT_EQ(linux_mode.summary.completed, linux_mode.summary.issued);
  // Same workload and seed → same preemption pattern, but each preemption
  // costs ~3k extra cycles, so mean latency is strictly worse.
  EXPECT_GT(linux_mode.summary.mean_us, dune.summary.mean_us);
}

TEST(ConfigMatrix, TxBatchingConservesAndAddsLatency) {
  ExperimentConfig config = churny_base();
  config.system = SystemKind::kShinjukuOffload;
  const auto unbatched = run_experiment(config);
  config.tx_batch_frames = 8;
  config.tx_batch_timeout = sim::Duration::micros(6);
  const auto batched = run_experiment(config);

  EXPECT_EQ(batched.summary.completed, batched.summary.issued);
  EXPECT_EQ(batched.server.drops, 0u);
  EXPECT_GT(batched.summary.p50_us, unbatched.summary.p50_us + 2.0);
}

TEST(ConfigMatrix, MultiDispatcherWithPoliciesConserves) {
  ExperimentConfig config = churny_base();
  config.system = SystemKind::kShinjuku;
  config.worker_count = 6;
  config.dispatcher_count = 2;
  config.queue_policy = QueuePolicy::kSjf;
  const auto result = run_experiment(config);
  EXPECT_EQ(result.summary.completed, result.summary.issued);
  EXPECT_EQ(result.server.drops, 0u);
}

}  // namespace
}  // namespace nicsched::core
