// Multi-dispatcher Shinjuku (§2.2 problem 3).
#include <gtest/gtest.h>

#include <memory>

#include "core/shinjuku_server.h"
#include "core/testbed.h"

namespace nicsched::core {
namespace {

TEST(MultiDispatcher, ValidatesGroupCount) {
  sim::Simulator sim;
  const ModelParams params = ModelParams::defaults();
  net::EthernetSwitch network(sim, params.switch_forward_latency);

  ShinjukuServer::Config config;
  config.worker_count = 4;
  config.dispatcher_count = 0;
  EXPECT_THROW(ShinjukuServer(sim, network, params, config),
               std::invalid_argument);
  config.dispatcher_count = 5;  // more dispatchers than workers
  EXPECT_THROW(ShinjukuServer(sim, network, params, config),
               std::invalid_argument);
}

TEST(MultiDispatcher, PartitionsWorkersRoundRobin) {
  sim::Simulator sim;
  const ModelParams params = ModelParams::defaults();
  net::EthernetSwitch network(sim, params.switch_forward_latency);

  ShinjukuServer::Config config;
  config.worker_count = 7;
  config.dispatcher_count = 3;
  ShinjukuServer server(sim, network, params, config);
  ASSERT_EQ(server.group_count(), 3u);
  EXPECT_EQ(server.core_status(0).worker_count(), 3u);
  EXPECT_EQ(server.core_status(1).worker_count(), 2u);
  EXPECT_EQ(server.core_status(2).worker_count(), 2u);
}

TEST(MultiDispatcher, ConservesRequestsAcrossGroups) {
  ExperimentConfig config;
  config.system = SystemKind::kShinjuku;
  config.worker_count = 8;
  config.dispatcher_count = 4;
  config.service = std::make_shared<workload::FixedDistribution>(
      sim::Duration::micros(5));
  config.offered_rps = 300e3;
  config.measure = sim::Duration::millis(25);
  config.drain = sim::Duration::millis(5);
  const auto result = run_experiment(config);
  EXPECT_EQ(result.summary.completed, result.summary.issued);
  EXPECT_EQ(result.server.drops, 0u);
  EXPECT_EQ(result.server.worker_utilization.size(), 8u);
}

TEST(MultiDispatcher, SecondDispatcherLiftsTheOneMicrosecondCeiling) {
  ExperimentConfig config;
  config.system = SystemKind::kShinjuku;
  config.worker_count = 30;
  config.preemption_enabled = false;
  config.service = std::make_shared<workload::FixedDistribution>(
      sim::Duration::micros(1));
  config.offered_rps = 6.0e6;  // above one dispatcher's ~4.3 MRPS ceiling
  config.measure = sim::Duration::millis(20);

  config.dispatcher_count = 1;
  const auto one = run_experiment(config);
  config.dispatcher_count = 2;
  const auto two = run_experiment(config);

  EXPECT_LT(one.summary.achieved_rps, 0.8 * config.offered_rps);
  EXPECT_GT(two.summary.achieved_rps, 0.95 * config.offered_rps);
}

TEST(MultiDispatcher, PreemptionStillWorksPerGroup) {
  ExperimentConfig config;
  config.system = SystemKind::kShinjuku;
  config.worker_count = 8;
  config.dispatcher_count = 2;
  config.time_slice = sim::Duration::micros(10);
  config.service = std::make_shared<workload::BimodalDistribution>(
      sim::Duration::micros(5), sim::Duration::micros(100), 0.05);
  config.offered_rps = 500e3;
  config.measure = sim::Duration::millis(25);
  config.drain = sim::Duration::millis(10);
  const auto result = run_experiment(config);
  EXPECT_GT(result.server.preemptions, 0u);
  EXPECT_EQ(result.summary.completed, result.summary.issued);
}

}  // namespace
}  // namespace nicsched::core
