// Queue-policy unit tests plus one end-to-end policy behaviour check.
#include <gtest/gtest.h>

#include <memory>

#include "core/task_queue.h"
#include "core/testbed.h"

namespace nicsched::core {
namespace {

proto::RequestDescriptor descriptor(std::uint64_t id, std::uint64_t work_ps,
                                    std::uint16_t kind = 0) {
  proto::RequestDescriptor d;
  d.request_id = id;
  d.remaining_ps = work_ps;
  d.kind = kind;
  return d;
}

TEST(TaskQueuePolicy, SjfPopsShortestRemainingWork) {
  TaskQueue queue(QueuePolicy::kSjf);
  queue.push_new(descriptor(1, 500));
  queue.push_new(descriptor(2, 100));
  queue.push_new(descriptor(3, 300));
  EXPECT_EQ(queue.pop()->request_id, 2u);
  EXPECT_EQ(queue.pop()->request_id, 3u);
  EXPECT_EQ(queue.pop()->request_id, 1u);
}

TEST(TaskQueuePolicy, SjfTiesKeepInsertionOrder) {
  TaskQueue queue(QueuePolicy::kSjf);
  queue.push_new(descriptor(1, 100));
  queue.push_new(descriptor(2, 100));
  queue.push_new(descriptor(3, 100));
  EXPECT_EQ(queue.pop()->request_id, 1u);
  EXPECT_EQ(queue.pop()->request_id, 2u);
  EXPECT_EQ(queue.pop()->request_id, 3u);
}

TEST(TaskQueuePolicy, SjfPreemptedRequestGainsPriorityAsItShrinks) {
  // A long request that has been mostly executed re-enters with little
  // remaining work and should now beat a fresh medium request.
  TaskQueue queue(QueuePolicy::kSjf);
  queue.push_new(descriptor(1, 200));
  queue.push_preempted(descriptor(2, 50));  // 50 left of an original 500
  EXPECT_EQ(queue.pop()->request_id, 2u);
}

TEST(TaskQueuePolicy, MultiClassStrictPriorityFifoWithin) {
  TaskQueue queue(QueuePolicy::kMultiClass);
  queue.push_new(descriptor(1, 100, /*kind=*/1));
  queue.push_new(descriptor(2, 100, /*kind=*/0));
  queue.push_new(descriptor(3, 100, /*kind=*/1));
  queue.push_new(descriptor(4, 100, /*kind=*/0));
  EXPECT_EQ(queue.pop()->request_id, 2u);  // class 0 first, FIFO within
  EXPECT_EQ(queue.pop()->request_id, 4u);
  EXPECT_EQ(queue.pop()->request_id, 1u);
  EXPECT_EQ(queue.pop()->request_id, 3u);
}

TEST(TaskQueuePolicy, BvtAlternatesEqualWeightClasses) {
  // Two classes with equal weights and equal-size requests: BVT serves them
  // in strict alternation regardless of arrival interleaving.
  TaskQueue queue(QueuePolicy::kBvt);
  for (std::uint64_t i = 0; i < 4; ++i) queue.push_new(descriptor(i, 100, 0));
  for (std::uint64_t i = 4; i < 8; ++i) queue.push_new(descriptor(i, 100, 1));
  std::vector<std::uint16_t> kinds;
  while (auto d = queue.pop()) kinds.push_back(d->kind);
  EXPECT_EQ(kinds, (std::vector<std::uint16_t>{0, 1, 0, 1, 0, 1, 0, 1}));
}

TEST(TaskQueuePolicy, BvtWeightsSkewService) {
  // Class 0 at weight 3 should be served ~3x as often as class 1 while both
  // stay backlogged.
  TaskQueue queue(QueuePolicy::kBvt);
  queue.set_class_weight(0, 3.0);
  queue.set_class_weight(1, 1.0);
  for (std::uint64_t i = 0; i < 30; ++i) queue.push_new(descriptor(i, 100, 0));
  for (std::uint64_t i = 30; i < 40; ++i) {
    queue.push_new(descriptor(i, 100, 1));
  }
  int first_12_class0 = 0;
  for (int i = 0; i < 12; ++i) {
    if (queue.pop()->kind == 0) ++first_12_class0;
  }
  EXPECT_EQ(first_12_class0, 9);  // 3:1 ratio
}

TEST(TaskQueuePolicy, BvtIdleClassCannotMonopolizeOnReturn) {
  TaskQueue queue(QueuePolicy::kBvt);
  // Class 0 runs alone for a while, building virtual time.
  for (std::uint64_t i = 0; i < 10; ++i) queue.push_new(descriptor(i, 100, 0));
  for (int i = 0; i < 8; ++i) queue.pop();
  EXPECT_GT(queue.virtual_time(0), 0.0);
  // Class 1 shows up: it is caught up to class 0's virtual time (the tie
  // then breaks to the lower kind), so service alternates instead of class 1
  // draining its backlog of stale virtual time first.
  for (std::uint64_t i = 100; i < 104; ++i) {
    queue.push_new(descriptor(i, 100, 1));
  }
  std::vector<std::uint16_t> kinds;
  for (int i = 0; i < 4; ++i) kinds.push_back(queue.pop()->kind);
  EXPECT_EQ(kinds, (std::vector<std::uint16_t>{0, 1, 0, 1}));
}

TEST(TaskQueuePolicy, BvtChargesByRemainingWork) {
  // A preempted request re-enters with less remaining work and is charged
  // only for that remainder.
  TaskQueue queue(QueuePolicy::kBvt);
  queue.push_new(descriptor(1, 1'000'000, 0));  // 1 us
  queue.pop();
  const double after_full = queue.virtual_time(0);
  queue.push_preempted(descriptor(1, 250'000, 0));  // 0.25 us left
  queue.pop();
  EXPECT_NEAR(queue.virtual_time(0) - after_full, after_full * 0.25,
              after_full * 0.01);
}

TEST(TaskQueuePolicy, DepthAndStatsAgreeAcrossPolicies) {
  for (const auto policy : {QueuePolicy::kFcfs, QueuePolicy::kSjf,
                            QueuePolicy::kMultiClass, QueuePolicy::kBvt}) {
    TaskQueue queue(policy);
    for (std::uint64_t i = 0; i < 10; ++i) {
      queue.push_new(descriptor(i, 100 + i, static_cast<std::uint16_t>(i % 3)));
    }
    EXPECT_EQ(queue.depth(), 10u) << to_string(policy);
    EXPECT_EQ(queue.stats().max_depth, 10u);
    std::size_t popped = 0;
    while (queue.pop()) ++popped;
    EXPECT_EQ(popped, 10u) << to_string(policy);
    EXPECT_TRUE(queue.empty());
    EXPECT_FALSE(queue.pop().has_value());
  }
}

TEST(TaskQueuePolicy, Names) {
  EXPECT_STREQ(to_string(QueuePolicy::kFcfs), "fcfs");
  EXPECT_STREQ(to_string(QueuePolicy::kSjf), "sjf");
  EXPECT_STREQ(to_string(QueuePolicy::kMultiClass), "multi-class");
}

TEST(PolicyEndToEnd, SjfProtectsShortRequestsUnderMixedLoad) {
  std::vector<workload::MixtureDistribution::Component> components;
  components.push_back({std::make_shared<workload::FixedDistribution>(
                            sim::Duration::micros(5)),
                        0.8});
  components.push_back({std::make_shared<workload::FixedDistribution>(
                            sim::Duration::micros(200)),
                        0.2});
  auto service =
      std::make_shared<workload::MixtureDistribution>(std::move(components));

  ExperimentConfig config;
  config.system = SystemKind::kIdealNic;
  config.worker_count = 4;
  config.outstanding_per_worker = 1;
  config.time_slice = sim::Duration::micros(25);
  config.service = service;
  config.offered_rps = 75e3;  // ~82 % of 4-worker capacity
  config.measure = sim::Duration::millis(40);
  config.drain = sim::Duration::millis(10);

  config.queue_policy = QueuePolicy::kFcfs;
  const auto fcfs = run_experiment(config);
  config.queue_policy = QueuePolicy::kSjf;
  const auto sjf = run_experiment(config);

  const double fcfs_short = fcfs.recorder.by_kind(0).quantile(0.99).to_micros();
  const double sjf_short = sjf.recorder.by_kind(0).quantile(0.99).to_micros();
  EXPECT_LT(sjf_short, fcfs_short);
  // Conservation holds under both policies.
  EXPECT_EQ(fcfs.summary.completed, fcfs.summary.issued);
  EXPECT_EQ(sjf.summary.completed, sjf.summary.issued);
}

}  // namespace
}  // namespace nicsched::core
