// RainServer acceptance (DESIGN §15): the RDMA-assisted dispatch family is
// deterministic, conserves every request under composed overload + tenants
// + faults, degrades PR 3 reliable dispatch onto doorbell/CQ semantics
// (crash → watchdog → re-steer; the channel itself never drops), and the
// feedback-staleness knob is inert unless adaptive-K consumes it.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/testbed.h"
#include "fault/fault_schedule.h"
#include "overload/overload.h"

namespace nicsched {
namespace {

core::ExperimentConfig base_config(std::uint64_t seed) {
  return core::ExperimentConfig::rain()
      .workers(4)
      .outstanding(2)
      .fixed(sim::Duration::micros(2))
      .load(200e3)
      .samples(10'000)
      .with_seed(seed);
}

void expect_conserved(const core::ExperimentResult::ClientTotals& t) {
  EXPECT_EQ(t.sent, t.completed + t.rejected + t.expired + t.abandoned +
                        t.outstanding);
}

void expect_equal_runs(const core::ExperimentResult& a,
                       const core::ExperimentResult& b) {
  EXPECT_EQ(a.summary.completed, b.summary.completed);
  EXPECT_DOUBLE_EQ(a.summary.p50_us, b.summary.p50_us);
  EXPECT_DOUBLE_EQ(a.summary.p99_us, b.summary.p99_us);
  EXPECT_DOUBLE_EQ(a.summary.achieved_rps, b.summary.achieved_rps);
  EXPECT_EQ(a.server.requests_received, b.server.requests_received);
  EXPECT_EQ(a.server.responses_sent, b.server.responses_sent);
  EXPECT_EQ(a.server.preemptions, b.server.preemptions);
  EXPECT_EQ(a.server.reliability.retransmits, b.server.reliability.retransmits);
  EXPECT_EQ(a.server.reliability.redispatched,
            b.server.reliability.redispatched);
  EXPECT_EQ(a.server.overload.rejected, b.server.overload.rejected);
  EXPECT_EQ(a.server.overload.k_shrinks, b.server.overload.k_shrinks);
}

std::vector<std::uint64_t> seeds() {
  if (std::getenv("NICSCHED_FAST") != nullptr) return {1};
  return {1, 2, 3};
}

TEST(CoreRain, RepeatedRunsAreBitIdentical) {
  for (const std::uint64_t seed : seeds()) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    overload::OverloadParams informed;
    informed.enabled = true;
    const auto config = base_config(seed).with_overload(informed).reliable(
        true);
    const auto a = core::run_experiment(config);
    const auto b = core::run_experiment(config);
    ASSERT_GT(a.summary.completed, 1'000u);
    expect_equal_runs(a, b);
    expect_conserved(a.clients);
  }
}

TEST(CoreRain, FeedbackStalenessIsInertWithoutAdaptiveK) {
  // The staleness knob only delays the adaptive-K fold; with overload off
  // the sojourn samples are never produced, so any staleness value must be
  // byte-identical to zero — the default-off discipline every knob follows.
  const auto fresh = core::run_experiment(base_config(7));
  const auto stale = core::run_experiment(
      base_config(7).with_feedback_staleness(sim::Duration::micros(500)));
  expect_equal_runs(fresh, stale);
}

TEST(CoreRain, FeedbackStalenessDelaysTheAdaptiveKReaction) {
  // Repeated 300 us stalls back up one worker; its sojourn samples drive the
  // adaptive-K governor. The knob must keep the loop working at any age
  // (graceful degradation) — and a fresh loop never shrinks later than a
  // stale one within the same run length.
  for (const std::uint64_t seed : seeds()) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    overload::OverloadParams informed;
    informed.enabled = true;
    fault::FaultSchedule stalls;
    for (int i = 0; i < 4; ++i) {
      stalls.stall_worker(
          sim::TimePoint::origin() + sim::Duration::millis(10 + i), 0,
          sim::Duration::micros(300));
    }
    const auto base = core::ExperimentConfig::rain()
                          .workers(4)
                          .outstanding(4)
                          .fixed_5us()
                          .load(600e3)
                          .samples(10'000)
                          .with_seed(seed)
                          .with_overload(informed)
                          .with_faults(stalls);
    const auto fresh = core::run_experiment(base);
    const auto stale = core::run_experiment(
        core::ExperimentConfig(base).with_feedback_staleness(
            sim::Duration::micros(100)));
    EXPECT_GT(fresh.server.overload.k_shrinks, 0u)
        << "the stall backlog never tripped the sojourn governor";
    EXPECT_GT(stale.server.overload.k_shrinks, 0u)
        << "stale feedback must delay the governor, not disable it";
    expect_conserved(fresh.clients);
    expect_conserved(stale.clients);
  }
}

TEST(CoreRain, ReliableDispatchReSteersACrashedWorker) {
  // PR 3 semantics degraded onto the CQ: a crashed worker stops posting
  // CQEs, the completion watchdog declares it dead, and everything it held
  // re-steers through the central queue. Nothing is lost — the run keeps
  // completing on the surviving workers and the ledger balances.
  for (const std::uint64_t seed : seeds()) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    fault::FaultSchedule faults;
    faults.crash_worker(sim::TimePoint::origin() + sim::Duration::millis(5),
                        1);
    const auto result = core::run_experiment(
        base_config(seed).reliable(true).with_faults(faults));
    ASSERT_GT(result.summary.completed, 1'000u);
    EXPECT_GT(result.server.reliability.worker_deaths, 0u)
        << "the silent worker was never declared dead";
    EXPECT_GT(result.server.reliability.redispatched, 0u)
        << "the dead worker's inflight requests were not re-steered";
    // Client-side ledger: issued == answered + accounted-lost.
    const auto& t = result.clients;
    EXPECT_EQ(t.sent, t.completed + t.rejected + t.expired + t.abandoned +
                          t.outstanding);
  }
}

TEST(CoreRain, DispatchLossWindowsAreANoOpOnTheLosslessChannel) {
  // UDP dispatch loses frames; a one-sided RDMA write cannot. A certain-loss
  // dispatch window must leave a rain run byte-identical to the fault-free
  // run — inject_dispatch_loss is documented as a no-op for servers whose
  // dispatch does not cross a lossy fabric.
  const auto clean = core::run_experiment(base_config(3).reliable(true));
  fault::FaultSchedule losses;
  losses.dispatch_loss(sim::TimePoint::origin() + sim::Duration::millis(2),
                       sim::TimePoint::origin() + sim::Duration::millis(40),
                       1.0);
  const auto lossy = core::run_experiment(
      base_config(3).reliable(true).with_faults(losses));
  expect_equal_runs(clean, lossy);
  EXPECT_EQ(lossy.server.reliability.retransmits, 0u);
  EXPECT_EQ(lossy.server.reliability.abandoned, 0u);
}

TEST(CoreRain, ComposedOverloadTenantsAndFaultsConserve) {
  // The §15 acceptance shape: overload control + two tenant lanes + a timed
  // worker stall, all active in one reliable rain run, across seeds. The
  // per-tenant ledgers conserve and sum to the global totals.
  for (const std::uint64_t seed : seeds()) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    overload::OverloadParams informed;
    informed.enabled = true;
    fault::FaultSchedule faults;
    faults.stall_worker(sim::TimePoint::origin() + sim::Duration::millis(8),
                        2, sim::Duration::micros(400));
    auto config =
        core::ExperimentConfig::rain()
            .workers(4)
            .outstanding(2)
            .load(300e3)
            .clients(2, 16)
            .measure_for(sim::Duration::millis(4))
            .with_seed(seed)
            .reliable(true)
            .with_overload(informed)
            .with_faults(faults)
            .with_tenants(
                {tenant::make_tenant(1).named("gold").weighted(4.0).fixed(
                     sim::Duration::micros(4)),
                 tenant::make_tenant(2).named("batch").fixed(
                     sim::Duration::micros(8))});
    config.drain = sim::Duration::millis(2);  // long drain -> quiescence
    const auto result = core::run_experiment(config);
    ASSERT_EQ(result.tenants.size(), 2u);
    core::ExperimentResult::ClientTotals sum;
    for (const auto& row : result.tenants) {
      expect_conserved(row.clients);
      EXPECT_GT(row.clients.sent, 0u);
      sum.sent += row.clients.sent;
      sum.completed += row.clients.completed;
      sum.rejected += row.clients.rejected;
      sum.expired += row.clients.expired;
      sum.abandoned += row.clients.abandoned;
      sum.outstanding += row.clients.outstanding;
    }
    expect_conserved(result.clients);
    EXPECT_EQ(sum.sent, result.clients.sent);
    EXPECT_EQ(sum.completed, result.clients.completed);
  }
}

}  // namespace
}  // namespace nicsched
