// Integration tests: every server system wired into a full testbed.
#include <gtest/gtest.h>

#include <memory>

#include "core/offload_server.h"
#include "core/shinjuku_server.h"
#include "core/testbed.h"
#include "net/ethernet_switch.h"
#include "workload/client.h"

namespace nicsched::core {
namespace {

std::shared_ptr<workload::ServiceDistribution> fixed_us(double us) {
  return std::make_shared<workload::FixedDistribution>(
      sim::Duration::micros(us));
}

ExperimentConfig base_config(SystemKind system) {
  ExperimentConfig config;
  config.system = system;
  config.worker_count = 4;
  config.outstanding_per_worker = 4;
  config.service = fixed_us(5.0);
  config.offered_rps = 150e3;  // ~20 % of 4-worker capacity at 5 us
  config.warmup = sim::Duration::millis(2);
  config.measure = sim::Duration::millis(30);
  config.drain = sim::Duration::millis(5);
  config.seed = 7;
  return config;
}

class AllSystems : public ::testing::TestWithParam<SystemKind> {};

TEST_P(AllSystems, ConservesRequestsAtModerateLoad) {
  const ExperimentConfig config = base_config(GetParam());
  const ExperimentResult result = run_experiment(config);

  // Open loop at 150k for 30 ms → ~4500 requests.
  EXPECT_GT(result.summary.issued, 3500u);
  // Every request issued in the window completed (the drain outlasts the
  // longest path at this load). No drops anywhere.
  EXPECT_EQ(result.summary.completed, result.summary.issued);
  EXPECT_EQ(result.server.drops, 0u);
  EXPECT_GT(result.summary.achieved_rps, 0.9 * config.offered_rps);
}

TEST_P(AllSystems, DeterministicForFixedSeed) {
  const ExperimentConfig config = base_config(GetParam());
  const ExperimentResult a = run_experiment(config);
  const ExperimentResult b = run_experiment(config);
  EXPECT_EQ(a.summary.completed, b.summary.completed);
  EXPECT_DOUBLE_EQ(a.summary.p99_us, b.summary.p99_us);
  EXPECT_DOUBLE_EQ(a.summary.mean_us, b.summary.mean_us);

  ExperimentConfig other_seed = config;
  other_seed.seed = 8;
  const ExperimentResult c = run_experiment(other_seed);
  EXPECT_NE(a.summary.completed, c.summary.completed);
}

TEST_P(AllSystems, LowLoadLatencyIsSane) {
  ExperimentConfig config = base_config(GetParam());
  config.offered_rps = 20e3;
  const ExperimentResult result = run_experiment(config);
  // Floor: ~4 us of wire both ways + 5 us service + server path. Nothing at
  // 20 kRPS on 4 workers should queue for long.
  EXPECT_GT(result.summary.p50_us, 6.5);
  EXPECT_LT(result.summary.p50_us, 30.0);
  EXPECT_LT(result.summary.p999_us, 100.0);
}

INSTANTIATE_TEST_SUITE_P(
    Systems, AllSystems,
    ::testing::Values(SystemKind::kShinjuku, SystemKind::kShinjukuOffload,
                      SystemKind::kRss, SystemKind::kFlowDirector,
                      SystemKind::kWorkStealing, SystemKind::kElasticRss,
                      SystemKind::kIdealNic, SystemKind::kRpcValet,
                      SystemKind::kRain),
    [](const ::testing::TestParamInfo<SystemKind>& info) {
      std::string name = to_string(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(OffloadPreemption, LongRequestsArePreemptedOncePerSlice) {
  ExperimentConfig config = base_config(SystemKind::kShinjukuOffload);
  config.service = fixed_us(50.0);
  config.time_slice = sim::Duration::micros(10);
  config.preemption_enabled = true;
  config.offered_rps = 20e3;
  const ExperimentResult result = run_experiment(config);

  ASSERT_GT(result.summary.completed, 100u);
  // 50 us of work in 10 us slices → 4-5 preemptions per request (the last
  // slice completes). The offload timer fires regardless of queue state.
  const double per_request = static_cast<double>(result.summary.preemptions) /
                             static_cast<double>(result.summary.completed);
  EXPECT_GT(per_request, 3.5);
  EXPECT_LT(per_request, 5.5);
  EXPECT_EQ(result.summary.completed, result.summary.issued);
}

TEST(OffloadPreemption, DisabledMeansZero) {
  ExperimentConfig config = base_config(SystemKind::kShinjukuOffload);
  config.service = fixed_us(50.0);
  config.preemption_enabled = false;
  config.offered_rps = 20e3;
  const ExperimentResult result = run_experiment(config);
  EXPECT_EQ(result.server.preemptions, 0u);
  EXPECT_EQ(result.summary.preemptions, 0u);
}

TEST(InformedPreemption, ShinjukuSkipsPreemptionWhenQueueEmpty) {
  // §3.4.4: the offload worker's local timer fires even when no work waits;
  // the host dispatcher (and the ideal NIC) can check the queue first. At
  // low load the queue is almost always empty, so the informed systems
  // preempt almost never while offload preempts every slice.
  ExperimentConfig config = base_config(SystemKind::kShinjuku);
  config.service = fixed_us(50.0);
  config.time_slice = sim::Duration::micros(10);
  config.offered_rps = 10e3;

  const ExperimentResult shinjuku = run_experiment(config);
  config.system = SystemKind::kIdealNic;
  const ExperimentResult ideal = run_experiment(config);
  config.system = SystemKind::kShinjukuOffload;
  const ExperimentResult offload = run_experiment(config);

  ASSERT_GT(offload.summary.completed, 100u);
  EXPECT_GT(offload.server.preemptions, offload.summary.completed * 3);
  EXPECT_LT(shinjuku.server.preemptions, offload.server.preemptions / 20);
  EXPECT_LT(ideal.server.preemptions, offload.server.preemptions / 20);
}

TEST(Preemption, PreemptedWorkIsNeverLost) {
  // Heavy preemption churn at moderate-high load: every byte of work still
  // completes exactly once (remaining-work accounting is exact).
  ExperimentConfig config = base_config(SystemKind::kShinjukuOffload);
  config.service = std::make_shared<workload::BimodalDistribution>(
      sim::Duration::micros(5), sim::Duration::micros(100), 0.05);
  config.time_slice = sim::Duration::micros(10);
  config.offered_rps = 250e3;
  config.drain = sim::Duration::millis(10);
  const ExperimentResult result = run_experiment(config);
  EXPECT_EQ(result.summary.completed, result.summary.issued);
  EXPECT_GT(result.summary.preemptions, 0u);
  EXPECT_EQ(result.server.drops, 0u);
}

TEST(WorkStealing, IdleCoresStealUnderRssImbalance) {
  ExperimentConfig config = base_config(SystemKind::kWorkStealing);
  // Few flows → RSS imbalance → the victimized cores' backlog gets stolen.
  config.flows_per_client = 2;
  config.client_machines = 2;
  config.offered_rps = 400e3;
  const ExperimentResult result = run_experiment(config);
  EXPECT_GT(result.server.steals, 0u);

  ExperimentConfig rss = config;
  rss.system = SystemKind::kRss;
  const ExperimentResult no_steal = run_experiment(rss);
  EXPECT_EQ(no_steal.server.steals, 0u);
  // Stealing strictly improves tail latency under this imbalance.
  EXPECT_LT(result.summary.p99_us, no_steal.summary.p99_us);
}

TEST(RpcValet, PerfectBalancingStillLosesToPreemptionUnderDispersion) {
  // §2.2: "due to their lack of preemptive scheduling, ZygOS and RPCValet,
  // along with IX and MICA, demonstrate high tail latency for
  // highly-variable request service time distributions."
  auto dispersive = std::make_shared<workload::BimodalDistribution>(
      sim::Duration::micros(5), sim::Duration::micros(500), 0.02);

  ExperimentConfig rpcvalet = base_config(SystemKind::kRpcValet);
  rpcvalet.service = dispersive;
  rpcvalet.offered_rps = 350e3;
  const auto valet = run_experiment(rpcvalet);

  ExperimentConfig rss = base_config(SystemKind::kRss);
  rss.worker_count = rpcvalet.worker_count;
  rss.service = dispersive;
  rss.offered_rps = 350e3;
  const auto rss_result = run_experiment(rss);

  ExperimentConfig ideal = base_config(SystemKind::kIdealNic);
  ideal.service = dispersive;
  ideal.offered_rps = 350e3;
  ideal.time_slice = sim::Duration::micros(10);
  const auto preemptive = run_experiment(ideal);

  const double valet_short =
      valet.recorder.by_kind(0).quantile(0.99).to_micros();
  const double rss_short =
      rss_result.recorder.by_kind(0).quantile(0.99).to_micros();
  const double preemptive_short =
      preemptive.recorder.by_kind(0).quantile(0.99).to_micros();

  // Centralized balancing beats RSS's per-core queues...
  EXPECT_LT(valet_short, rss_short);
  // ...but without preemption, short requests still wait behind 500 us
  // requests; only the preemptive system protects them.
  EXPECT_GT(valet_short, 3.0 * preemptive_short);
  EXPECT_EQ(valet.server.preemptions, 0u);
}

TEST(ElasticRss, RebalancesUnderFlowImbalanceAndImprovesTail) {
  ExperimentConfig config = base_config(SystemKind::kElasticRss);
  config.client_machines = 2;
  config.flows_per_client = 4;  // 8 flows over 4 rings: lumpy
  config.offered_rps = 400e3;
  const ExperimentResult elastic = run_experiment(config);

  ExperimentConfig rss = config;
  rss.system = SystemKind::kRss;
  const ExperimentResult plain = run_experiment(rss);

  EXPECT_LT(elastic.summary.p99_us, plain.summary.p99_us);
  EXPECT_EQ(elastic.summary.completed, elastic.summary.issued);
}

TEST(ElasticRss, NoHarmWhenAlreadyBalanced) {
  ExperimentConfig config = base_config(SystemKind::kElasticRss);
  config.flows_per_client = 64;
  config.offered_rps = 100e3;  // light, well-spread load
  const ExperimentResult elastic = run_experiment(config);
  ExperimentConfig rss = config;
  rss.system = SystemKind::kRss;
  const ExperimentResult plain = run_experiment(rss);
  EXPECT_LT(elastic.summary.p99_us, plain.summary.p99_us * 1.2);
  EXPECT_EQ(elastic.summary.completed, elastic.summary.issued);
}

TEST(RunToCompletion, BaselinesNeverPreempt) {
  for (const SystemKind system :
       {SystemKind::kRss, SystemKind::kFlowDirector,
        SystemKind::kWorkStealing, SystemKind::kElasticRss}) {
    ExperimentConfig config = base_config(system);
    config.service = std::make_shared<workload::BimodalDistribution>(
        sim::Duration::micros(5), sim::Duration::micros(100), 0.05);
    const ExperimentResult result = run_experiment(config);
    EXPECT_EQ(result.server.preemptions, 0u) << to_string(system);
  }
}

TEST(OffloadServer, RespectsOutstandingLimit) {
  // Direct wiring so the dispatcher's status table can be sampled live.
  sim::Simulator sim;
  const ModelParams params = ModelParams::defaults();
  net::EthernetSwitch network(sim, params.switch_forward_latency);

  ShinjukuOffloadServer::Config server_config;
  server_config.worker_count = 2;
  server_config.outstanding_per_worker = 3;
  server_config.preemption_enabled = false;
  ShinjukuOffloadServer server(sim, network, params, server_config);

  workload::ClientMachine::Config client_config;
  client_config.client_id = 1;
  client_config.mac = net::MacAddress::from_index(1);
  client_config.ip = net::Ipv4Address::from_index(1);
  client_config.server_mac = server.ingress_mac();
  client_config.server_ip = server.ingress_ip();
  client_config.server_port = server.port();
  workload::ClientMachine client(
      sim, network, client_config, fixed_us(2.0),
      std::make_unique<workload::PoissonArrivals>(800e3),  // overload
      sim::Rng(3));
  client.start(sim::TimePoint::origin() + sim::Duration::millis(5));

  std::uint32_t max_outstanding = 0;
  for (int i = 1; i <= 500; ++i) {
    sim.at(sim::TimePoint::origin() + sim::Duration::micros(i * 10), [&]() {
      for (std::size_t w = 0; w < 2; ++w) {
        max_outstanding = std::max(
            max_outstanding, server.core_status().entry(w).outstanding);
      }
    });
  }
  sim.run_until(sim::TimePoint::origin() + sim::Duration::millis(6));
  EXPECT_EQ(max_outstanding, 3u);  // overloaded, so the limit is reached...
  EXPECT_LE(max_outstanding, 3u);  // ...and never exceeded
}

TEST(OffloadServer, SenderCoreCountIsValidated) {
  sim::Simulator sim;
  const ModelParams params = ModelParams::defaults();
  net::EthernetSwitch network(sim, params.switch_forward_latency);
  ShinjukuOffloadServer::Config config;
  config.sender_cores = 0;
  EXPECT_THROW(ShinjukuOffloadServer(sim, network, params, config),
               std::invalid_argument);
  config.sender_cores = 6;  // only 5 ARM cores remain beside net/D1/D3
  EXPECT_THROW(ShinjukuOffloadServer(sim, network, params, config),
               std::invalid_argument);
}

TEST(OffloadServer, ParallelSendersConserveAndLiftThroughput) {
  ExperimentConfig probe = base_config(SystemKind::kShinjukuOffload);
  probe.service = fixed_us(1.0);
  probe.preemption_enabled = false;
  probe.outstanding_per_worker = 5;
  probe.worker_count = 8;
  probe.offered_rps = 3.0e6;  // far above the 1-sender ceiling (~1.3 MRPS)

  // The testbed always builds 1 sender; compare via the raw server to vary
  // sender_cores — simplest is two direct runs through run_experiment with
  // a params/config override... sender_cores isn't in ExperimentConfig by
  // design (it is an ablation knob), so drive the server directly.
  auto run_with_senders = [&](std::size_t senders) {
    sim::Simulator sim;
    net::EthernetSwitch network(sim, probe.params.switch_forward_latency);
    ShinjukuOffloadServer::Config server_config;
    server_config.worker_count = probe.worker_count;
    server_config.outstanding_per_worker = probe.outstanding_per_worker;
    server_config.preemption_enabled = false;
    server_config.sender_cores = senders;
    ShinjukuOffloadServer server(sim, network, probe.params, server_config);

    workload::ClientMachine::Config client_config;
    client_config.client_id = 1;
    client_config.mac = net::MacAddress::from_index(1);
    client_config.ip = net::Ipv4Address::from_index(1);
    client_config.server_mac = server.ingress_mac();
    client_config.server_ip = server.ingress_ip();
    client_config.server_port = server.port();
    workload::ClientMachine client(
        sim, network, client_config, probe.service,
        std::make_unique<workload::PoissonArrivals>(probe.offered_rps),
        sim::Rng(9));
    client.start(sim::TimePoint::origin() + sim::Duration::millis(20));
    sim.run_until(sim::TimePoint::origin() + sim::Duration::millis(24));
    const ServerStats stats = server.stats(sim::Duration::millis(24));
    // Overloaded on purpose: unanswered requests queue, and at 3 MRPS the
    // client-facing RX ring legitimately overflows (the networker parses at
    // ~2.5 MRPS) — but everything *accepted* must be answered or queued.
    EXPECT_LE(stats.responses_sent, stats.requests_received);
    return client.received();
  };

  const std::uint64_t with_one = run_with_senders(1);
  const std::uint64_t with_three = run_with_senders(3);
  EXPECT_GT(with_three, with_one * 5 / 4);
}

TEST(OffloadServer, MalformedTrafficIsCountedNotCrashing) {
  sim::Simulator sim;
  const ModelParams params = ModelParams::defaults();
  net::EthernetSwitch network(sim, params.switch_forward_latency);
  ShinjukuOffloadServer server(sim, network, params, {});

  // A valid UDP datagram whose payload is not a protocol message.
  net::DatagramAddress address;
  address.src_mac = net::MacAddress::from_index(1);
  address.dst_mac = server.ingress_mac();
  address.src_ip = net::Ipv4Address::from_index(1);
  address.dst_ip = server.ingress_ip();
  address.src_port = 1234;
  address.dst_port = server.port();
  const std::vector<std::uint8_t> garbage = {1, 2, 3, 4, 5};
  network.ingress().deliver(net::make_udp_datagram(address, garbage));

  // And one to a wrong port.
  address.dst_port = 9;
  network.ingress().deliver(net::make_udp_datagram(address, garbage));

  sim.run_until(sim::TimePoint::origin() + sim::Duration::millis(1));
  const ServerStats stats = server.stats(sim::Duration::millis(1));
  EXPECT_EQ(stats.requests_received, 0u);
  EXPECT_EQ(stats.drops, 2u);
}

TEST(ShinjukuServer, FifoOrderWithSingleWorker) {
  // One worker, uniform arrivals faster than service: responses must come
  // back in request order (centralized FIFO queue).
  sim::Simulator sim;
  const ModelParams params = ModelParams::defaults();
  net::EthernetSwitch network(sim, params.switch_forward_latency);

  ShinjukuServer::Config server_config;
  server_config.worker_count = 1;
  server_config.preemption_enabled = false;
  ShinjukuServer server(sim, network, params, server_config);

  workload::ClientMachine::Config client_config;
  client_config.client_id = 1;
  client_config.mac = net::MacAddress::from_index(1);
  client_config.ip = net::Ipv4Address::from_index(1);
  client_config.server_mac = server.ingress_mac();
  client_config.server_ip = server.ingress_ip();
  client_config.server_port = server.port();
  workload::ClientMachine client(
      sim, network, client_config, fixed_us(5.0),
      std::make_unique<workload::UniformArrivals>(100e3), sim::Rng(4));

  std::vector<std::uint64_t> completion_order;
  client.set_on_response([&](const workload::ResponseRecord& record) {
    completion_order.push_back(record.request_id);
  });
  client.start(sim::TimePoint::origin() + sim::Duration::millis(2));
  sim.run_until(sim::TimePoint::origin() + sim::Duration::millis(10));

  ASSERT_GT(completion_order.size(), 50u);
  EXPECT_TRUE(std::is_sorted(completion_order.begin(), completion_order.end()));
}

TEST(Testbed, ValidatesConfiguration) {
  ExperimentConfig config;  // service unset
  config.offered_rps = 1000;
  EXPECT_THROW(run_experiment(config), std::invalid_argument);

  config.service = fixed_us(1.0);
  config.offered_rps = 0;
  EXPECT_THROW(run_experiment(config), std::invalid_argument);

  config.offered_rps = 1000;
  config.client_machines = 0;
  EXPECT_THROW(run_experiment(config), std::invalid_argument);
}

TEST(Testbed, SweepReturnsOnePointPerLoad) {
  ExperimentConfig config = base_config(SystemKind::kRss);
  config.measure = sim::Duration::millis(5);
  const auto summaries = sweep_summaries(config, {50e3, 100e3, 150e3});
  ASSERT_EQ(summaries.size(), 3u);
  EXPECT_DOUBLE_EQ(summaries[0].offered_rps, 50e3);
  EXPECT_DOUBLE_EQ(summaries[2].offered_rps, 150e3);
  EXPECT_LT(summaries[0].achieved_rps, summaries[2].achieved_rps);
}

}  // namespace
}  // namespace nicsched::core
