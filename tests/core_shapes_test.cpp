// Fast versions of each figure's headline ordering — the paper's qualitative
// claims as CI-sized tests (the full sweeps live in bench/).
#include <gtest/gtest.h>

#include <memory>

#include "core/testbed.h"

namespace nicsched::core {
namespace {

std::shared_ptr<workload::ServiceDistribution> bimodal_paper() {
  return std::make_shared<workload::BimodalDistribution>(
      sim::Duration::micros(5), sim::Duration::micros(100), 0.005);
}

ExperimentConfig quick(SystemKind system, std::size_t workers) {
  ExperimentConfig config;
  config.system = system;
  config.worker_count = workers;
  config.measure = sim::Duration::millis(25);
  config.drain = sim::Duration::millis(5);
  return config;
}

TEST(Shapes, Fig2OffloadSurvivesWhereShinjukuSaturates) {
  // 520 kRPS of the bimodal workload: beyond 3 host workers' capacity
  // (~480k) but within 4 offload workers' (~640k).
  ExperimentConfig shinjuku = quick(SystemKind::kShinjuku, 3);
  shinjuku.service = bimodal_paper();
  shinjuku.offered_rps = 520e3;
  const auto shinjuku_result = run_experiment(shinjuku);

  ExperimentConfig offload = quick(SystemKind::kShinjukuOffload, 4);
  offload.service = bimodal_paper();
  offload.outstanding_per_worker = 4;
  offload.offered_rps = 520e3;
  const auto offload_result = run_experiment(offload);

  EXPECT_GT(shinjuku_result.summary.p99_us, 500.0);
  EXPECT_LT(offload_result.summary.p99_us, 200.0);
}

TEST(Shapes, Fig2PreemptionHoldsShortRequestTail) {
  // Near saturation (ρ ≈ 0.85), where head-of-line blocking by the 100 us
  // requests dominates the short-request tail unless preemption breaks it.
  ExperimentConfig offload = quick(SystemKind::kShinjukuOffload, 4);
  offload.service = bimodal_paper();
  offload.outstanding_per_worker = 4;
  offload.time_slice = sim::Duration::micros(10);
  offload.offered_rps = 550e3;
  const auto with_preemption = run_experiment(offload);

  offload.preemption_enabled = false;
  const auto without = run_experiment(offload);

  const double short_p99_with =
      with_preemption.recorder.by_kind(0).quantile(0.99).to_micros();
  const double short_p99_without =
      without.recorder.by_kind(0).quantile(0.99).to_micros();
  EXPECT_LT(short_p99_with, 0.5 * short_p99_without);
}

TEST(Shapes, Fig3OutstandingRequestsRaiseOffloadThroughput) {
  ExperimentConfig offload = quick(SystemKind::kShinjukuOffload, 4);
  offload.service = std::make_shared<workload::FixedDistribution>(
      sim::Duration::micros(1));
  offload.preemption_enabled = false;
  offload.offered_rps = 1.2e6;  // beyond K=1 capacity, below K=5 capacity

  offload.outstanding_per_worker = 1;
  const auto k1 = run_experiment(offload);
  offload.outstanding_per_worker = 5;
  const auto k5 = run_experiment(offload);
  EXPECT_GT(k5.summary.achieved_rps, 1.4 * k1.summary.achieved_rps);
}

TEST(Shapes, Fig6ShinjukuWinsAtOneMicrosecond) {
  // 2 MRPS of 1 us requests: above the offload ARM pipeline's ceiling,
  // comfortably under the host dispatcher's.
  ExperimentConfig shinjuku = quick(SystemKind::kShinjuku, 15);
  shinjuku.service = std::make_shared<workload::FixedDistribution>(
      sim::Duration::micros(1));
  shinjuku.preemption_enabled = false;
  shinjuku.offered_rps = 2.0e6;
  const auto shinjuku_result = run_experiment(shinjuku);

  ExperimentConfig offload = quick(SystemKind::kShinjukuOffload, 16);
  offload.service = shinjuku.service;
  offload.preemption_enabled = false;
  offload.outstanding_per_worker = 5;
  offload.offered_rps = 2.0e6;
  const auto offload_result = run_experiment(offload);

  EXPECT_GT(shinjuku_result.summary.achieved_rps,
            0.95 * shinjuku.offered_rps);
  EXPECT_LT(offload_result.summary.achieved_rps, 0.8 * offload.offered_rps);
}

TEST(Shapes, IdealNicClosesTheGap) {
  ExperimentConfig ideal = quick(SystemKind::kIdealNic, 16);
  ideal.service = std::make_shared<workload::FixedDistribution>(
      sim::Duration::micros(1));
  ideal.preemption_enabled = false;
  ideal.outstanding_per_worker = 2;
  ideal.offered_rps = 6.0e6;  // beyond what either real system can do
  const auto result = run_experiment(ideal);
  EXPECT_GT(result.summary.achieved_rps, 0.95 * ideal.offered_rps);
  EXPECT_LT(result.summary.p99_us, 100.0);
}

TEST(Shapes, RssTailExplodesUnderDispersionOffloadDoesNot) {
  auto dispersive = std::make_shared<workload::BimodalDistribution>(
      sim::Duration::micros(5), sim::Duration::micros(500), 0.01);

  ExperimentConfig rss = quick(SystemKind::kRss, 8);
  rss.service = dispersive;
  rss.offered_rps = 400e3;
  const auto rss_result = run_experiment(rss);

  ExperimentConfig offload = quick(SystemKind::kShinjukuOffload, 8);
  offload.service = dispersive;
  offload.outstanding_per_worker = 4;
  offload.time_slice = sim::Duration::micros(10);
  offload.offered_rps = 400e3;
  const auto offload_result = run_experiment(offload);

  const double rss_short =
      rss_result.recorder.by_kind(0).quantile(0.99).to_micros();
  const double offload_short =
      offload_result.recorder.by_kind(0).quantile(0.99).to_micros();
  EXPECT_GT(rss_short, 5.0 * offload_short);
}

class LoadSweepConservation : public ::testing::TestWithParam<double> {};

TEST_P(LoadSweepConservation, OffloadConservesAtEveryLoad) {
  ExperimentConfig config = quick(SystemKind::kShinjukuOffload, 4);
  config.service = bimodal_paper();
  config.outstanding_per_worker = 4;
  config.offered_rps = GetParam();
  config.drain = sim::Duration::millis(15);
  const auto result = run_experiment(config);
  EXPECT_EQ(result.summary.completed, result.summary.issued);
  EXPECT_EQ(result.server.drops, 0u);
}

INSTANTIATE_TEST_SUITE_P(Loads, LoadSweepConservation,
                         ::testing::Values(50e3, 150e3, 300e3, 450e3, 600e3));

}  // namespace
}  // namespace nicsched::core
