// Unit tests for the scheduler building blocks: the centralized task queue,
// the core-status table, and the poll-loop pumps.
#include <gtest/gtest.h>

#include "core/core_status.h"
#include "core/model_params.h"
#include "core/packet_pump.h"
#include "core/task_queue.h"

namespace nicsched::core {
namespace {

proto::RequestDescriptor descriptor(std::uint64_t id) {
  proto::RequestDescriptor d;
  d.request_id = id;
  return d;
}

TEST(TaskQueue, FifoAcrossNewAndPreempted) {
  TaskQueue queue;
  queue.push_new(descriptor(1));
  queue.push_new(descriptor(2));
  queue.push_preempted(descriptor(3));
  queue.push_new(descriptor(4));

  EXPECT_EQ(queue.pop()->request_id, 1u);
  EXPECT_EQ(queue.pop()->request_id, 2u);
  EXPECT_EQ(queue.pop()->request_id, 3u);
  EXPECT_EQ(queue.pop()->request_id, 4u);
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(TaskQueue, StatsTrackDepthAndSources) {
  TaskQueue queue;
  queue.push_new(descriptor(1));
  queue.push_new(descriptor(2));
  queue.push_preempted(descriptor(3));
  queue.pop();
  queue.push_new(descriptor(4));

  EXPECT_EQ(queue.stats().enqueued_new, 3u);
  EXPECT_EQ(queue.stats().enqueued_preempted, 1u);
  EXPECT_EQ(queue.stats().dequeued, 1u);
  EXPECT_EQ(queue.stats().max_depth, 3u);
  EXPECT_EQ(queue.depth(), 3u);
}

TEST(CoreStatusTable, PicksLeastLoadedWithCapacity) {
  CoreStatusTable table(3, /*capacity=*/2);
  const sim::TimePoint t0 = sim::TimePoint::origin();
  EXPECT_EQ(table.pick_least_loaded(), 0u);  // ties break low

  table.note_sent(0, t0);
  EXPECT_EQ(table.pick_least_loaded(), 1u);
  table.note_sent(1, t0);
  table.note_sent(2, t0);
  table.note_sent(0, t0);  // worker 0 now full (2/2)
  EXPECT_EQ(table.pick_least_loaded(), 1u);
  table.note_sent(1, t0);
  table.note_sent(2, t0);
  EXPECT_FALSE(table.pick_least_loaded().has_value());  // all full

  table.note_retired(2, t0);
  EXPECT_EQ(table.pick_least_loaded(), 2u);
}

TEST(CoreStatusTable, OutstandingAccountingAndRunningSince) {
  CoreStatusTable table(1, 4);
  const sim::TimePoint t1 = sim::TimePoint::origin() + sim::Duration::micros(1);
  const sim::TimePoint t2 = sim::TimePoint::origin() + sim::Duration::micros(2);

  EXPECT_FALSE(table.entry(0).running_since.has_value());
  table.note_sent(0, t1);
  EXPECT_EQ(table.entry(0).outstanding, 1u);
  EXPECT_EQ(table.entry(0).running_since, t1);
  table.note_sent(0, t2);
  EXPECT_EQ(table.entry(0).outstanding, 2u);
  EXPECT_EQ(table.entry(0).running_since, t1);  // unchanged while busy

  table.note_retired(0, t2);
  EXPECT_EQ(table.entry(0).outstanding, 1u);
  EXPECT_EQ(table.entry(0).running_since, t2);
  table.note_retired(0, t2);
  EXPECT_EQ(table.entry(0).outstanding, 0u);
  EXPECT_FALSE(table.entry(0).running_since.has_value());
  EXPECT_EQ(table.total_outstanding(), 0u);

  // Underflow is clamped, not wrapped.
  table.note_retired(0, t2);
  EXPECT_EQ(table.entry(0).outstanding, 0u);
}

TEST(PacketPump, DrainsAtPerPacketCost) {
  sim::Simulator sim;
  hw::CpuCore core(sim, {"pump", sim::Frequency::gigahertz(2.3), 1.0});
  net::RxRing ring(16);
  std::vector<sim::TimePoint> handled;
  PacketPump pump(core, ring, sim::Duration::nanos(200),
                  [&](net::Packet) { handled.push_back(sim.now()); });

  net::DatagramAddress address;
  address.src_mac = net::MacAddress::from_index(1);
  address.dst_mac = net::MacAddress::from_index(2);
  ring.push(net::make_udp_datagram(address, {}));
  ring.push(net::make_udp_datagram(address, {}));
  sim.run();

  ASSERT_EQ(handled.size(), 2u);
  EXPECT_EQ(handled[0], sim::TimePoint::origin() + sim::Duration::nanos(200));
  EXPECT_EQ(handled[1], sim::TimePoint::origin() + sim::Duration::nanos(400));
  EXPECT_TRUE(ring.empty());
}

TEST(ChannelPump, DrainsMessagesInOrder) {
  sim::Simulator sim;
  hw::CpuCore core(sim, {"pump", sim::Frequency::gigahertz(2.3), 1.0});
  hw::MessageChannel<int> channel(sim, sim::Duration::nanos(150));
  std::vector<int> handled;
  ChannelPump<int> pump(core, channel, sim::Duration::nanos(100),
                        [&](int value) { handled.push_back(value); });
  channel.send(1);
  channel.send(2);
  channel.send(3);
  sim.run();
  EXPECT_EQ(handled, (std::vector<int>{1, 2, 3}));
  // Per-item cost bounds throughput: last handled at 150 ns + 3*100 ns.
  EXPECT_EQ(sim.now(),
            sim::TimePoint::origin() + sim::Duration::nanos(450));
}

TEST(ModelParams, CompositePathsMatchPaperAggregates) {
  const ModelParams params = ModelParams::defaults();

  // The ARM→host one-way path (§3.3: 2.56 us): D2 frame construction on the
  // ARM core + ARM-side TX + two Stingray port hops + fabric forward +
  // host-side DMA. Serialization (~70 ns for a small frame) rides on top.
  const double one_way_us =
      (params.packet_build_cost * params.arm_time_scale + params.arm_nic_tx +
       params.stingray_port_latency * 2 + params.switch_forward_latency +
       params.host_nic_rx)
          .to_micros();
  EXPECT_NEAR(one_way_us, 2.56, 0.3);

  // The host dispatcher's per-request budget (§2.2: ~5 M req/s): enqueue +
  // assign + completion handling, inflated by SMT sharing.
  const double per_request_ns =
      (params.dispatch_enqueue_cost + params.dispatch_assign_cost +
       params.dispatch_note_cost + params.cacheline_ipc_cost)
          .to_nanos() *
      params.smt_penalty;
  const double dispatcher_mrps = 1e3 / per_request_ns;
  EXPECT_GT(dispatcher_mrps, 3.5);
  EXPECT_LT(dispatcher_mrps, 5.5);

  // Timer costs are the paper's cycle counts.
  EXPECT_EQ(params.timer_set_cycles, 40);
  EXPECT_EQ(params.timer_receive_cycles, 1272);
  EXPECT_EQ(params.timer_set_cycles_linux, 610);
  EXPECT_EQ(params.timer_receive_cycles_linux, 4193);
}

}  // namespace
}  // namespace nicsched::core
