// The exp layer's three contracts:
//   1. SweepRunner's parallel fan-out is bit-identical to the serial
//      core::run_sweep reference path — every RunSummary field, not just
//      the headline quantiles.
//   2. JSON and CSV exports round-trip every row field losslessly.
//   3. SystemKind's from_string round-trips to_string for every kind.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "exp/exp.h"

namespace nicsched {
namespace {

core::ExperimentConfig small_config() {
  return core::ExperimentConfig::offload()
      .workers(2)
      .outstanding(2)
      .slice(sim::Duration::micros(10))
      .bimodal()
      .samples(2'000)
      .with_seed(7);
}

void expect_summary_identical(const stats::RunSummary& a,
                              const stats::RunSummary& b) {
  EXPECT_EQ(a.offered_rps, b.offered_rps);
  EXPECT_EQ(a.achieved_rps, b.achieved_rps);
  EXPECT_EQ(a.issued, b.issued);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.mean_us, b.mean_us);
  EXPECT_EQ(a.p50_us, b.p50_us);
  EXPECT_EQ(a.p90_us, b.p90_us);
  EXPECT_EQ(a.p99_us, b.p99_us);
  EXPECT_EQ(a.p999_us, b.p999_us);
  EXPECT_EQ(a.max_us, b.max_us);
  EXPECT_EQ(a.preemptions, b.preemptions);
  EXPECT_EQ(a.goodput, b.goodput);
  EXPECT_EQ(a.goodput_rps, b.goodput_rps);
}

void expect_row_identical(const exp::ResultRow& a, const exp::ResultRow& b) {
  EXPECT_EQ(a.series, b.series);
  expect_summary_identical(a.summary, b.summary);
  EXPECT_EQ(a.server.requests_received, b.server.requests_received);
  EXPECT_EQ(a.server.responses_sent, b.server.responses_sent);
  EXPECT_EQ(a.server.preemptions, b.server.preemptions);
  EXPECT_EQ(a.server.spurious_interrupts, b.server.spurious_interrupts);
  EXPECT_EQ(a.server.steals, b.server.steals);
  EXPECT_EQ(a.server.drops, b.server.drops);
  EXPECT_EQ(a.server.queue_max_depth, b.server.queue_max_depth);
  EXPECT_EQ(a.server.worker_utilization, b.server.worker_utilization);
  EXPECT_EQ(a.server.ddio.l1_touches, b.server.ddio.l1_touches);
  EXPECT_EQ(a.server.ddio.llc_touches, b.server.ddio.llc_touches);
  EXPECT_EQ(a.server.ddio.dram_touches, b.server.ddio.dram_touches);
  EXPECT_EQ(a.server.reliability.retransmits, b.server.reliability.retransmits);
  EXPECT_EQ(a.server.reliability.note_retransmits,
            b.server.reliability.note_retransmits);
  EXPECT_EQ(a.server.reliability.timeouts, b.server.reliability.timeouts);
  EXPECT_EQ(a.server.reliability.redispatched,
            b.server.reliability.redispatched);
  EXPECT_EQ(a.server.reliability.abandoned, b.server.reliability.abandoned);
  EXPECT_EQ(a.server.reliability.duplicates, b.server.reliability.duplicates);
  EXPECT_EQ(a.server.reliability.worker_deaths,
            b.server.reliability.worker_deaths);
  EXPECT_EQ(a.server.reliability.revivals, b.server.reliability.revivals);
  EXPECT_EQ(a.server.overload.admitted, b.server.overload.admitted);
  EXPECT_EQ(a.server.overload.rejected, b.server.overload.rejected);
  EXPECT_EQ(a.server.overload.shed_expired, b.server.overload.shed_expired);
  EXPECT_EQ(a.server.overload.k_shrinks, b.server.overload.k_shrinks);
  EXPECT_EQ(a.server.overload.k_restores, b.server.overload.k_restores);
  EXPECT_EQ(a.server.tenants, b.server.tenants);
  EXPECT_EQ(a.mean_worker_utilization, b.mean_worker_utilization);
}

void expect_rack_aggregates_identical(const rack::RackStats& a,
                                      const rack::RackStats& b) {
  EXPECT_EQ(a.requests_forwarded, b.requests_forwarded);
  EXPECT_EQ(a.responses_forwarded, b.responses_forwarded);
  EXPECT_EQ(a.rejects_forwarded, b.rejects_forwarded);
  EXPECT_EQ(a.other_forwarded, b.other_forwarded);
  EXPECT_EQ(a.malformed_dropped, b.malformed_dropped);
  EXPECT_EQ(a.affinity_hits, b.affinity_hits);
  EXPECT_EQ(a.affinity_expired, b.affinity_expired);
  EXPECT_EQ(a.unknown_responses, b.unknown_responses);
  EXPECT_EQ(a.informed_decisions, b.informed_decisions);
  EXPECT_EQ(a.stale_decisions, b.stale_decisions);
  EXPECT_EQ(a.feedback_samples, b.feedback_samples);
  EXPECT_EQ(a.feedback_discarded_dead, b.feedback_discarded_dead);
  EXPECT_EQ(a.hosts.size(), b.hosts.size());
}

exp::ResultRow rack_row() {
  exp::ResultRow row;
  row.series = "rack p2c";
  row.summary.offered_rps = 1.2e6;
  row.summary.completed = 50'000;
  rack::RackStats rack_stats;
  rack_stats.requests_forwarded = 50'100;
  rack_stats.responses_forwarded = 50'000;
  rack_stats.rejects_forwarded = 40;
  rack_stats.other_forwarded = 3;
  rack_stats.malformed_dropped = 1;
  rack_stats.affinity_hits = 27;
  rack_stats.affinity_expired = 4;
  rack_stats.unknown_responses = 2;
  rack_stats.informed_decisions = 49'000;
  rack_stats.stale_decisions = 1'100;
  rack_stats.feedback_samples = 50'000;
  rack_stats.feedback_discarded_dead = 9;
  rack::RackHostStats host;
  host.requests = 12'525;
  host.responses = 12'500;
  host.rejects = 10;
  host.outstanding = 15;
  host.deaths = 1;
  host.revivals = 1;
  host.resets = 2;
  host.feedback_discarded = 9;
  host.sojourn_ewma_us = 7.0 / 3.0;  // non-terminating binary fraction
  host.queue_depth = 6;
  rack::RackTenantStats slice;
  slice.tenant = 3;
  slice.requests = 12'000;
  slice.responses = 11'990;
  slice.rejects = 4;
  slice.outstanding = 6;
  host.tenants = {slice};
  rack_stats.hosts.assign(4, host);
  rack::RackTenantStats total = slice;
  total.requests *= 4;
  total.responses *= 4;
  total.rejects *= 4;
  total.outstanding *= 4;
  rack_stats.tenants = {total};
  row.rack = std::move(rack_stats);
  return row;
}

TEST(SweepRunner, ParallelMatchesSerialBitForBit) {
  const auto base = small_config();
  const auto loads = exp::load_grid(50e3, 250e3, 5);

  // Serial reference: the core primitive, one point at a time.
  std::vector<stats::RunSummary> serial;
  for (const double load : loads) {
    auto config = core::ExperimentConfig(base).load(load);
    serial.push_back(core::run_experiment(config).summary);
  }

  // Forced-parallel runner: more threads than points, so any scheduling or
  // ordering dependence would scramble results even on a 1-CPU host.
  exp::SweepRunner runner(exp::SweepRunner::Options{.threads = 8});
  const auto parallel = runner.run(base, loads);

  ASSERT_EQ(parallel.size(), loads.size());
  for (std::size_t i = 0; i < loads.size(); ++i) {
    SCOPED_TRACE("load index " + std::to_string(i));
    expect_summary_identical(parallel[i].summary, serial[i]);
  }
}

TEST(SweepRunner, RunConfigsKeepsOrderAcrossSystems) {
  std::vector<core::ExperimentConfig> configs;
  configs.push_back(small_config());
  configs.push_back(small_config().on(core::SystemKind::kRss));
  configs.push_back(small_config().on(core::SystemKind::kShinjuku));

  exp::SweepRunner parallel(exp::SweepRunner::Options{.threads = 4});
  exp::SweepRunner serial(exp::SweepRunner::Options{.threads = 1});
  const auto a = parallel.run_configs(configs);
  const auto b = serial.run_configs(configs);

  ASSERT_EQ(a.size(), configs.size());
  ASSERT_EQ(b.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    SCOPED_TRACE("config index " + std::to_string(i));
    expect_summary_identical(a[i].summary, b[i].summary);
  }
}

TEST(SweepRunner, ShardOverrideMatchesSerialAndDividesThePool) {
  // The pool shrinks so points x shards stays at the thread budget...
  exp::SweepRunner sharded(
      exp::SweepRunner::Options{.threads = 8, .shards = 4});
  EXPECT_EQ(sharded.thread_count(), 2u);
  EXPECT_EQ(sharded.shard_count(), 4u);
  exp::SweepRunner starved(
      exp::SweepRunner::Options{.threads = 2, .shards = 4});
  EXPECT_EQ(starved.thread_count(), 1u);  // never below one point at a time

  // ...and the override changes only where the points run, not what they
  // compute: a rack sweep at 4 shards reproduces the serial results.
  const auto base = core::ExperimentConfig::offload()
                        .workers(2)
                        .outstanding(2)
                        .bimodal()
                        .samples(2'000)
                        .with_rack(4)
                        .with_seed(11);
  const auto loads = exp::load_grid(100e3, 200e3, 2);
  exp::SweepRunner serial(exp::SweepRunner::Options{.threads = 1});
  const auto reference = serial.run(base, loads);
  const auto parallel = sharded.run(base, loads);
  ASSERT_EQ(parallel.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    SCOPED_TRACE("load index " + std::to_string(i));
    expect_summary_identical(parallel[i].summary, reference[i].summary);
  }
}

TEST(SweepRunner, RejectsSharedResponseLog) {
  stats::ResponseLog log;
  auto config = small_config();
  config.response_log = &log;
  EXPECT_THROW(exp::SweepRunner().run(config, {100e3}),
               std::invalid_argument);
}

TEST(SweepRunner, MapPreservesItemOrder) {
  const std::vector<int> items = {3, 1, 4, 1, 5, 9, 2, 6};
  exp::SweepRunner runner(exp::SweepRunner::Options{.threads = 8});
  const auto doubled =
      runner.map(items, [](const int value) { return value * 2; });
  ASSERT_EQ(doubled.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(doubled[i], items[i] * 2);
  }
}

exp::ResultRow sample_row() {
  exp::ResultRow row;
  row.series = "shinjuku-offload @ \"test\"";  // exercises string escaping
  row.summary.offered_rps = 123456.789012345;
  row.summary.achieved_rps = 123400.000000123;
  row.summary.issued = 10'000;
  row.summary.completed = 9'999;
  row.summary.mean_us = 17.25;
  row.summary.p50_us = 15.8;
  row.summary.p90_us = 21.0 / 3.0;  // non-terminating binary fraction
  row.summary.p99_us = 29.1;
  row.summary.p999_us = 970.8;
  row.summary.max_us = 1204.2;
  row.summary.preemptions = 3550;
  row.server.requests_received = 10'050;
  row.server.responses_sent = 9'999;
  row.server.preemptions = 3550;
  row.server.spurious_interrupts = 12;
  row.server.steals = 7;
  row.server.drops = 1;
  row.server.queue_max_depth = 42;
  row.server.worker_utilization = {0.91, 0.875, 1.0 / 3.0};
  row.server.ddio.l1_touches = 9'000;
  row.server.ddio.llc_touches = 900;
  row.server.ddio.dram_touches = 150;
  row.server.reliability.retransmits = 31;
  row.server.reliability.note_retransmits = 17;
  row.server.reliability.timeouts = 48;
  row.server.reliability.redispatched = 5;
  row.server.reliability.abandoned = 2;
  row.server.reliability.duplicates = 9;
  row.server.reliability.worker_deaths = 1;
  row.server.reliability.revivals = 1;
  row.summary.goodput = 9'500;
  row.summary.goodput_rps = 95000.000000456;
  row.server.overload.admitted = 10'020;
  row.server.overload.rejected = 30;
  row.server.overload.shed_expired = 11;
  row.server.overload.k_shrinks = 6;
  row.server.overload.k_restores = 4;
  row.mean_worker_utilization = (0.91 + 0.875 + 1.0 / 3.0) / 3.0;
  return row;
}

TEST(ResultSink, JsonRoundTripsAllFields) {
  exp::JsonResultSink sink("unit_test", "Unit test \"figure\"\n2nd line");
  sink.add(sample_row());
  exp::ResultRow second = sample_row();
  second.series = "rss-rtc";
  second.server.worker_utilization.clear();
  sink.add(second);
  sink.add_metric("sat_rps", 4.4e6);
  sink.add_metric("negative", -1.5);
  sink.add_check("shape holds", true);
  sink.add_check("other shape", false);

  std::ostringstream out;
  sink.write(out);

  std::string error;
  const auto parsed = exp::parse_json_results(out.str(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->name, "unit_test");
  EXPECT_EQ(parsed->title, "Unit test \"figure\"\n2nd line");
  EXPECT_EQ(parsed->fast_mode, exp::fast_mode());
  ASSERT_EQ(parsed->rows.size(), 2u);
  expect_row_identical(parsed->rows[0], sample_row());
  EXPECT_EQ(parsed->rows[1].series, "rss-rtc");
  EXPECT_TRUE(parsed->rows[1].server.worker_utilization.empty());
  ASSERT_EQ(parsed->metrics.size(), 2u);
  EXPECT_EQ(parsed->metrics[0].first, "sat_rps");
  EXPECT_EQ(parsed->metrics[0].second, 4.4e6);
  EXPECT_EQ(parsed->metrics[1].second, -1.5);
  ASSERT_EQ(parsed->checks.size(), 2u);
  EXPECT_EQ(parsed->checks[0].label, "shape holds");
  EXPECT_TRUE(parsed->checks[0].pass);
  EXPECT_FALSE(parsed->checks[1].pass);
}

TEST(ResultSink, CsvRoundTripsAllFields) {
  exp::CsvResultSink sink;
  sink.add(sample_row());

  std::ostringstream out;
  sink.write(out);

  std::string error;
  const auto rows = exp::parse_csv_rows(out.str(), &error);
  ASSERT_TRUE(rows.has_value()) << error;
  ASSERT_EQ(rows->size(), 1u);
  expect_row_identical((*rows)[0], sample_row());
}

TEST(ResultSink, JsonRoundTripsRackStats) {
  exp::JsonResultSink sink("rack_test", "rack");
  sink.add(sample_row());  // no rack block
  sink.add(rack_row());

  std::ostringstream out;
  sink.write(out);

  std::string error;
  const auto parsed = exp::parse_json_results(out.str(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_EQ(parsed->rows.size(), 2u);
  EXPECT_FALSE(parsed->rows[0].rack.has_value());
  ASSERT_TRUE(parsed->rows[1].rack.has_value());
  const exp::ResultRow reference = rack_row();
  expect_rack_aggregates_identical(*parsed->rows[1].rack, *reference.rack);
  // JSON is the lossless path: per-host rows survive too.
  ASSERT_EQ(parsed->rows[1].rack->hosts.size(), 4u);
  const rack::RackHostStats& host = parsed->rows[1].rack->hosts[2];
  EXPECT_EQ(host.requests, 12'525u);
  EXPECT_EQ(host.responses, 12'500u);
  EXPECT_EQ(host.rejects, 10u);
  EXPECT_EQ(host.outstanding, 15u);
  EXPECT_EQ(host.deaths, 1u);
  EXPECT_EQ(host.revivals, 1u);
  EXPECT_EQ(host.resets, 2u);
  EXPECT_EQ(host.feedback_discarded, 9u);
  EXPECT_EQ(host.sojourn_ewma_us, 7.0 / 3.0);
  EXPECT_EQ(host.queue_depth, 6u);
  // Per-tenant slices survive JSON at both levels (host and rack-wide).
  ASSERT_EQ(host.tenants.size(), 1u);
  EXPECT_EQ(host.tenants[0].tenant, 3u);
  EXPECT_EQ(host.tenants[0].requests, 12'000u);
  EXPECT_EQ(host.tenants[0].outstanding, 6u);
  ASSERT_EQ(parsed->rows[1].rack->tenants.size(), 1u);
  EXPECT_EQ(parsed->rows[1].rack->tenants[0].requests, 48'000u);
}

TEST(ResultSink, CsvRoundTripsRackAggregates) {
  exp::CsvResultSink sink;
  sink.add(sample_row());  // rack columns all zero
  sink.add(rack_row());

  std::ostringstream out;
  sink.write(out);

  std::string error;
  const auto rows = exp::parse_csv_rows(out.str(), &error);
  ASSERT_TRUE(rows.has_value()) << error;
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_FALSE((*rows)[0].rack.has_value());
  ASSERT_TRUE((*rows)[1].rack.has_value());
  const exp::ResultRow reference = rack_row();
  expect_rack_aggregates_identical(*(*rows)[1].rack, *reference.rack);
}

// Fabricates unversioned legacy lines from current writer output: drops the
// leading schema cell and `trailing` cells off the end of header and row.
std::string fabricate_legacy_csv(const std::string& text, int trailing) {
  auto strip_first_cell = [](std::string line) {
    return line.substr(line.find(',') + 1);
  };
  auto strip_last_cells = [](std::string line, int count) {
    for (int i = 0; i < count; ++i) line.erase(line.rfind(','));
    return line;
  };
  const std::size_t newline = text.find('\n');
  const std::string header = strip_last_cells(
      strip_first_cell(text.substr(0, newline)), trailing);
  const std::string row = strip_last_cells(
      strip_first_cell(text.substr(newline + 1, text.size() - newline - 2)),
      trailing);
  return header + "\n" + row + "\n";
}

TEST(ResultSink, CsvParsesLegacyPreRackRows) {
  // A 39-cell row from a pre-rack export must still parse (rack absent):
  // strip the schema cell plus 14 trailing cells (13 rack + tenants).
  exp::CsvResultSink sink;
  sink.add(sample_row());
  std::ostringstream out;
  sink.write(out);
  const std::string legacy = fabricate_legacy_csv(out.str(), 14);

  std::string error;
  const auto rows = exp::parse_csv_rows(legacy, &error);
  ASSERT_TRUE(rows.has_value()) << error;
  ASSERT_EQ(rows->size(), 1u);
  expect_row_identical((*rows)[0], sample_row());
  EXPECT_FALSE((*rows)[0].rack.has_value());
}

TEST(ResultSink, CsvParsesLegacyRackEraRows) {
  // A 52-cell rack-era row (no schema cell, no tenants cell) still parses.
  exp::CsvResultSink sink;
  sink.add(rack_row());
  std::ostringstream out;
  sink.write(out);
  const std::string legacy = fabricate_legacy_csv(out.str(), 1);

  std::string error;
  const auto rows = exp::parse_csv_rows(legacy, &error);
  ASSERT_TRUE(rows.has_value()) << error;
  ASSERT_EQ(rows->size(), 1u);
  ASSERT_TRUE((*rows)[0].rack.has_value());
  const exp::ResultRow reference = rack_row();
  expect_rack_aggregates_identical(*(*rows)[0].rack, *reference.rack);
}

exp::ResultRow tenant_row() {
  exp::ResultRow row = sample_row();
  row.series = "tenant mix";
  tenant::TenantStats lc;
  lc.id = 1;
  lc.enqueued = 9'000;
  lc.dispatched = 8'990;
  lc.max_depth = 17;
  lc.overload.admitted = 9'100;
  lc.overload.rejected = 100;
  lc.overload.shed_expired = 12;
  tenant::TenantStats be;
  be.id = 7;
  be.enqueued = 480;
  be.dispatched = 475;
  be.max_depth = 233;
  be.overload.admitted = 500;
  be.overload.rejected = 20;
  be.overload.shed_expired = 5;
  row.server.tenants = {lc, be};
  return row;
}

TEST(ResultSink, CsvRoundTripsTenantRows) {
  exp::CsvResultSink sink;
  sink.add(sample_row());  // empty tenants cell
  sink.add(tenant_row());

  std::ostringstream out;
  sink.write(out);

  std::string error;
  const auto rows = exp::parse_csv_rows(out.str(), &error);
  ASSERT_TRUE(rows.has_value()) << error;
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_TRUE((*rows)[0].server.tenants.empty());
  expect_row_identical((*rows)[1], tenant_row());
}

TEST(ResultSink, JsonRoundTripsTenantRows) {
  exp::JsonResultSink sink("tenant_test", "tenants");
  sink.add(sample_row());
  sink.add(tenant_row());

  std::ostringstream out;
  sink.write(out);

  std::string error;
  const auto parsed = exp::parse_json_results(out.str(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_EQ(parsed->rows.size(), 2u);
  EXPECT_TRUE(parsed->rows[0].server.tenants.empty());
  expect_row_identical(parsed->rows[1], tenant_row());
}

TEST(ResultSink, CsvRejectsUnsupportedSchemaVersion) {
  exp::CsvResultSink sink;
  sink.add(sample_row());
  std::ostringstream out;
  sink.write(out);
  std::string text = out.str();
  // Bump the schema cell of the data row to a version this parser predates.
  const std::size_t newline = text.find('\n');
  text = text.substr(0, newline + 1) + "99" +
         text.substr(newline + 1 + 1);  // "3" -> "99"

  std::string error;
  EXPECT_FALSE(exp::parse_csv_rows(text, &error).has_value());
  EXPECT_NE(error.find("unsupported schema"), std::string::npos) << error;
}

TEST(ResultSink, JsonRejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(exp::parse_json_results("{\"rows\": [", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(exp::parse_json_results("not json at all", nullptr)
                   .has_value());
}

TEST(LoadGrid, HandlesDegenerateCounts) {
  EXPECT_TRUE(exp::load_grid(100e3, 200e3, 0).empty());
  EXPECT_TRUE(exp::load_grid(100e3, 200e3, -3).empty());

  // The historical bench helper divided by zero here.
  const auto single = exp::load_grid(100e3, 200e3, 1);
  ASSERT_EQ(single.size(), 1u);
  EXPECT_EQ(single[0], 100e3);

  const auto grid = exp::load_grid(100e3, 300e3, 3);
  ASSERT_EQ(grid.size(), 3u);
  EXPECT_EQ(grid[0], 100e3);
  EXPECT_EQ(grid[1], 200e3);
  EXPECT_EQ(grid[2], 300e3);
}

TEST(SystemKind, FromStringRoundTripsEveryKind) {
  const core::SystemKind kinds[] = {
      core::SystemKind::kShinjuku,     core::SystemKind::kShinjukuOffload,
      core::SystemKind::kRss,          core::SystemKind::kFlowDirector,
      core::SystemKind::kWorkStealing, core::SystemKind::kElasticRss,
      core::SystemKind::kIdealNic,     core::SystemKind::kRpcValet,
  };
  for (const auto kind : kinds) {
    SCOPED_TRACE(core::to_string(kind));
    EXPECT_EQ(core::from_string(core::to_string(kind)), kind);
    const auto maybe = core::try_from_string(core::to_string(kind));
    ASSERT_TRUE(maybe.has_value());
    EXPECT_EQ(*maybe, kind);
  }
  EXPECT_FALSE(core::try_from_string("no-such-system").has_value());
  EXPECT_THROW(core::from_string("no-such-system"), std::invalid_argument);
}

}  // namespace
}  // namespace nicsched
