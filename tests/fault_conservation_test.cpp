// Fault-injection invariant: no request is ever silently lost. Under a
// randomized schedule of ingress loss, link degradation, worker stalls and
// (for reliable dispatch) dispatcher↔worker frame loss, every request a
// client issued must be accounted for exactly once:
//
//   sent == received + ingress_wire_lost + server_drops + abandoned
//
// with the sim fully quiesced (no queued or in-flight work left). The
// wiring is deliberately manual — the test needs the client's sent/
// received/duplicate counters and the switch's per-port loss counters,
// which the run_experiment harness does not expose.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "core/testbed.h"
#include "fault/fault_injector.h"
#include "fault/fault_schedule.h"
#include "net/ethernet_switch.h"
#include "overload/overload.h"
#include "sim/simulator.h"
#include "tenant/tenant.h"
#include "workload/arrival.h"
#include "workload/client.h"

namespace nicsched {
namespace {

sim::TimePoint at_ms(std::int64_t ms) {
  return sim::TimePoint::origin() + sim::Duration::millis(ms);
}

struct Outcome {
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t ingress_lost = 0;  // requests dropped on the server's wire
  core::ServerStats stats;
  core::ServerTelemetry telemetry;
};

/// Builds network + server + one client, installs `schedule` against the
/// server's fault surface, issues load until `issue_until`, and runs the
/// sim to `run_until` (run_until, not run(): a crashed worker's retransmit
/// or slice-check timers may legitimately re-arm forever).
Outcome run_faulted(const core::ExperimentConfig& config,
                    const fault::FaultSchedule& schedule,
                    std::uint64_t client_seed, sim::TimePoint issue_until,
                    sim::TimePoint run_until) {
  sim::Simulator sim;
  core::ClusterBuilder topology(sim);
  topology.switch_latency(config.params.switch_forward_latency);
  topology.add_host(core::HostSpec::from_config(config));
  core::Cluster cluster = topology.build();
  net::EthernetSwitch& network = cluster.client_network();
  core::Server* server = &cluster.server();

  workload::ClientMachine::Config client_config;
  client_config.client_id = 1;
  client_config.mac = net::MacAddress::from_index(1);
  client_config.ip = net::Ipv4Address::from_index(1);
  client_config.server_mac = server->ingress_mac();
  client_config.server_ip = server->ingress_ip();
  client_config.server_port = server->port();
  workload::ClientMachine client(
      sim, network, client_config, config.service,
      std::make_unique<workload::PoissonArrivals>(config.offered_rps),
      sim::Rng(client_seed));

  std::optional<fault::FaultInjector> injector;
  fault::FaultSurface* surface = server->fault_surface();
  EXPECT_NE(surface, nullptr) << server->name();
  if (surface) injector.emplace(sim, *surface, schedule);

  client.start(issue_until);
  sim.run_until(run_until);

  Outcome out;
  out.sent = client.sent();
  out.received = client.received();
  out.duplicates = client.duplicates();
  out.ingress_lost = network.port_stats(server->ingress_mac()).lost;
  out.stats = server->stats(run_until - sim::TimePoint::origin());
  out.telemetry = server->telemetry();
  return out;
}

void expect_conserved(const Outcome& out) {
  // Quiesced: nothing waiting, nothing believed in flight.
  EXPECT_EQ(out.telemetry.queue_depth, 0u);
  EXPECT_EQ(out.telemetry.outstanding, 0u);
  // Every response the server sent reached the client exactly once; extra
  // executions of a re-steered request surface as client-side duplicates.
  EXPECT_EQ(out.stats.responses_sent, out.received + out.duplicates);
  // Every parsed request was answered or explicitly abandoned.
  EXPECT_EQ(out.stats.requests_received,
            out.received + out.stats.reliability.abandoned);
  // The headline identity: issued == answered + accounted-lost.
  EXPECT_EQ(out.sent, out.received + out.ingress_lost + out.stats.drops +
                          out.stats.reliability.abandoned);
}

struct KindCase {
  core::SystemKind kind;
  bool reliable;  // shinjuku kinds exercise DESIGN §9 reliable dispatch
};

TEST(FaultConservation, RandomizedSchedulesConserveEveryRequest) {
  const KindCase cases[] = {
      {core::SystemKind::kShinjuku, true},
      {core::SystemKind::kShinjukuOffload, true},
      {core::SystemKind::kRss, false},
      {core::SystemKind::kIdealNic, false},
      // Reliable dispatch degraded onto the RDMA doorbell/CQ path (§15).
      {core::SystemKind::kRain, true},
  };
  // The smoke tier (NICSCHED_FAST=1) keeps one seed per kind; the full fault
  // tier runs three.
  std::vector<std::uint64_t> seeds = {1, 2, 3};
  if (std::getenv("NICSCHED_FAST") != nullptr) seeds = {1};

  for (const KindCase& c : cases) {
    for (const std::uint64_t seed : seeds) {
      SCOPED_TRACE(std::string(core::to_string(c.kind)) + " seed " +
                   std::to_string(seed));
      auto config = core::ExperimentConfig::of(c.kind)
                        .workers(4)
                        .outstanding(2)
                        .fixed(sim::Duration::micros(2))
                        .load(200e3)
                        .reliable(c.reliable);
      // Faults over [1 ms, 9 ms); randomized stalls are timed (≤ 10 % of
      // the span) so the run quiesces well before the 30 ms horizon. A
      // stall can exceed the 500 µs completion timeout, which is the point:
      // spurious deaths must re-steer without losing or double-counting.
      const auto schedule = fault::FaultSchedule::randomized(
          seed, 4, at_ms(1), at_ms(9), c.reliable);
      const Outcome out =
          run_faulted(config, schedule, seed + 100, at_ms(12), at_ms(30));
      ASSERT_GT(out.sent, 1000u);
      expect_conserved(out);
    }
  }
}

TEST(FaultConservation, OffloadCompletesNearlyAllUnderOnePercentUplinkLoss) {
  // ISSUE acceptance: with 1 % loss on the dispatcher↔worker path, reliable
  // dispatch recovers ≥ 99.9 % of requests via retransmission.
  auto config = core::ExperimentConfig::offload()
                    .workers(4)
                    .outstanding(2)
                    .fixed(sim::Duration::micros(2))
                    .load(200e3)
                    .reliable();
  fault::FaultSchedule schedule;
  schedule.with_seed(7).dispatch_loss(at_ms(0), at_ms(40), 0.01);

  const Outcome out = run_faulted(config, schedule, 7, at_ms(20), at_ms(60));
  ASSERT_GT(out.sent, 3000u);
  EXPECT_EQ(out.ingress_lost, 0u);  // only the dispatch path is lossy
  EXPECT_GE(out.received * 1000, out.sent * 999);
  EXPECT_GT(out.stats.reliability.retransmits +
                out.stats.reliability.note_retransmits,
            0u)
      << "loss never exercised the retransmit path";
  expect_conserved(out);
}

TEST(FaultConservation, OffloadReSteersInFlightWorkOffACrashedWorker) {
  // A worker that crashes and never resumes: its in-flight assignments must
  // be re-steered to the survivor and every request still completes.
  auto config = core::ExperimentConfig::offload()
                    .workers(2)
                    .outstanding(2)
                    .fixed(sim::Duration::micros(10))
                    .load(120e3)
                    .reliable();
  fault::FaultSchedule schedule;
  schedule.crash_worker(at_ms(2), 0);

  const Outcome out = run_faulted(config, schedule, 5, at_ms(8), at_ms(40));
  ASSERT_GT(out.sent, 500u);
  EXPECT_GE(out.stats.reliability.worker_deaths, 1u);
  EXPECT_GE(out.stats.reliability.redispatched, 1u);
  EXPECT_EQ(out.received, out.sent);  // nothing lost despite the crash
  expect_conserved(out);
}

TEST(FaultConservation, ShinjukuLivenessWatchdogReSteersOffACrashedWorker) {
  // Same crash for host Shinjuku: cache-line IPC is lossless, so the only
  // reliable-dispatch machinery in play is the completion-timeout watchdog.
  auto config = core::ExperimentConfig::shinjuku()
                    .workers(2)
                    .fixed(sim::Duration::micros(10))
                    .load(120e3)
                    .reliable();
  fault::FaultSchedule schedule;
  schedule.crash_worker(at_ms(2), 0);

  const Outcome out = run_faulted(config, schedule, 5, at_ms(8), at_ms(40));
  ASSERT_GT(out.sent, 500u);
  EXPECT_GE(out.stats.reliability.worker_deaths, 1u);
  EXPECT_EQ(out.received, out.sent);
  expect_conserved(out);
}

// DESIGN §14: the conservation ledger is shard-count-invariant. A faulted,
// overloaded, multi-tenant rack run must satisfy the client-side identity
//
//   sent == completed + rejected + expired + abandoned + outstanding
//
// at every shard count, per tenant and globally, and the parallel engine's
// ledger must match the serial engine field for field — a shard that lost a
// mailbox flush or double-delivered a cross-shard frame shows up here even
// if latency digests happen to collide.
TEST(FaultConservation, MultiShardRackRunsConserveAndMatchSerial) {
  std::vector<std::uint64_t> seeds = {1, 2, 3};
  if (std::getenv("NICSCHED_FAST") != nullptr) seeds = {1};

  overload::OverloadParams overload;
  overload.enabled = true;
  overload.admission_enabled = true;
  overload.shedding_enabled = true;
  overload.deadline = sim::Duration::micros(300);
  overload.retry_budget = 0;

  for (const std::uint64_t seed : seeds) {
    std::optional<core::ExperimentResult::ClientTotals> serial;
    std::optional<core::ServerStats> serial_server;
    for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
      const std::string label = "seed=" + std::to_string(seed) +
                                " shards=" + std::to_string(shards);
      SCOPED_TRACE(label);
      fault::FaultSchedule schedule;
      schedule.with_seed(seed * 31 + 7)
          .ingress_loss(at_ms(1), at_ms(2), 0.02)
          .stall_worker(at_ms(1), 0, sim::Duration::micros(200));
      auto config = core::ExperimentConfig::offload()
                        .workers(2)
                        .outstanding(2)
                        .load(400e3)
                        .clients(2, 16)
                        .measure_for(sim::Duration::millis(1))
                        .with_seed(seed)
                        .with_rack(4)
                        .with_overload(overload)
                        .with_tenants({
                            tenant::make_tenant(1)
                                .named("gold")
                                .weighted(4.0)
                                .slo_class(tenant::SloClass::kLatencyCritical)
                                .fixed(sim::Duration::micros(4)),
                            tenant::make_tenant(2)
                                .named("batch")
                                .slo_class(tenant::SloClass::kBestEffort)
                                .bimodal(sim::Duration::micros(5),
                                         sim::Duration::micros(100), 0.005),
                        })
                        .with_shards(shards)
                        .with_faults(schedule);
      config.warmup = sim::Duration::millis(1);
      config.drain = sim::Duration::millis(2);

      const auto result = core::run_experiment(config);
      const auto& totals = result.clients;
      ASSERT_GT(totals.sent, 500u);
      EXPECT_EQ(totals.sent, totals.completed + totals.rejected +
                                 totals.expired + totals.abandoned +
                                 totals.outstanding);

      // Per-tenant rows conserve individually and sum to the global ledger.
      ASSERT_EQ(result.tenants.size(), 2u);
      core::ExperimentResult::ClientTotals sum;
      for (const auto& row : result.tenants) {
        EXPECT_EQ(row.clients.sent,
                  row.clients.completed + row.clients.rejected +
                      row.clients.expired + row.clients.abandoned +
                      row.clients.outstanding)
            << "tenant " << row.spec.label();
        sum.sent += row.clients.sent;
        sum.completed += row.clients.completed;
        sum.rejected += row.clients.rejected;
        sum.expired += row.clients.expired;
        sum.abandoned += row.clients.abandoned;
        sum.outstanding += row.clients.outstanding;
      }
      EXPECT_EQ(sum.sent, totals.sent);
      EXPECT_EQ(sum.completed, totals.completed);

      if (!serial) {
        serial = totals;
        serial_server = result.server;
        continue;
      }
      // Field-for-field match with the serial engine.
      EXPECT_EQ(totals.sent, serial->sent);
      EXPECT_EQ(totals.completed, serial->completed);
      EXPECT_EQ(totals.goodput, serial->goodput);
      EXPECT_EQ(totals.rejected, serial->rejected);
      EXPECT_EQ(totals.expired, serial->expired);
      EXPECT_EQ(totals.abandoned, serial->abandoned);
      EXPECT_EQ(totals.outstanding, serial->outstanding);
      EXPECT_EQ(totals.retries, serial->retries);
      EXPECT_EQ(totals.duplicates, serial->duplicates);
      EXPECT_EQ(result.server.requests_received,
                serial_server->requests_received);
      EXPECT_EQ(result.server.responses_sent, serial_server->responses_sent);
      EXPECT_EQ(result.server.drops, serial_server->drops);
      EXPECT_EQ(result.server.overload.rejected,
                serial_server->overload.rejected);
    }
  }
}

TEST(FaultConservation, IngressLossIsChargedToTheWireNotTheServer) {
  // Pure ingress loss on an unreliable system: the gap between sent and
  // received must be exactly the wire's loss counter.
  auto config = core::ExperimentConfig::rss()
                    .workers(4)
                    .fixed(sim::Duration::micros(2))
                    .load(200e3);
  fault::FaultSchedule schedule;
  schedule.with_seed(3).ingress_loss(at_ms(0), at_ms(20), 0.05);

  const Outcome out = run_faulted(config, schedule, 11, at_ms(10), at_ms(30));
  ASSERT_GT(out.sent, 1000u);
  EXPECT_GT(out.ingress_lost, 0u);
  EXPECT_EQ(out.duplicates, 0u);  // no reliability machinery, no re-execution
  expect_conserved(out);
}

}  // namespace
}  // namespace nicsched
