// Determinism under fault injection: the same seed and the same
// FaultSchedule must reproduce a run bit for bit — every response record,
// every span in every request lifecycle, every counter — including when
// frame loss forces the reliable-dispatch machinery to retransmit. And a
// config that installs no schedule must match the plain baseline exactly:
// the fault layer's zero-cost contract.
#include <gtest/gtest.h>

#include <string>

#include "core/testbed.h"
#include "fault/fault_schedule.h"
#include "obs/capture.h"
#include "stats/response_log.h"

namespace nicsched {
namespace {

sim::TimePoint at_ms(std::int64_t ms) {
  return sim::TimePoint::origin() + sim::Duration::millis(ms);
}

/// A small but non-trivial point: bimodal service exercises preemption and
/// requeue paths, spans are captured in memory for comparison.
core::ExperimentConfig base_config(core::SystemKind kind, bool reliable) {
  obs::CaptureOptions capture;
  capture.enabled = true;
  capture.spans = true;
  capture.metric_cadence = sim::Duration::zero();  // spans only
  return core::ExperimentConfig::of(kind)
      .workers(4)
      .outstanding(2)
      .slice(sim::Duration::micros(10))
      .bimodal(sim::Duration::micros(2), sim::Duration::micros(30), 0.05)
      .load(150e3)
      .clients(2, 32)
      .measure_for(sim::Duration::millis(8))
      .with_seed(17)
      .reliable(reliable)
      .with_capture(capture);
}

struct Replay {
  core::ExperimentResult result;
  stats::ResponseLog log;
};

Replay run_once(core::ExperimentConfig config) {
  Replay replay;
  config.response_log = &replay.log;
  replay.result = core::run_experiment(config);
  return replay;
}

void expect_identical(const Replay& a, const Replay& b) {
  // Headline summary.
  EXPECT_EQ(a.result.summary.issued, b.result.summary.issued);
  EXPECT_EQ(a.result.summary.completed, b.result.summary.completed);
  EXPECT_EQ(a.result.summary.mean_us, b.result.summary.mean_us);
  EXPECT_EQ(a.result.summary.p99_us, b.result.summary.p99_us);
  EXPECT_EQ(a.result.summary.max_us, b.result.summary.max_us);
  EXPECT_EQ(a.result.summary.preemptions, b.result.summary.preemptions);

  // Server counters, including the full recovery accounting.
  const core::ServerStats& sa = a.result.server;
  const core::ServerStats& sb = b.result.server;
  EXPECT_EQ(sa.requests_received, sb.requests_received);
  EXPECT_EQ(sa.responses_sent, sb.responses_sent);
  EXPECT_EQ(sa.preemptions, sb.preemptions);
  EXPECT_EQ(sa.drops, sb.drops);
  EXPECT_EQ(sa.queue_max_depth, sb.queue_max_depth);
  EXPECT_EQ(sa.reliability.retransmits, sb.reliability.retransmits);
  EXPECT_EQ(sa.reliability.note_retransmits, sb.reliability.note_retransmits);
  EXPECT_EQ(sa.reliability.timeouts, sb.reliability.timeouts);
  EXPECT_EQ(sa.reliability.redispatched, sb.reliability.redispatched);
  EXPECT_EQ(sa.reliability.abandoned, sb.reliability.abandoned);
  EXPECT_EQ(sa.reliability.duplicates, sb.reliability.duplicates);
  EXPECT_EQ(sa.reliability.worker_deaths, sb.reliability.worker_deaths);
  EXPECT_EQ(sa.reliability.revivals, sb.reliability.revivals);

  // Every in-window response, field for field.
  const auto& ra = a.log.records();
  const auto& rb = b.log.records();
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    ASSERT_EQ(ra[i].request_id, rb[i].request_id) << "record " << i;
    EXPECT_EQ(ra[i].kind, rb[i].kind);
    EXPECT_EQ(ra[i].preempt_count, rb[i].preempt_count);
    EXPECT_EQ(ra[i].sent_at, rb[i].sent_at);
    EXPECT_EQ(ra[i].received_at, rb[i].received_at);
    EXPECT_EQ(ra[i].work, rb[i].work);
  }

  // Every span of every completed lifecycle. A re-steered request that ends
  // up executing twice cannot satisfy the one-open-span tiling invariant —
  // the recorder counts those violations instead of throwing — but the
  // counts themselves must replay exactly.
  ASSERT_NE(a.result.capture, nullptr);
  ASSERT_NE(b.result.capture, nullptr);
  EXPECT_EQ(a.result.capture->spans().violations(),
            b.result.capture->spans().violations());
  EXPECT_EQ(a.result.capture->spans().events_seen(),
            b.result.capture->spans().events_seen());
  const auto la = a.result.capture->spans().completed();
  const auto lb = b.result.capture->spans().completed();
  ASSERT_EQ(la.size(), lb.size());
  for (std::size_t i = 0; i < la.size(); ++i) {
    ASSERT_EQ(la[i].request_id, lb[i].request_id) << "lifecycle " << i;
    ASSERT_EQ(la[i].spans.size(), lb[i].spans.size())
        << "request " << la[i].request_id;
    for (std::size_t s = 0; s < la[i].spans.size(); ++s) {
      EXPECT_EQ(la[i].spans[s].kind, lb[i].spans[s].kind);
      EXPECT_EQ(la[i].spans[s].component, lb[i].spans[s].component);
      EXPECT_EQ(la[i].spans[s].begin, lb[i].spans[s].begin);
      EXPECT_EQ(la[i].spans[s].end, lb[i].spans[s].end);
    }
  }
}

struct KindCase {
  core::SystemKind kind;
  bool reliable;
};

TEST(FaultReplay, SameSeedAndScheduleReplayBitForBit) {
  const KindCase cases[] = {
      {core::SystemKind::kShinjuku, true},
      {core::SystemKind::kShinjukuOffload, true},
      {core::SystemKind::kRss, false},
      {core::SystemKind::kIdealNic, false},
  };
  for (const KindCase& c : cases) {
    SCOPED_TRACE(core::to_string(c.kind));
    // Faults span warmup (5 ms) into the 8 ms measurement window. The
    // offload case also takes randomized dispatch loss, so its replay
    // covers the retransmit/ack machinery.
    auto config = base_config(c.kind, c.reliable);
    config.with_faults(fault::FaultSchedule::randomized(
        21, 4, at_ms(2), at_ms(12), c.reliable));

    const Replay first = run_once(config);
    const Replay second = run_once(config);
    ASSERT_GT(first.log.records().size(), 200u);
    expect_identical(first, second);
  }
}

TEST(FaultReplay, RetransmissionPathReplaysBitForBit) {
  // Force heavy dispatch loss so retransmits, duplicate suppression and
  // (possibly) liveness verdicts all fire — the replay must still be exact.
  auto config = base_config(core::SystemKind::kShinjukuOffload, true);
  fault::FaultSchedule schedule;
  schedule.with_seed(9).dispatch_loss(at_ms(1), at_ms(13), 0.05);
  config.with_faults(schedule);

  const Replay first = run_once(config);
  const Replay second = run_once(config);
  ASSERT_GT(first.result.server.reliability.retransmits +
                first.result.server.reliability.note_retransmits,
            0u)
      << "loss never exercised the retransmit path";
  expect_identical(first, second);
}

TEST(FaultReplay, RetriesWithJitterReplayBitForBit) {
  // Overload-control determinism (DESIGN §11): client retries draw backoff
  // jitter from a dedicated per-client RNG, so a run that loses requests on
  // the ingress wire — forcing timeout retransmissions with jittered
  // backoff — must still replay bit for bit, counter for counter.
  auto config = base_config(core::SystemKind::kShinjukuOffload, false);
  overload::OverloadParams params;
  params.enabled = true;
  params.retry_budget = 3;
  params.retry_jitter = 0.25;
  config.with_overload(params);
  fault::FaultSchedule schedule;
  schedule.with_seed(13).ingress_loss(at_ms(1), at_ms(13), 0.03);
  config.with_faults(schedule);

  const Replay first = run_once(config);
  const Replay second = run_once(config);
  ASSERT_GT(first.result.clients.retries, 0u)
      << "ingress loss never exercised the retry path";
  expect_identical(first, second);

  // The client-side overload accounting replays exactly too.
  const auto& ca = first.result.clients;
  const auto& cb = second.result.clients;
  EXPECT_EQ(ca.sent, cb.sent);
  EXPECT_EQ(ca.completed, cb.completed);
  EXPECT_EQ(ca.goodput, cb.goodput);
  EXPECT_EQ(ca.rejected, cb.rejected);
  EXPECT_EQ(ca.expired, cb.expired);
  EXPECT_EQ(ca.abandoned, cb.abandoned);
  EXPECT_EQ(ca.outstanding, cb.outstanding);
  EXPECT_EQ(ca.retries, cb.retries);
  EXPECT_EQ(ca.duplicates, cb.duplicates);
  EXPECT_EQ(first.result.summary.goodput, second.result.summary.goodput);
  EXPECT_TRUE(first.result.server.overload == second.result.server.overload);
  // At quiescence every issued request is accounted for exactly once.
  EXPECT_EQ(ca.sent, ca.completed + ca.rejected + ca.expired + ca.abandoned +
                         ca.outstanding);
}

/// The ToR failure-handling counters (DESIGN §16), field for field.
void expect_rack_identical(const Replay& a, const Replay& b) {
  ASSERT_TRUE(a.result.rack.has_value());
  ASSERT_TRUE(b.result.rack.has_value());
  const rack::RackStats& ra = *a.result.rack;
  const rack::RackStats& rb = *b.result.rack;
  EXPECT_EQ(ra.requests_forwarded, rb.requests_forwarded);
  EXPECT_EQ(ra.responses_forwarded, rb.responses_forwarded);
  EXPECT_EQ(ra.rejects_forwarded, rb.rejects_forwarded);
  EXPECT_EQ(ra.affinity_hits, rb.affinity_hits);
  EXPECT_EQ(ra.affinity_expired, rb.affinity_expired);
  EXPECT_EQ(ra.unknown_responses, rb.unknown_responses);
  EXPECT_EQ(ra.informed_decisions, rb.informed_decisions);
  EXPECT_EQ(ra.stale_decisions, rb.stale_decisions);
  EXPECT_EQ(ra.feedback_samples, rb.feedback_samples);
  EXPECT_EQ(ra.feedback_discarded_dead, rb.feedback_discarded_dead);
  EXPECT_EQ(ra.probes_sent, rb.probes_sent);
  EXPECT_EQ(ra.probe_acks, rb.probe_acks);
  EXPECT_EQ(ra.probe_deaths, rb.probe_deaths);
  EXPECT_EQ(ra.requests_resteered, rb.requests_resteered);
  EXPECT_EQ(ra.hedges_sent, rb.hedges_sent);
  EXPECT_EQ(ra.hedge_wins, rb.hedge_wins);
  EXPECT_EQ(ra.cancels_sent, rb.cancels_sent);
  EXPECT_EQ(ra.duplicates_suppressed, rb.duplicates_suppressed);
  ASSERT_EQ(ra.hosts.size(), rb.hosts.size());
  for (std::size_t h = 0; h < ra.hosts.size(); ++h) {
    EXPECT_EQ(ra.hosts[h].requests, rb.hosts[h].requests) << "host " << h;
    EXPECT_EQ(ra.hosts[h].responses, rb.hosts[h].responses) << "host " << h;
    EXPECT_EQ(ra.hosts[h].deaths, rb.hosts[h].deaths) << "host " << h;
    EXPECT_EQ(ra.hosts[h].revivals, rb.hosts[h].revivals) << "host " << h;
  }
}

TEST(FaultReplay, FailoverKnobsOffMatchPlainRackBitForBit) {
  // DESIGN §16 zero-cost contract: a rack whose TorParams spell out every
  // failover/hedge knob — probe cadence, hedge trigger, cancel policy — but
  // leave both master switches off must be indistinguishable from a rack
  // that never mentions failure handling. The knobs may gate no event, no
  // probe frame, no stored-request copy, no RNG draw.
  auto plain = base_config(core::SystemKind::kShinjukuOffload, false);
  plain.with_rack(4, rack::TorPolicy::kPowerOfTwo);

  auto spelled = base_config(core::SystemKind::kShinjukuOffload, false);
  spelled.with_rack(4, rack::TorPolicy::kPowerOfTwo);
  rack::TorParams tor;
  tor.policy = rack::TorPolicy::kPowerOfTwo;
  tor.failover = false;
  tor.hedge = false;
  tor.probe_interval = sim::Duration::micros(100);
  tor.probe_timeout = sim::Duration::micros(40);
  tor.hedge_after = sim::Duration::micros(20);
  tor.hedge_cancel = false;
  spelled.rack->tor = tor;

  const Replay a = run_once(plain);
  const Replay b = run_once(spelled);
  ASSERT_GT(a.log.records().size(), 200u);
  expect_identical(a, b);
  expect_rack_identical(a, b);
  // Off means off: the failure-handling machinery never ran at all.
  EXPECT_EQ(b.result.rack->probes_sent, 0u);
  EXPECT_EQ(b.result.rack->hedges_sent, 0u);
  EXPECT_EQ(b.result.rack->requests_resteered, 0u);
  EXPECT_EQ(b.result.rack->duplicates_suppressed, 0u);
  EXPECT_EQ(b.result.server.cancelled, 0u);
}

TEST(FaultReplay, HedgedFailoverRunReplaysBitForBit) {
  // The full §16 machinery at once — probing, a mid-run host crash with
  // drain/re-steer, hedged requests with loser cancellation and duplicate
  // suppression — replayed bit for bit. An aggressive hedge trigger makes
  // sure the hedge path actually fires (the bimodal tail and post-crash
  // backlog leave plenty of requests unanswered after 20 us).
  auto config = base_config(core::SystemKind::kShinjukuOffload, false);
  config.with_rack(4, rack::TorPolicy::kPowerOfTwo);
  rack::TorParams tor;
  tor.policy = rack::TorPolicy::kPowerOfTwo;
  tor.failover = true;
  tor.hedge = true;
  tor.hedge_after = sim::Duration::micros(20);
  config.rack->tor = tor;
  config.with_faults(fault::FaultSchedule{}
                         .crash_host(at_ms(6), 1)
                         .recover_host(at_ms(9), 1));

  const Replay first = run_once(config);
  const Replay second = run_once(config);
  ASSERT_GT(first.result.rack->hedges_sent, 0u)
      << "hedge trigger never fired";
  ASSERT_GE(first.result.rack->hosts.at(1).deaths, 1u)
      << "the crashed host was never declared dead";
  expect_identical(first, second);
  expect_rack_identical(first, second);
}

TEST(FaultReplay, NoScheduleMatchesPlainBaselineBitForBit) {
  // Zero-cost contract: a config that threads the fault machinery but
  // installs nothing (empty schedule, reliability off) is indistinguishable
  // from one that never mentions faults at all.
  for (const auto kind :
       {core::SystemKind::kShinjukuOffload, core::SystemKind::kShinjuku}) {
    SCOPED_TRACE(core::to_string(kind));
    auto plain = base_config(kind, false);
    plain.reliable_dispatch.reset();  // never mentions reliability either

    auto threaded = base_config(kind, false);
    threaded.with_faults(fault::FaultSchedule{});

    const Replay a = run_once(plain);
    const Replay b = run_once(threaded);
    ASSERT_GT(a.log.records().size(), 200u);
    expect_identical(a, b);
    // Without faults every request executes exactly once, so the span
    // traces must be violation-free, not merely equal.
    EXPECT_EQ(a.result.capture->spans().violations(), 0u);
    EXPECT_EQ(b.result.capture->spans().violations(), 0u);
    EXPECT_EQ(b.result.server.reliability.retransmits, 0u);
    EXPECT_EQ(b.result.server.reliability.worker_deaths, 0u);
  }
}

}  // namespace
}  // namespace nicsched
