#include "hw/cpu_core.h"

#include <gtest/gtest.h>

#include <vector>

namespace nicsched::hw {
namespace {

CpuCore::Config host_config() {
  CpuCore::Config config;
  config.name = "test-core";
  config.frequency = sim::Frequency::gigahertz(2.3);
  return config;
}

CpuCore::Config arm_config() {
  CpuCore::Config config = host_config();
  config.time_scale = 2.2;
  return config;
}

TEST(CpuCore, OpsSerializeAtTheirCost) {
  sim::Simulator sim;
  CpuCore core(sim, host_config());
  std::vector<sim::TimePoint> done_at;
  core.run(sim::Duration::nanos(100), [&]() { done_at.push_back(sim.now()); });
  core.run(sim::Duration::nanos(250), [&]() { done_at.push_back(sim.now()); });
  core.run(sim::Duration::nanos(50), [&]() { done_at.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(done_at.size(), 3u);
  EXPECT_EQ(done_at[0], sim::TimePoint::origin() + sim::Duration::nanos(100));
  EXPECT_EQ(done_at[1], sim::TimePoint::origin() + sim::Duration::nanos(350));
  EXPECT_EQ(done_at[2], sim::TimePoint::origin() + sim::Duration::nanos(400));
  EXPECT_EQ(core.stats().ops, 3u);
  EXPECT_EQ(core.stats().busy, sim::Duration::nanos(400));
}

TEST(CpuCore, TimeScaleStretchesCosts) {
  sim::Simulator sim;
  CpuCore core(sim, arm_config());
  sim::TimePoint done;
  core.run(sim::Duration::nanos(100), [&]() { done = sim.now(); });
  sim.run();
  EXPECT_EQ(done, sim::TimePoint::origin() + sim::Duration::nanos(220));
  EXPECT_EQ(core.scale(sim::Duration::nanos(100)), sim::Duration::nanos(220));
}

TEST(CpuCore, CyclesConvertThroughFrequencyAndScale) {
  sim::Simulator sim;
  CpuCore host(sim, host_config());
  // 1272 cycles at 2.3 GHz ≈ 553 ns.
  EXPECT_NEAR(host.cycles(1272).to_nanos(), 553.0, 1.0);
  CpuCore arm(sim, arm_config());
  EXPECT_NEAR(arm.cycles(1272).to_nanos(), 553.0 * 2.2, 3.0);
}

TEST(CpuCore, ZeroCostOpCompletesViaEventNotReentrantly) {
  sim::Simulator sim;
  CpuCore core(sim, host_config());
  bool done = false;
  core.run(sim::Duration::zero(), [&]() { done = true; });
  EXPECT_FALSE(done);  // not run synchronously inside run()
  sim.run();
  EXPECT_TRUE(done);
}

TEST(CpuCore, IdleAndQueueDepthTracking) {
  sim::Simulator sim;
  CpuCore core(sim, host_config());
  EXPECT_TRUE(core.idle());
  core.run(sim::Duration::nanos(100), []() {});
  core.run(sim::Duration::nanos(100), []() {});
  EXPECT_FALSE(core.idle());
  EXPECT_EQ(core.queued_ops(), 1u);  // one running, one queued
  sim.run();
  EXPECT_TRUE(core.idle());
}

TEST(CpuCore, PreemptibleTaskCompletesOnTime) {
  sim::Simulator sim;
  CpuCore core(sim, host_config());
  sim::TimePoint done;
  core.run_preemptible(sim::Duration::micros(5), [&]() { done = sim.now(); });
  EXPECT_TRUE(core.preemptible_running());
  sim.run();
  EXPECT_EQ(done, sim::TimePoint::origin() + sim::Duration::micros(5));
  EXPECT_FALSE(core.preemptible_running());
  EXPECT_EQ(core.stats().tasks_completed, 1u);
}

TEST(CpuCore, InterruptReportsRemainingWork) {
  sim::Simulator sim;
  CpuCore core(sim, host_config());
  bool completed = false;
  core.run_preemptible(sim::Duration::micros(100), [&]() { completed = true; });

  sim::Duration remaining;
  sim::TimePoint handler_done;
  sim.after(sim::Duration::micros(10), [&]() {
    core.interrupt(sim::Duration::nanos(553), [&](sim::Duration left) {
      remaining = left;
      handler_done = sim.now();
    });
  });
  sim.run();
  EXPECT_FALSE(completed);
  EXPECT_EQ(remaining, sim::Duration::micros(90));
  // Handler entry cost occupies the core after the interrupt point.
  EXPECT_EQ(handler_done, sim::TimePoint::origin() + sim::Duration::micros(10) +
                              sim::Duration::nanos(553));
  EXPECT_EQ(core.stats().tasks_interrupted, 1u);
}

TEST(CpuCore, InterruptUnscalesRemainingWorkOnSlowCores) {
  sim::Simulator sim;
  CpuCore core(sim, arm_config());
  core.run_preemptible(sim::Duration::micros(100), []() {});
  // After 110 us of wall time, a 2.2x-slow core has retired 50 us of work.
  sim::Duration remaining;
  sim.after(sim::Duration::micros(110), [&]() {
    core.interrupt(sim::Duration::zero(),
                   [&](sim::Duration left) { remaining = left; });
  });
  sim.run();
  EXPECT_EQ(remaining, sim::Duration::micros(50));
}

TEST(CpuCore, PreemptibleWhileBusyThrows) {
  sim::Simulator sim;
  CpuCore core(sim, host_config());
  core.run(sim::Duration::micros(1), []() {});
  EXPECT_THROW(core.run_preemptible(sim::Duration::micros(1), []() {}),
               std::logic_error);
  sim.run();
  core.run_preemptible(sim::Duration::micros(1), []() {});
  EXPECT_THROW(core.run_preemptible(sim::Duration::micros(1), []() {}),
               std::logic_error);
}

TEST(CpuCore, InterruptWithoutTaskThrows) {
  sim::Simulator sim;
  CpuCore core(sim, host_config());
  EXPECT_THROW(core.interrupt(sim::Duration::zero(), [](sim::Duration) {}),
               std::logic_error);
}

TEST(CpuCore, NegativeCostsRejected) {
  sim::Simulator sim;
  CpuCore core(sim, host_config());
  EXPECT_THROW(core.run(sim::Duration::nanos(-1), []() {}), std::logic_error);
  EXPECT_THROW(core.run_preemptible(sim::Duration::nanos(-1), []() {}),
               std::logic_error);
}

TEST(CpuCore, OpsQueuedBehindPreemptibleTaskRunAfterIt) {
  sim::Simulator sim;
  CpuCore core(sim, host_config());
  std::vector<int> order;
  core.run_preemptible(sim::Duration::micros(2),
                       [&]() { order.push_back(1); });
  // Queue an op while the task runs; it must wait for completion.
  sim.after(sim::Duration::micros(1), [&]() {
    core.run(sim::Duration::nanos(100), [&]() { order.push_back(2); });
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

}  // namespace
}  // namespace nicsched::hw
