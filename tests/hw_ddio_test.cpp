#include "hw/ddio.h"

#include <gtest/gtest.h>

namespace nicsched::hw {
namespace {

TEST(Ddio, DramPolicyAlwaysDram) {
  const CacheCosts costs;
  for (std::uint32_t queued : {0u, 1u, 100u, 10'000u}) {
    EXPECT_EQ(resolve_level(PlacementPolicy::kDram, costs, queued),
              CacheLevel::kDram);
  }
}

TEST(Ddio, LlcPolicyRespectsLlcBudget) {
  const CacheCosts costs;  // llc_budget = 64
  EXPECT_EQ(resolve_level(PlacementPolicy::kDdioLlc, costs, 0),
            CacheLevel::kLlc);
  EXPECT_EQ(resolve_level(PlacementPolicy::kDdioLlc, costs, 63),
            CacheLevel::kLlc);
  EXPECT_EQ(resolve_level(PlacementPolicy::kDdioLlc, costs, 64),
            CacheLevel::kDram);
}

TEST(Ddio, L1PolicyDegradesThroughLevels) {
  const CacheCosts costs;  // l1_budget = 2, llc_budget = 64
  EXPECT_EQ(resolve_level(PlacementPolicy::kDdioL1, costs, 0), CacheLevel::kL1);
  EXPECT_EQ(resolve_level(PlacementPolicy::kDdioL1, costs, 1), CacheLevel::kL1);
  EXPECT_EQ(resolve_level(PlacementPolicy::kDdioL1, costs, 2),
            CacheLevel::kLlc);
  EXPECT_EQ(resolve_level(PlacementPolicy::kDdioL1, costs, 64),
            CacheLevel::kDram);
}

TEST(Ddio, TouchCostMatchesLevelAndRecordsStats) {
  const CacheCosts costs;
  DdioStats stats;
  EXPECT_EQ(payload_touch_cost(PlacementPolicy::kDdioL1, costs, 0, stats),
            costs.l1_touch);
  EXPECT_EQ(payload_touch_cost(PlacementPolicy::kDdioL1, costs, 10, stats),
            costs.llc_touch);
  EXPECT_EQ(payload_touch_cost(PlacementPolicy::kDdioL1, costs, 100, stats),
            costs.dram_touch);
  EXPECT_EQ(stats.l1_touches, 1u);
  EXPECT_EQ(stats.llc_touches, 1u);
  EXPECT_EQ(stats.dram_touches, 1u);
  EXPECT_EQ(stats.total(), 3u);
  EXPECT_NEAR(stats.l1_fraction(), 1.0 / 3.0, 1e-9);
}

TEST(Ddio, CostOrderingIsPhysical) {
  const CacheCosts costs;
  EXPECT_LT(costs.l1_touch, costs.llc_touch);
  EXPECT_LT(costs.llc_touch, costs.dram_touch);
}

TEST(Ddio, Names) {
  EXPECT_STREQ(to_string(PlacementPolicy::kDdioL1), "ddio-l1");
  EXPECT_STREQ(to_string(CacheLevel::kDram), "DRAM");
}

class DdioBudgetSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(DdioBudgetSweep, LevelIsMonotoneInQueueDepth) {
  CacheCosts costs;
  costs.l1_budget = GetParam();
  costs.llc_budget = GetParam() * 8;
  auto rank = [](CacheLevel level) {
    return level == CacheLevel::kL1 ? 0 : level == CacheLevel::kLlc ? 1 : 2;
  };
  int previous = 0;
  for (std::uint32_t queued = 0; queued < costs.llc_budget + 4; ++queued) {
    const int current =
        rank(resolve_level(PlacementPolicy::kDdioL1, costs, queued));
    EXPECT_GE(current, previous) << "queued=" << queued;
    previous = current;
  }
}

INSTANTIATE_TEST_SUITE_P(Budgets, DdioBudgetSweep,
                         ::testing::Values(1, 2, 4, 16));

}  // namespace
}  // namespace nicsched::hw
