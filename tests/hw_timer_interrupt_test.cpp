// APIC timer, interrupt line, and message channel behaviour.
#include <gtest/gtest.h>

#include "hw/apic_timer.h"
#include "hw/channel.h"
#include "hw/cpu_core.h"
#include "hw/interrupt.h"

namespace nicsched::hw {
namespace {

CpuCore::Config core_config() {
  CpuCore::Config config;
  config.frequency = sim::Frequency::gigahertz(2.3);
  return config;
}

TEST(TimerCosts, PaperReportedValues) {
  EXPECT_EQ(TimerCosts::dune().set_cycles, 40);
  EXPECT_EQ(TimerCosts::dune().receive_cycles, 1272);
  EXPECT_EQ(TimerCosts::linux_signal().set_cycles, 610);
  EXPECT_EQ(TimerCosts::linux_signal().receive_cycles, 4193);
  // The paper's reductions: 93 % on set, 70 % on receive.
  EXPECT_NEAR(1.0 - 40.0 / 610.0, 0.93, 0.005);
  EXPECT_NEAR(1.0 - 1272.0 / 4193.0, 0.70, 0.005);
}

TEST(ApicTimer, FiresAndPreemptsRunningTask) {
  sim::Simulator sim;
  CpuCore core(sim, core_config());
  ApicTimer timer(sim, core, TimerCosts::dune());

  bool completed = false;
  sim::Duration remaining;
  core.run_preemptible(sim::Duration::micros(100),
                       [&]() { completed = true; });
  timer.arm(sim::Duration::micros(10),
            [&](sim::Duration left) { remaining = left; });
  sim.run();

  EXPECT_FALSE(completed);
  EXPECT_EQ(remaining, sim::Duration::micros(90));
  EXPECT_EQ(timer.fired_count(), 1u);
  EXPECT_EQ(timer.spurious_count(), 0u);
}

TEST(ApicTimer, CancelPreventsExpiry) {
  sim::Simulator sim;
  CpuCore core(sim, core_config());
  ApicTimer timer(sim, core, TimerCosts::dune());

  bool completed = false;
  bool preempted = false;
  core.run_preemptible(sim::Duration::micros(5), [&]() {
    completed = true;
    timer.cancel();
  });
  timer.arm(sim::Duration::micros(10),
            [&](sim::Duration) { preempted = true; });
  EXPECT_TRUE(timer.armed());
  sim.run();

  EXPECT_TRUE(completed);
  EXPECT_FALSE(preempted);
  EXPECT_FALSE(timer.armed());
}

TEST(ApicTimer, ExpiryWithIdleCoreIsSpurious) {
  // The §3.4.4 hazard: the task finishes before the timer fires and nobody
  // cancels. The handler finds nothing running.
  sim::Simulator sim;
  CpuCore core(sim, core_config());
  ApicTimer timer(sim, core, TimerCosts::dune());

  bool preempted = false;
  core.run_preemptible(sim::Duration::micros(2), []() {});
  timer.arm(sim::Duration::micros(10),
            [&](sim::Duration) { preempted = true; });
  sim.run();
  EXPECT_FALSE(preempted);
  EXPECT_EQ(timer.spurious_count(), 1u);
}

TEST(ApicTimer, RearmCancelsPreviousTimer) {
  sim::Simulator sim;
  CpuCore core(sim, core_config());
  ApicTimer timer(sim, core, TimerCosts::dune());

  int fired_early = 0;
  int fired_late = 0;
  core.run_preemptible(sim::Duration::micros(100), []() {});
  timer.arm(sim::Duration::micros(5), [&](sim::Duration) { ++fired_early; });
  timer.arm(sim::Duration::micros(20), [&](sim::Duration) { ++fired_late; });
  sim.run();
  EXPECT_EQ(fired_early, 0);
  EXPECT_EQ(fired_late, 1);
}

TEST(ApicTimer, CostsComeFromCycleCounts) {
  sim::Simulator sim;
  CpuCore core(sim, core_config());
  ApicTimer dune(sim, core, TimerCosts::dune());
  ApicTimer linux_timer(sim, core, TimerCosts::linux_signal());
  EXPECT_NEAR(dune.set_cost().to_nanos(), 17.4, 0.2);
  EXPECT_NEAR(dune.receive_cost().to_nanos(), 553.0, 1.0);
  EXPECT_NEAR(linux_timer.set_cost().to_nanos(), 265.2, 1.0);
  EXPECT_NEAR(linux_timer.receive_cost().to_nanos(), 1823.0, 2.0);
}

TEST(ApicTimer, PreemptionPointIncludesReceiveCost) {
  sim::Simulator sim;
  CpuCore core(sim, core_config());
  ApicTimer timer(sim, core, TimerCosts::dune());

  sim::TimePoint handler_at;
  core.run_preemptible(sim::Duration::micros(100), []() {});
  timer.arm(sim::Duration::micros(10),
            [&](sim::Duration) { handler_at = sim.now(); });
  sim.run();
  EXPECT_EQ(handler_at, sim::TimePoint::origin() + sim::Duration::micros(10) +
                            core.cycles(1272));
}

TEST(InterruptLine, DeliversAfterLatency) {
  sim::Simulator sim;
  CpuCore core(sim, core_config());
  InterruptLine line(sim, core,
                     InterruptLine::Config{sim::Duration::nanos(300), 1272});

  core.run_preemptible(sim::Duration::micros(50), []() {});
  sim::Duration remaining;
  sim.after(sim::Duration::micros(10),
            [&]() { line.send([&](sim::Duration left) { remaining = left; }); });
  sim.run();
  // Interrupt lands at 10 us + 300 ns; ~10.3 us of work retired.
  EXPECT_EQ(remaining, sim::Duration::micros(50) - sim::Duration::micros(10) -
                           sim::Duration::nanos(300));
  EXPECT_EQ(line.delivered_count(), 1u);
}

TEST(InterruptLine, SpuriousWhenTargetFinishedDuringDelivery) {
  sim::Simulator sim;
  CpuCore core(sim, core_config());
  InterruptLine line(sim, core,
                     InterruptLine::Config{sim::Duration::nanos(300), 1272});

  core.run_preemptible(sim::Duration::micros(10), []() {});
  bool delivered = false;
  bool spurious = false;
  // Send so that delivery lands just after the task completes.
  sim.after(sim::Duration::micros(10) - sim::Duration::nanos(100), [&]() {
    line.send([&](sim::Duration) { delivered = true; },
              [&]() { spurious = true; });
  });
  sim.run();
  EXPECT_FALSE(delivered);
  EXPECT_TRUE(spurious);
  EXPECT_EQ(line.spurious_count(), 1u);
}

TEST(MessageChannel, VisibilityLatencyAndFifo) {
  sim::Simulator sim;
  MessageChannel<int> channel(sim, sim::Duration::nanos(150));
  std::vector<std::pair<sim::TimePoint, int>> received;
  channel.set_on_message([&]() {
    while (auto message = channel.pop()) {
      received.emplace_back(sim.now(), *message);
    }
  });
  channel.send(1);
  channel.send(2);
  sim.after(sim::Duration::nanos(50), [&]() { channel.send(3); });
  sim.run();

  ASSERT_EQ(received.size(), 3u);
  EXPECT_EQ(received[0],
            std::make_pair(sim::TimePoint::origin() + sim::Duration::nanos(150), 1));
  EXPECT_EQ(received[1].second, 2);
  EXPECT_EQ(received[2],
            std::make_pair(sim::TimePoint::origin() + sim::Duration::nanos(200), 3));
  EXPECT_EQ(channel.stats().sent, 3u);
  EXPECT_EQ(channel.stats().received, 3u);
}

TEST(MessageChannel, PopOnEmptyReturnsNullopt) {
  sim::Simulator sim;
  MessageChannel<int> channel(sim, sim::Duration::nanos(150));
  EXPECT_FALSE(channel.pop().has_value());
  channel.send(42);
  // Not yet visible.
  EXPECT_TRUE(channel.empty());
  sim.run();
  EXPECT_EQ(channel.depth(), 1u);
  EXPECT_EQ(channel.pop(), 42);
}

}  // namespace
}  // namespace nicsched::hw
