#include <gtest/gtest.h>

#include <set>

#include "net/ipv4_address.h"
#include "net/mac_address.h"

namespace nicsched::net {
namespace {

TEST(MacAddress, ParseFormatsRoundTrip) {
  const auto mac = MacAddress::parse("02:1a:ff:00:9b:7c");
  ASSERT_TRUE(mac.has_value());
  EXPECT_EQ(mac->to_string(), "02:1a:ff:00:9b:7c");
  EXPECT_EQ(MacAddress::parse(mac->to_string()), *mac);
}

TEST(MacAddress, ParseAcceptsUppercase) {
  const auto mac = MacAddress::parse("AA:BB:CC:DD:EE:FF");
  ASSERT_TRUE(mac.has_value());
  EXPECT_EQ(mac->to_string(), "aa:bb:cc:dd:ee:ff");
}

TEST(MacAddress, ParseRejectsMalformedInput) {
  EXPECT_FALSE(MacAddress::parse("").has_value());
  EXPECT_FALSE(MacAddress::parse("02:1a:ff:00:9b").has_value());
  EXPECT_FALSE(MacAddress::parse("02:1a:ff:00:9b:7c:00").has_value());
  EXPECT_FALSE(MacAddress::parse("02-1a-ff-00-9b-7c").has_value());
  EXPECT_FALSE(MacAddress::parse("0g:1a:ff:00:9b:7c").has_value());
  EXPECT_FALSE(MacAddress::parse("021aff009b7c").has_value());
}

TEST(MacAddress, BroadcastAndMulticastBits) {
  EXPECT_TRUE(MacAddress::broadcast().is_broadcast());
  EXPECT_TRUE(MacAddress::broadcast().is_multicast());
  const auto unicast = MacAddress::from_index(5);
  EXPECT_FALSE(unicast.is_broadcast());
  EXPECT_FALSE(unicast.is_multicast());
  const auto multicast = MacAddress::parse("01:00:5e:00:00:01");
  ASSERT_TRUE(multicast.has_value());
  EXPECT_TRUE(multicast->is_multicast());
}

TEST(MacAddress, FromIndexIsUniqueAndLocallyAdministered) {
  std::set<MacAddress> macs;
  for (std::uint32_t i = 0; i < 10'000; ++i) {
    const auto mac = MacAddress::from_index(i);
    EXPECT_EQ(mac.octets()[0], 0x02);
    macs.insert(mac);
  }
  EXPECT_EQ(macs.size(), 10'000u);
}

TEST(MacAddress, HashDistinguishes) {
  const std::hash<MacAddress> hasher;
  EXPECT_NE(hasher(MacAddress::from_index(1)),
            hasher(MacAddress::from_index(2)));
}

TEST(Ipv4Address, ParseFormatsRoundTrip) {
  const auto ip = Ipv4Address::parse("192.168.1.200");
  ASSERT_TRUE(ip.has_value());
  EXPECT_EQ(ip->to_string(), "192.168.1.200");
  EXPECT_EQ(ip->octets(), (std::array<std::uint8_t, 4>{192, 168, 1, 200}));
  EXPECT_EQ(ip->bits(), 0xC0A801C8u);
}

TEST(Ipv4Address, ParseRejectsMalformedInput) {
  EXPECT_FALSE(Ipv4Address::parse("").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1.2.3").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.256").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.").has_value());
  EXPECT_FALSE(Ipv4Address::parse(".1.2.3").has_value());
  EXPECT_FALSE(Ipv4Address::parse("a.b.c.d").has_value());
}

TEST(Ipv4Address, OctetConstructorMatchesBits) {
  const Ipv4Address ip(10, 0, 1, 2);
  EXPECT_EQ(ip.bits(), 0x0A000102u);
  EXPECT_EQ(Ipv4Address(0x0A000102u), ip);
}

TEST(Ipv4Address, FromIndexStaysInTenSlashEight) {
  for (std::uint32_t i : {0u, 1u, 255u, 70'000u}) {
    EXPECT_EQ(Ipv4Address::from_index(i).octets()[0], 10);
  }
  EXPECT_NE(Ipv4Address::from_index(1), Ipv4Address::from_index(2));
}

}  // namespace
}  // namespace nicsched::net
