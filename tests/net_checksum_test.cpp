#include "net/checksum.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/random.h"

namespace nicsched::net {
namespace {

TEST(InternetChecksum, Rfc1071WorkedExample) {
  // The classic worked example from RFC 1071 §3: data 00 01 f2 03 f4 f5 f6 f7
  // sums to 0xddf2 (with carry folded), so the checksum is ~0xddf2 = 0x220d.
  const std::vector<std::uint8_t> data = {0x00, 0x01, 0xf2, 0x03,
                                          0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(InternetChecksum, OddLengthPadsWithZero) {
  const std::vector<std::uint8_t> even = {0x12, 0x34, 0x56, 0x00};
  const std::vector<std::uint8_t> odd = {0x12, 0x34, 0x56};
  EXPECT_EQ(internet_checksum(even), internet_checksum(odd));
}

TEST(InternetChecksum, MessageWithInsertedChecksumVerifiesToZero) {
  sim::Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint8_t> data(2 * (2 + rng.uniform_int(1, 40)), 0);
    for (auto& byte : data) {
      byte = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    data[2] = 0;
    data[3] = 0;
    const std::uint16_t checksum = internet_checksum(data);
    data[2] = static_cast<std::uint8_t>(checksum >> 8);
    data[3] = static_cast<std::uint8_t>(checksum);
    EXPECT_EQ(internet_checksum(data), 0);
  }
}

TEST(InternetChecksum, IncrementalMatchesOneShot) {
  const std::vector<std::uint8_t> part1 = {0xde, 0xad, 0xbe, 0xef};
  const std::vector<std::uint8_t> part2 = {0x01, 0x02, 0x03, 0x04};
  std::vector<std::uint8_t> all = part1;
  all.insert(all.end(), part2.begin(), part2.end());

  InternetChecksum incremental;
  incremental.add(part1);
  incremental.add(part2);
  EXPECT_EQ(incremental.finish(), internet_checksum(all));
}

TEST(InternetChecksum, AddU16AndU32MatchByteFeeds) {
  InternetChecksum by_words;
  by_words.add_u32(0xC0A80101u);
  by_words.add_u16(0x1234);

  InternetChecksum by_bytes;
  const std::vector<std::uint8_t> bytes = {0xC0, 0xA8, 0x01, 0x01, 0x12, 0x34};
  by_bytes.add(bytes);
  EXPECT_EQ(by_words.finish(), by_bytes.finish());
}

TEST(UdpChecksum, ZeroResultTransmitsAsAllOnes) {
  // Construct a segment whose checksum would come out 0 and confirm the
  // RFC 768 substitution. Easiest: compute any segment, then adjust.
  // Instead verify the rule indirectly: udp_checksum never returns 0.
  sim::Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> segment(8 + rng.uniform_int(0, 64), 0);
    for (auto& byte : segment) {
      byte = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    segment[6] = 0;  // checksum field
    segment[7] = 0;
    const std::uint16_t checksum =
        udp_checksum(Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2),
                     segment);
    EXPECT_NE(checksum, 0);
  }
}

TEST(UdpChecksum, VerifiesWithPseudoHeader) {
  const Ipv4Address src(10, 0, 0, 1);
  const Ipv4Address dst(10, 0, 0, 9);
  std::vector<std::uint8_t> segment = {
      0x1f, 0x90, 0x1f, 0x91,  // ports 8080 -> 8081
      0x00, 0x0c,              // length 12
      0x00, 0x00,              // checksum placeholder
      0xde, 0xad, 0xbe, 0xef,  // payload
  };
  const std::uint16_t checksum = udp_checksum(src, dst, segment);
  segment[6] = static_cast<std::uint8_t>(checksum >> 8);
  segment[7] = static_cast<std::uint8_t>(checksum);

  InternetChecksum verify;
  verify.add_u32(src.bits());
  verify.add_u32(dst.bits());
  verify.add_u16(17);
  verify.add_u16(static_cast<std::uint16_t>(segment.size()));
  verify.add(segment);
  EXPECT_EQ(verify.finish(), 0);
}

}  // namespace
}  // namespace nicsched::net
