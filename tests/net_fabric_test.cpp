// Wire, switch, and NIC behaviour: timing, steering, drops, batching.
#include <gtest/gtest.h>

#include <vector>

#include "net/ethernet_switch.h"
#include "net/nic.h"
#include "net/wire.h"
#include "sim/simulator.h"

namespace nicsched::net {
namespace {

/// Collects delivered packets with their arrival times.
class SinkSpy : public PacketSink {
 public:
  explicit SinkSpy(sim::Simulator& sim) : sim_(sim) {}

  void deliver(Packet packet) override {
    arrivals.emplace_back(sim_.now(), std::move(packet));
  }

  std::vector<std::pair<sim::TimePoint, Packet>> arrivals;

 private:
  sim::Simulator& sim_;
};

DatagramAddress address_between(std::uint32_t src, std::uint32_t dst) {
  DatagramAddress address;
  address.src_mac = MacAddress::from_index(src);
  address.dst_mac = MacAddress::from_index(dst);
  address.src_ip = Ipv4Address::from_index(src);
  address.dst_ip = Ipv4Address::from_index(dst);
  address.src_port = 1000;
  address.dst_port = 2000;
  return address;
}

Packet frame_to(std::uint32_t dst, std::size_t payload = 0) {
  return make_udp_datagram(address_between(900, dst),
                           std::vector<std::uint8_t>(payload, 0));
}

TEST(Wire, DeliveryTimeIsSerializationPlusLatency) {
  sim::Simulator sim;
  SinkSpy sink(sim);
  // 10 Gb/s, 2 us propagation.
  Wire wire(sim, sink, sim::Duration::micros(2), 10.0);

  const Packet packet = frame_to(1);  // 42-byte frame → 64+20 wire bytes
  const sim::Duration serialization =
      wire.serialization_delay(packet.wire_size());
  EXPECT_EQ(serialization, sim::Duration::nanos(84.0 * 8.0 / 10.0));

  wire.transmit(packet);
  sim.run();
  ASSERT_EQ(sink.arrivals.size(), 1u);
  EXPECT_EQ(sink.arrivals[0].first,
            sim::TimePoint::origin() + serialization + sim::Duration::micros(2));
}

TEST(Wire, BackToBackFramesSerializeInFifoOrder) {
  sim::Simulator sim;
  SinkSpy sink(sim);
  Wire wire(sim, sink, sim::Duration::micros(1), 10.0);

  const Packet a = frame_to(1, 1000);  // ~1062B frame → 1082 wire bytes
  const Packet b = frame_to(1);
  const sim::Duration ser_a = wire.serialization_delay(a.wire_size());
  const sim::Duration ser_b = wire.serialization_delay(b.wire_size());
  wire.transmit(a);
  wire.transmit(b);
  sim.run();

  ASSERT_EQ(sink.arrivals.size(), 2u);
  // First frame: ser_a + latency. Second waits for the port: ser_a + ser_b +
  // latency.
  EXPECT_EQ(sink.arrivals[0].first,
            sim::TimePoint::origin() + ser_a + sim::Duration::micros(1));
  EXPECT_EQ(sink.arrivals[1].first,
            sim::TimePoint::origin() + ser_a + ser_b + sim::Duration::micros(1));
  EXPECT_EQ(wire.stats().packets, 2u);
  EXPECT_EQ(wire.stats().bytes, a.size() + b.size());
}

TEST(EthernetSwitch, ForwardsByDestinationMac) {
  sim::Simulator sim;
  EthernetSwitch ethernet_switch(sim, sim::Duration::nanos(100));
  SinkSpy left(sim), right(sim);
  ethernet_switch.attach(MacAddress::from_index(1), left,
                         sim::Duration::nanos(50), 10.0);
  ethernet_switch.attach(MacAddress::from_index(2), right,
                         sim::Duration::nanos(50), 10.0);

  ethernet_switch.ingress().deliver(frame_to(2));
  sim.run();
  EXPECT_EQ(left.arrivals.size(), 0u);
  EXPECT_EQ(right.arrivals.size(), 1u);
  EXPECT_EQ(ethernet_switch.stats().forwarded, 1u);
}

TEST(EthernetSwitch, DropsUnknownMac) {
  sim::Simulator sim;
  EthernetSwitch ethernet_switch(sim, sim::Duration::nanos(100));
  SinkSpy sink(sim);
  ethernet_switch.attach(MacAddress::from_index(1), sink,
                         sim::Duration::nanos(50), 10.0);
  ethernet_switch.ingress().deliver(frame_to(99));
  sim.run();
  EXPECT_EQ(sink.arrivals.size(), 0u);
  EXPECT_EQ(ethernet_switch.stats().dropped_unknown, 1u);
}

TEST(EthernetSwitch, BroadcastFloodsAllPorts) {
  sim::Simulator sim;
  EthernetSwitch ethernet_switch(sim, sim::Duration::zero());
  SinkSpy a(sim), b(sim), c(sim);
  ethernet_switch.attach(MacAddress::from_index(1), a, sim::Duration::zero(), 10.0);
  ethernet_switch.attach(MacAddress::from_index(2), b, sim::Duration::zero(), 10.0);
  ethernet_switch.attach(MacAddress::from_index(3), c, sim::Duration::zero(), 10.0);

  DatagramAddress address = address_between(900, 901);
  address.dst_mac = MacAddress::broadcast();
  ethernet_switch.ingress().deliver(make_udp_datagram(address, {}));
  sim.run();
  EXPECT_EQ(a.arrivals.size(), 1u);
  EXPECT_EQ(b.arrivals.size(), 1u);
  EXPECT_EQ(c.arrivals.size(), 1u);
  EXPECT_EQ(ethernet_switch.stats().flooded, 1u);
}

TEST(EthernetSwitch, DuplicateMacAttachThrows) {
  sim::Simulator sim;
  EthernetSwitch ethernet_switch(sim, sim::Duration::zero());
  SinkSpy sink(sim);
  ethernet_switch.attach(MacAddress::from_index(1), sink,
                         sim::Duration::zero(), 10.0);
  EXPECT_THROW(ethernet_switch.attach(MacAddress::from_index(1), sink,
                                      sim::Duration::zero(), 10.0),
               std::logic_error);
}

class NicFixture : public ::testing::Test {
 protected:
  NicFixture() : nic_(sim_, nic_config()) {}

  static Nic::Config nic_config() {
    Nic::Config config;
    config.rx_latency = sim::Duration::nanos(600);
    config.tx_latency = sim::Duration::zero();
    config.ring_capacity = 4;
    return config;
  }

  sim::Simulator sim_;
  Nic nic_;
};

TEST_F(NicFixture, SteersToInterfaceByMacWithRxLatency) {
  auto& a = nic_.add_interface("a", MacAddress::from_index(10),
                               Ipv4Address::from_index(10));
  auto& b = nic_.add_interface("b", MacAddress::from_index(11),
                               Ipv4Address::from_index(11));

  sim::TimePoint arrival;
  a.ring(0).set_on_packet([&]() { arrival = sim_.now(); });

  nic_.deliver(frame_to(10));
  sim_.run();
  EXPECT_EQ(a.ring(0).depth(), 1u);
  EXPECT_EQ(b.ring(0).depth(), 0u);
  EXPECT_EQ(arrival, sim::TimePoint::origin() + sim::Duration::nanos(600));
}

TEST_F(NicFixture, UnknownMacIsCountedDropped) {
  nic_.add_interface("a", MacAddress::from_index(10),
                     Ipv4Address::from_index(10));
  nic_.deliver(frame_to(66));
  sim_.run();
  EXPECT_EQ(nic_.rx_unknown_mac_drops(), 1u);
}

TEST_F(NicFixture, RingOverflowDrops) {
  auto& iface = nic_.add_interface("a", MacAddress::from_index(10),
                                   Ipv4Address::from_index(10));
  for (int i = 0; i < 6; ++i) nic_.deliver(frame_to(10));
  sim_.run();
  EXPECT_EQ(iface.ring(0).depth(), 4u);  // capacity 4
  EXPECT_EQ(iface.ring(0).stats().dropped, 2u);
}

TEST_F(NicFixture, RssSpreadsFlowsAcrossRings) {
  auto& iface = nic_.add_interface("a", MacAddress::from_index(10),
                                   Ipv4Address::from_index(10), 4);
  iface.use_rss();
  for (std::uint16_t port = 0; port < 400; ++port) {
    DatagramAddress address = address_between(900, 10);
    address.src_port = static_cast<std::uint16_t>(30000 + port);
    nic_.deliver(make_udp_datagram(address, {}));
  }
  sim_.run();
  std::size_t populated = 0;
  std::uint64_t total = 0;
  for (std::size_t ring = 0; ring < 4; ++ring) {
    const auto& stats = iface.ring(ring).stats();
    total += stats.enqueued + stats.dropped;
    if (stats.enqueued > 0) ++populated;
  }
  EXPECT_EQ(populated, 4u);
  EXPECT_EQ(total, 400u);
}

TEST_F(NicFixture, FlowDirectorPortRulesSteerDeterministically) {
  auto& iface = nic_.add_interface("a", MacAddress::from_index(10),
                                   Ipv4Address::from_index(10), 4);
  iface.use_flow_director();
  for (std::uint32_t partition = 0; partition < 4; ++partition) {
    iface.flow_director().add_dst_port_rule(
        static_cast<std::uint16_t>(8080 + partition), partition);
  }
  for (std::uint32_t partition = 0; partition < 4; ++partition) {
    DatagramAddress address = address_between(900, 10);
    address.dst_port = static_cast<std::uint16_t>(8080 + partition);
    nic_.deliver(make_udp_datagram(address, {}));
    nic_.deliver(make_udp_datagram(address, {}));
  }
  sim_.run();
  for (std::size_t ring = 0; ring < 4; ++ring) {
    EXPECT_EQ(iface.ring(ring).stats().enqueued, 2u) << "ring " << ring;
  }
}

TEST(NicBatching, FlushOnCountAndTimeout) {
  sim::Simulator sim;
  Nic::Config config;
  config.rx_latency = sim::Duration::zero();
  config.tx_latency = sim::Duration::zero();
  Nic nic(sim, config);
  auto& iface = nic.add_interface("a", MacAddress::from_index(10),
                                  Ipv4Address::from_index(10));
  SinkSpy network(sim);
  nic.connect_uplink(network, sim::Duration::zero(), 10.0);
  iface.enable_tx_batching(3, sim::Duration::micros(8));

  // Two frames: below the batch size, flushed by the 8 us timeout.
  iface.transmit(frame_to(1));
  iface.transmit(frame_to(1));
  sim.run();
  EXPECT_EQ(network.arrivals.size(), 2u);
  EXPECT_EQ(iface.tx_batches_flushed(), 1u);
  EXPECT_GE(network.arrivals[0].first,
            sim::TimePoint::origin() + sim::Duration::micros(8));

  // Three frames: flushed immediately by count.
  const sim::TimePoint start = sim.now();
  iface.transmit(frame_to(1));
  iface.transmit(frame_to(1));
  iface.transmit(frame_to(1));
  sim.run();
  EXPECT_EQ(network.arrivals.size(), 5u);
  EXPECT_EQ(iface.tx_batches_flushed(), 2u);
  // Flush happened at `start` (plus wire serialization only).
  EXPECT_LT(network.arrivals[4].first, start + sim::Duration::micros(2));
}

TEST(NicBatching, WithoutBatchingFramesLeaveImmediately) {
  sim::Simulator sim;
  Nic::Config config;
  config.rx_latency = sim::Duration::zero();
  config.tx_latency = sim::Duration::zero();
  Nic nic(sim, config);
  auto& iface = nic.add_interface("a", MacAddress::from_index(10),
                                  Ipv4Address::from_index(10));
  SinkSpy network(sim);
  nic.connect_uplink(network, sim::Duration::zero(), 10.0);
  iface.transmit(frame_to(1));
  sim.run();
  ASSERT_EQ(network.arrivals.size(), 1u);
  EXPECT_LT(network.arrivals[0].first,
            sim::TimePoint::origin() + sim::Duration::micros(1));
}

TEST(Nic, TransmitWithoutUplinkThrows) {
  sim::Simulator sim;
  Nic nic(sim, Nic::Config{});
  auto& iface = nic.add_interface("a", MacAddress::from_index(10),
                                  Ipv4Address::from_index(10));
  EXPECT_THROW(iface.transmit(frame_to(1)), std::logic_error);
}

TEST(Nic, DuplicateInterfaceMacThrows) {
  sim::Simulator sim;
  Nic nic(sim, Nic::Config{});
  nic.add_interface("a", MacAddress::from_index(10),
                    Ipv4Address::from_index(10));
  EXPECT_THROW(nic.add_interface("b", MacAddress::from_index(10),
                                 Ipv4Address::from_index(11)),
               std::logic_error);
}

}  // namespace
}  // namespace nicsched::net
