// std::hash<FiveTuple> quality: the old `h*31` byte mix had algebraic
// collisions (shifting src_port by +1 and dst_port by -31 cancelled exactly)
// and clustered structured inputs. The splitmix64-based hash must be
// collision-free on realistic tuple populations and spread them evenly
// across power-of-two bucket counts — what unordered_map actually uses.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "net/packet.h"

namespace nicsched::net {
namespace {

FiveTuple tuple(std::uint32_t src_ip, std::uint32_t dst_ip,
                std::uint16_t src_port, std::uint16_t dst_port) {
  FiveTuple t;
  t.src_ip = Ipv4Address(src_ip);
  t.dst_ip = Ipv4Address(dst_ip);
  t.src_port = src_port;
  t.dst_port = dst_port;
  return t;
}

// The exact family that collided under the old multiplicative hash:
// (src_port + i, dst_port - 31*i) kept `src_port*961 + dst_port*31`
// constant, so every member hashed identically.
TEST(FiveTupleHash, BreaksMultiplicativeCollisionFamily) {
  const std::hash<FiveTuple> hasher;
  std::unordered_set<std::size_t> hashes;
  for (std::uint16_t i = 0; i < 64; ++i) {
    const FiveTuple t =
        tuple(0x0a000001, 0x0a000002,
              static_cast<std::uint16_t>(20'000 + i),
              static_cast<std::uint16_t>(40'000 - 31 * i));
    hashes.insert(hasher(t));
  }
  EXPECT_EQ(hashes.size(), 64u) << "algebraic collision family survived";
}

TEST(FiveTupleHash, NoCollisionsAcrossClientPortSweep) {
  // The workload generators use one (src_ip, dst_ip, dst_port) per client
  // and a sweep of source ports — the hash must keep them all distinct.
  const std::hash<FiveTuple> hasher;
  std::unordered_set<std::size_t> hashes;
  std::size_t count = 0;
  for (std::uint32_t client = 0; client < 16; ++client) {
    for (std::uint16_t port = 0; port < 512; ++port) {
      const FiveTuple t =
          tuple(0x0a000100 + client, 0x0a000001,
                static_cast<std::uint16_t>(30'000 + port), 8'080);
      hashes.insert(hasher(t));
      ++count;
    }
  }
  EXPECT_EQ(hashes.size(), count);
}

TEST(FiveTupleHash, SwappingIpWordsAndPortsChangesHash) {
  const std::hash<FiveTuple> hasher;
  const FiveTuple a = tuple(0x0a000001, 0x0a000002, 1000, 2000);
  const FiveTuple reversed_ips = tuple(0x0a000002, 0x0a000001, 1000, 2000);
  const FiveTuple reversed_ports = tuple(0x0a000001, 0x0a000002, 2000, 1000);
  EXPECT_NE(hasher(a), hasher(reversed_ips));
  EXPECT_NE(hasher(a), hasher(reversed_ports));
}

// Distribution over power-of-two buckets (unordered_map's regime with
// typical growth policies, and the regime where weak low bits hurt most).
TEST(FiveTupleHash, SequentialPortsSpreadEvenlyOverBuckets) {
  const std::hash<FiveTuple> hasher;
  constexpr std::size_t kBuckets = 1024;
  constexpr std::size_t kKeys = 4096;
  std::vector<std::uint32_t> occupancy(kBuckets, 0);
  for (std::size_t i = 0; i < kKeys; ++i) {
    const FiveTuple t =
        tuple(0x0a000001 + static_cast<std::uint32_t>(i / 1024), 0x0a000002,
              static_cast<std::uint16_t>(10'000 + i % 1024), 8'080);
    ++occupancy[hasher(t) & (kBuckets - 1)];
  }
  // Expected load 4/bucket. For a uniform hash the max over 1024 buckets is
  // ~14 (Poisson tail) and empty buckets number ~19 (1024 * e^-4). Bound
  // both loosely; the old hash fails these by an order of magnitude when it
  // clusters.
  std::uint32_t max_load = 0;
  std::size_t empty = 0;
  for (const std::uint32_t load : occupancy) {
    max_load = std::max(max_load, load);
    if (load == 0) ++empty;
  }
  EXPECT_LE(max_load, 20u);
  EXPECT_LE(empty, 120u);
}

// Low bits alone must already be well distributed — small tables mask with
// tiny powers of two.
TEST(FiveTupleHash, LowBitsAreUsable) {
  const std::hash<FiveTuple> hasher;
  constexpr std::size_t kBuckets = 8;
  std::vector<std::uint32_t> occupancy(kBuckets, 0);
  constexpr std::size_t kKeys = 800;
  for (std::size_t i = 0; i < kKeys; ++i) {
    const FiveTuple t = tuple(0x0a000001, 0x0a000002,
                              static_cast<std::uint16_t>(20'000 + i), 8'080);
    ++occupancy[hasher(t) & (kBuckets - 1)];
  }
  for (const std::uint32_t load : occupancy) {
    EXPECT_GE(load, 60u);   // expected 100 each; uniform stays well inside
    EXPECT_LE(load, 140u);
  }
}

}  // namespace
}  // namespace nicsched::net
