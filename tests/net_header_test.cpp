#include <gtest/gtest.h>

#include <vector>

#include "net/byte_io.h"
#include "net/checksum.h"
#include "net/ethernet.h"
#include "net/ipv4.h"
#include "net/udp.h"
#include "sim/random.h"

namespace nicsched::net {
namespace {

TEST(ByteIo, WriterProducesBigEndian) {
  std::vector<std::uint8_t> out;
  ByteWriter writer(out);
  writer.u8(0xAB);
  writer.u16(0x1234);
  writer.u32(0xDEADBEEF);
  writer.u64(0x0102030405060708ULL);
  const std::vector<std::uint8_t> expected = {
      0xAB, 0x12, 0x34, 0xDE, 0xAD, 0xBE, 0xEF,
      0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08};
  EXPECT_EQ(out, expected);
}

TEST(ByteIo, ReaderRoundTripsWriter) {
  std::vector<std::uint8_t> out;
  ByteWriter writer(out);
  writer.u8(7);
  writer.u16(65535);
  writer.u32(0);
  writer.u64(0xFFFFFFFFFFFFFFFFULL);

  ByteReader reader(out);
  EXPECT_EQ(reader.u8(), 7);
  EXPECT_EQ(reader.u16(), 65535);
  EXPECT_EQ(reader.u32(), 0u);
  EXPECT_EQ(reader.u64(), 0xFFFFFFFFFFFFFFFFULL);
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(ByteIo, ReaderThrowsOnTruncation) {
  const std::vector<std::uint8_t> data = {1, 2, 3};
  ByteReader reader(data);
  reader.u16();
  EXPECT_THROW(reader.u16(), std::out_of_range);
  ByteReader reader2(data);
  EXPECT_THROW(reader2.bytes(4), std::out_of_range);
  ByteReader reader3(data);
  EXPECT_THROW(reader3.skip(4), std::out_of_range);
}

TEST(ByteIo, RestConsumesEverything) {
  const std::vector<std::uint8_t> data = {1, 2, 3, 4};
  ByteReader reader(data);
  reader.u8();
  const auto rest = reader.rest();
  EXPECT_EQ(rest.size(), 3u);
  EXPECT_EQ(rest[0], 2);
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(EthernetHeader, RoundTrip) {
  EthernetHeader header;
  header.dst = MacAddress::from_index(42);
  header.src = MacAddress::from_index(7);
  header.ether_type = static_cast<std::uint16_t>(EtherType::kIpv4);

  std::vector<std::uint8_t> out;
  ByteWriter writer(out);
  header.serialize(writer);
  EXPECT_EQ(out.size(), EthernetHeader::kSize);

  ByteReader reader(out);
  const auto parsed = EthernetHeader::parse(reader);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, header);
}

TEST(EthernetHeader, ParseRejectsTruncation) {
  const std::vector<std::uint8_t> short_frame(13, 0);
  ByteReader reader(short_frame);
  EXPECT_FALSE(EthernetHeader::parse(reader).has_value());
}

TEST(Ipv4Header, RoundTripWithValidChecksum) {
  Ipv4Header header;
  header.total_length = 48;
  header.identification = 0x1234;
  header.ttl = 17;
  header.src = Ipv4Address(10, 0, 0, 1);
  header.dst = Ipv4Address(10, 0, 0, 2);

  std::vector<std::uint8_t> out;
  ByteWriter writer(out);
  header.serialize(writer);
  EXPECT_EQ(out.size(), Ipv4Header::kSize);

  ByteReader reader(out);
  const auto parsed = Ipv4Header::parse(reader);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, header);
}

TEST(Ipv4Header, ParseRejectsCorruptedChecksum) {
  Ipv4Header header;
  header.total_length = 28;
  header.src = Ipv4Address(10, 0, 0, 1);
  header.dst = Ipv4Address(10, 0, 0, 2);
  std::vector<std::uint8_t> out;
  ByteWriter writer(out);
  header.serialize(writer);

  for (std::size_t corrupt = 0; corrupt < out.size(); ++corrupt) {
    auto copy = out;
    copy[corrupt] ^= 0x01;
    ByteReader reader(copy);
    EXPECT_FALSE(Ipv4Header::parse(reader).has_value())
        << "bit flip at byte " << corrupt << " not detected";
  }
}

TEST(Ipv4Header, ParseRejectsWrongVersionOrOptions) {
  Ipv4Header header;
  header.total_length = 28;
  std::vector<std::uint8_t> out;
  ByteWriter writer(out);
  header.serialize(writer);

  auto v6 = out;
  v6[0] = 0x65;  // version 6
  // Fix the checksum so only the version check can reject.
  v6[10] = 0;
  v6[11] = 0;
  const std::uint16_t checksum = internet_checksum(v6);
  v6[10] = static_cast<std::uint8_t>(checksum >> 8);
  v6[11] = static_cast<std::uint8_t>(checksum);
  ByteReader reader(v6);
  EXPECT_FALSE(Ipv4Header::parse(reader).has_value());
}

TEST(UdpHeader, RoundTrip) {
  UdpHeader header;
  header.src_port = 20001;
  header.dst_port = 8080;
  header.length = 36;
  header.checksum = 0xBEEF;

  std::vector<std::uint8_t> out;
  ByteWriter writer(out);
  header.serialize(writer);
  EXPECT_EQ(out.size(), UdpHeader::kSize);

  ByteReader reader(out);
  const auto parsed = UdpHeader::parse(reader);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, header);
}

TEST(UdpHeader, ParseRejectsImpossibleLength) {
  UdpHeader header;
  header.length = 4;  // below the 8-byte header minimum
  std::vector<std::uint8_t> out;
  ByteWriter writer(out);
  header.serialize(writer);
  ByteReader reader(out);
  EXPECT_FALSE(UdpHeader::parse(reader).has_value());
}

class RandomHeaderRoundTrip : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(RandomHeaderRoundTrip, AllThreeLayersSurvive) {
  sim::Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    Ipv4Header ip;
    ip.total_length = static_cast<std::uint16_t>(rng.uniform_int(20, 1500));
    ip.identification = static_cast<std::uint16_t>(rng.uniform_int(0, 65535));
    ip.ttl = static_cast<std::uint8_t>(rng.uniform_int(1, 255));
    ip.src = Ipv4Address(static_cast<std::uint32_t>(rng.uniform_int(0, 0xFFFFFFFF)));
    ip.dst = Ipv4Address(static_cast<std::uint32_t>(rng.uniform_int(0, 0xFFFFFFFF)));

    std::vector<std::uint8_t> out;
    ByteWriter writer(out);
    ip.serialize(writer);
    ByteReader reader(out);
    const auto parsed = Ipv4Header::parse(reader);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, ip);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomHeaderRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace nicsched::net
