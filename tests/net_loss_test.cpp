// Fault injection: lossy wires, and end-to-end robustness of the offload
// system under external packet loss.
#include <gtest/gtest.h>

#include <memory>

#include "core/cluster.h"
#include "core/offload_server.h"
#include "core/testbed.h"
#include "net/ethernet_switch.h"
#include "net/nic.h"
#include "net/wire.h"
#include "sim/simulator.h"
#include "workload/client.h"

namespace nicsched {
namespace {

class CountingSink : public net::PacketSink {
 public:
  void deliver(net::Packet) override { ++delivered; }
  std::uint64_t delivered = 0;
};

net::Packet small_frame() {
  net::DatagramAddress address;
  address.src_mac = net::MacAddress::from_index(1);
  address.dst_mac = net::MacAddress::from_index(2);
  return net::make_udp_datagram(address, {});
}

TEST(WireLoss, DropsApproximatelyTheConfiguredFraction) {
  sim::Simulator sim;
  CountingSink sink;
  net::Wire wire(sim, sink, sim::Duration::nanos(100), 10.0);
  wire.set_loss(0.1, /*seed=*/99);
  const int n = 20'000;
  for (int i = 0; i < n; ++i) wire.transmit(small_frame());
  sim.run();
  EXPECT_EQ(wire.stats().packets, static_cast<std::uint64_t>(n));
  EXPECT_EQ(sink.delivered + wire.stats().lost,
            static_cast<std::uint64_t>(n));
  EXPECT_NEAR(static_cast<double>(wire.stats().lost) / n, 0.1, 0.01);
}

TEST(WireLoss, DeterministicInSeed) {
  auto run = [](std::uint64_t seed) {
    sim::Simulator sim;
    CountingSink sink;
    net::Wire wire(sim, sink, sim::Duration::nanos(100), 10.0);
    wire.set_loss(0.05, seed);
    for (int i = 0; i < 5000; ++i) wire.transmit(small_frame());
    sim.run();
    return wire.stats().lost;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(WireLoss, ZeroProbabilityLosesNothing) {
  sim::Simulator sim;
  CountingSink sink;
  net::Wire wire(sim, sink, sim::Duration::nanos(100), 10.0);
  wire.set_loss(0.0, 1);
  for (int i = 0; i < 1000; ++i) wire.transmit(small_frame());
  sim.run();
  EXPECT_EQ(wire.stats().lost, 0u);
  EXPECT_EQ(sink.delivered, 1000u);
}

TEST(SwitchLoss, PortKnobsValidateAndCount) {
  sim::Simulator sim;
  net::EthernetSwitch ethernet_switch(sim, sim::Duration::zero());
  CountingSink sink;
  ethernet_switch.attach(net::MacAddress::from_index(2), sink,
                         sim::Duration::zero(), 10.0);
  EXPECT_THROW(
      ethernet_switch.set_port_loss(net::MacAddress::from_index(9), 0.1, 1),
      std::logic_error);
  ethernet_switch.set_port_loss(net::MacAddress::from_index(2), 0.5, 1);
  for (int i = 0; i < 2000; ++i) {
    ethernet_switch.ingress().deliver(small_frame());
  }
  sim.run();
  const auto& stats =
      ethernet_switch.port_stats(net::MacAddress::from_index(2));
  EXPECT_NEAR(static_cast<double>(stats.lost) / 2000.0, 0.5, 0.05);
  EXPECT_EQ(sink.delivered + stats.lost, 2000u);
}

TEST(LossEndToEnd, OffloadKeepsServingUnderExternalLoss) {
  // 2 % loss on requests (toward the server's client-facing interface) and
  // 2 % on responses (toward the client). Lost requests never enter the
  // scheduler and lost responses happen after the dispatcher was notified,
  // so the offload system's slot accounting must survive and throughput
  // must track the surviving traffic — no wedging, no slot leak.
  sim::Simulator sim;
  const core::ModelParams params = core::ModelParams::defaults();

  const auto experiment =
      core::ExperimentConfig::offload().workers(4).outstanding(4)
          .no_preemption();
  core::ClusterBuilder topology(sim);
  topology.switch_latency(params.switch_forward_latency);
  topology.add_host(core::HostSpec::from_config(experiment));
  core::Cluster cluster = topology.build();
  net::EthernetSwitch& network = cluster.client_network();
  auto& server = dynamic_cast<core::ShinjukuOffloadServer&>(cluster.server());

  workload::ClientMachine::Config client_config;
  client_config.client_id = 1;
  client_config.mac = net::MacAddress::from_index(1);
  client_config.ip = net::Ipv4Address::from_index(1);
  client_config.server_mac = server.ingress_mac();
  client_config.server_ip = server.ingress_ip();
  client_config.server_port = server.port();
  workload::ClientMachine client(
      sim, network, client_config,
      std::make_shared<workload::FixedDistribution>(sim::Duration::micros(5)),
      std::make_unique<workload::PoissonArrivals>(300e3), sim::Rng(21));

  network.set_port_loss(server.ingress_mac(), 0.02, 31);
  network.set_port_loss(client_config.mac, 0.02, 32);

  client.start(sim::TimePoint::origin() + sim::Duration::millis(40));
  sim.run_until(sim::TimePoint::origin() + sim::Duration::millis(45));

  ASSERT_GT(client.sent(), 10'000u);
  const double delivery_rate = static_cast<double>(client.received()) /
                               static_cast<double>(client.sent());
  // Two independent 2 % loss points → ~96 % end-to-end delivery.
  EXPECT_NEAR(delivery_rate, 0.96, 0.01);

  // The scheduler's belief about outstanding work must have drained: no
  // permanently leaked worker slots.
  EXPECT_EQ(server.core_status().total_outstanding(), 0u);

  // The server answered everything it actually received.
  const core::ServerStats stats = server.stats(sim::Duration::millis(45));
  EXPECT_EQ(stats.responses_sent, stats.requests_received);
}

}  // namespace
}  // namespace nicsched
