// Packet-buffer pool: recycling behaviour, Packet integration, and the
// invariant the determinism argument rests on — a recycled buffer never
// leaks stale bytes into a new frame.
#include "net/packet_pool.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "net/packet.h"

namespace nicsched::net {
namespace {

DatagramAddress test_address() {
  DatagramAddress address;
  address.src_mac = MacAddress::from_index(1);
  address.dst_mac = MacAddress::from_index(2);
  address.src_ip = Ipv4Address(10, 0, 0, 1);
  address.dst_ip = Ipv4Address(10, 0, 0, 2);
  address.src_port = 20000;
  address.dst_port = 8080;
  return address;
}

class PacketPoolTest : public ::testing::Test {
 protected:
  // The pool is thread_local and shared by every test in this binary (and by
  // Packet operations inside gtest itself); start each test from a clean
  // slate so stats are attributable.
  void SetUp() override { PacketBufferPool::instance().clear(); }
  void TearDown() override { PacketBufferPool::instance().clear(); }
};

TEST_F(PacketPoolTest, AcquireReusesReleasedBuffer) {
  auto& pool = PacketBufferPool::instance();
  std::vector<std::uint8_t> buffer = pool.acquire(128);
  EXPECT_GE(buffer.capacity(), 128u);
  EXPECT_TRUE(buffer.empty());
  const std::uint8_t* data = buffer.data();

  pool.release(std::move(buffer));
  EXPECT_EQ(pool.size(), 1u);

  std::vector<std::uint8_t> again = pool.acquire(64);
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_EQ(again.data(), data);  // same backing store came back
  EXPECT_TRUE(again.empty());     // handed out clean
  EXPECT_EQ(pool.stats().reused, 1u);
  EXPECT_EQ(pool.stats().acquired, 2u);
}

TEST_F(PacketPoolTest, ReleaseDropsCapacitylessAndOverflowBuffers) {
  auto& pool = PacketBufferPool::instance();
  pool.release(std::vector<std::uint8_t>{});  // no capacity: dropped
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_EQ(pool.stats().dropped, 1u);
}

TEST_F(PacketPoolTest, PacketDestructorReturnsBufferToPool) {
  auto& pool = PacketBufferPool::instance();
  {
    const Packet packet =
        make_udp_datagram(test_address(), std::vector<std::uint8_t>(32, 0xab));
    EXPECT_GT(packet.size(), 0u);
  }
  // The frame buffer (acquired inside make_udp_datagram) came back.
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_GE(pool.stats().released, 1u);
}

TEST_F(PacketPoolTest, SteadyStateFramesRecycleOneBuffer) {
  auto& pool = PacketBufferPool::instance();
  for (int i = 0; i < 100; ++i) {
    const Packet packet =
        make_udp_datagram(test_address(), std::vector<std::uint8_t>(64, 0x11));
    ASSERT_TRUE(parse_udp_datagram(packet).has_value());
  }
  // One buffer cycles: 100 acquires, 99 of them reuses.
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.stats().reused, 99u);
}

TEST_F(PacketPoolTest, CopyPreservesBytesAndMetadata) {
  Packet original =
      make_udp_datagram(test_address(), std::vector<std::uint8_t>(16, 0x5c));
  original.set_rx_at(sim::TimePoint::from_picos(1234));

  const Packet copy = original;  // draws a pooled buffer for its bytes
  EXPECT_EQ(copy, original);
  EXPECT_EQ(copy.rx_at(), original.rx_at());
  EXPECT_TRUE(copy.checksum_trusted());
  EXPECT_NE(copy.bytes().data(), original.bytes().data());
}

TEST_F(PacketPoolTest, MovedFromPacketDoesNotDoubleRelease) {
  auto& pool = PacketBufferPool::instance();
  {
    Packet a =
        make_udp_datagram(test_address(), std::vector<std::uint8_t>(16, 0x01));
    const Packet b = std::move(a);
    EXPECT_GT(b.size(), 0u);
  }  // both die here; only one backing buffer existed
  EXPECT_EQ(pool.size(), 1u);
}

// The core safety property: a buffer recycled from a LARGER frame must
// produce a byte-exact smaller frame (no stale tail, no stale header).
TEST_F(PacketPoolTest, RecycledBufferProducesByteIdenticalFrames) {
  const std::vector<std::uint8_t> small_payload = {1, 2, 3};
  const Packet reference = make_udp_datagram(test_address(), small_payload);
  const std::vector<std::uint8_t> reference_bytes(reference.bytes().begin(),
                                                  reference.bytes().end());

  {
    const Packet big = make_udp_datagram(
        test_address(), std::vector<std::uint8_t>(512, 0xee));
    EXPECT_GT(big.size(), reference.size());
  }  // its 512-byte-class buffer is now pooled

  const Packet rebuilt = make_udp_datagram(test_address(), small_payload);
  EXPECT_EQ(std::vector<std::uint8_t>(rebuilt.bytes().begin(),
                                      rebuilt.bytes().end()),
            reference_bytes);
  const auto view = parse_udp_datagram(rebuilt);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->payload.size(), small_payload.size());
}

TEST_F(PacketPoolTest, ChecksumTrustFollowsProvenance) {
  const Packet built =
      make_udp_datagram(test_address(), std::vector<std::uint8_t>(8, 0x42));
  EXPECT_TRUE(built.checksum_trusted());

  // A frame assembled from raw bytes (fuzzers, hand-built tests) is not
  // trusted, so elision never skips verification for it.
  const Packet raw(std::vector<std::uint8_t>(built.bytes().begin(),
                                             built.bytes().end()));
  EXPECT_FALSE(raw.checksum_trusted());
  EXPECT_EQ(raw, built);  // trust is metadata, not wire identity
}

TEST_F(PacketPoolTest, ElisionFlagDefaultsOffAndSkipsOnlyTrustedFrames) {
  EXPECT_FALSE(checksum_elision_enabled());

  // Corrupt a trusted frame's payload via the raw-bytes constructor — the
  // rebuilt Packet is untrusted, so it must fail parsing even with elision
  // on. A trusted frame with a corrupt checksum can't exist through the
  // public API, so this is the observable contract.
  Packet good =
      make_udp_datagram(test_address(), std::vector<std::uint8_t>(8, 0x42));
  std::vector<std::uint8_t> corrupt_bytes(good.bytes().begin(),
                                          good.bytes().end());
  corrupt_bytes.back() ^= 0xff;  // flip payload byte; UDP checksum now wrong
  const Packet corrupt(std::move(corrupt_bytes));

  set_checksum_elision(true);
  EXPECT_TRUE(parse_udp_datagram(good).has_value());
  EXPECT_FALSE(parse_udp_datagram(corrupt).has_value())
      << "untrusted frames must still be verified under elision";
  set_checksum_elision(false);
  EXPECT_FALSE(parse_udp_datagram(corrupt).has_value());
}

}  // namespace
}  // namespace nicsched::net
