#include "net/packet.h"

#include <gtest/gtest.h>

#include "net/flow_director.h"
#include "sim/random.h"

namespace nicsched::net {
namespace {

DatagramAddress test_address() {
  DatagramAddress address;
  address.src_mac = MacAddress::from_index(1);
  address.dst_mac = MacAddress::from_index(2);
  address.src_ip = Ipv4Address(10, 0, 0, 1);
  address.dst_ip = Ipv4Address(10, 0, 0, 2);
  address.src_port = 20000;
  address.dst_port = 8080;
  return address;
}

TEST(Packet, UdpDatagramRoundTrip) {
  const std::vector<std::uint8_t> payload = {0xde, 0xad, 0xbe, 0xef, 0x42};
  const Packet packet = make_udp_datagram(test_address(), payload);

  const auto view = parse_udp_datagram(packet);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->eth.src, MacAddress::from_index(1));
  EXPECT_EQ(view->eth.dst, MacAddress::from_index(2));
  EXPECT_EQ(view->ip.src, Ipv4Address(10, 0, 0, 1));
  EXPECT_EQ(view->ip.dst, Ipv4Address(10, 0, 0, 2));
  EXPECT_EQ(view->udp.src_port, 20000);
  EXPECT_EQ(view->udp.dst_port, 8080);
  EXPECT_EQ(std::vector<std::uint8_t>(view->payload.begin(),
                                      view->payload.end()),
            payload);
}

TEST(Packet, FrameSizesAddUp) {
  const std::vector<std::uint8_t> payload(10, 0xAA);
  const Packet packet = make_udp_datagram(test_address(), payload);
  EXPECT_EQ(packet.size(), 14u + 20u + 8u + 10u);
}

TEST(Packet, WireSizePadsRuntsAndAddsOverhead) {
  const Packet small = make_udp_datagram(test_address(), {});
  EXPECT_EQ(small.size(), 42u);
  EXPECT_EQ(small.wire_size(), 64u + 20u);  // padded to minimum + preamble/IPG

  const std::vector<std::uint8_t> big(1000, 1);
  const Packet large = make_udp_datagram(test_address(), big);
  EXPECT_EQ(large.wire_size(), large.size() + 20u);
}

TEST(Packet, DstMacPeek) {
  const Packet packet = make_udp_datagram(test_address(), {});
  ASSERT_TRUE(packet.dst_mac().has_value());
  EXPECT_EQ(*packet.dst_mac(), MacAddress::from_index(2));
  EXPECT_FALSE(Packet({1, 2, 3}).dst_mac().has_value());
}

TEST(Packet, ParseRejectsCorruptedBytes) {
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4};
  const Packet good = make_udp_datagram(test_address(), payload);

  // Flipping any single byte from the IP header onward must be caught by the
  // IP or UDP checksum. (Ethernet bytes are not covered by a checksum here —
  // real frames have a CRC the link model assumes is checked.)
  sim::Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    auto bytes = std::vector<std::uint8_t>(good.bytes().begin(),
                                           good.bytes().end());
    const std::size_t index =
        14 + rng.uniform_int(0, bytes.size() - 15);
    bytes[index] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
    EXPECT_FALSE(parse_udp_datagram(Packet(std::move(bytes))).has_value())
        << "corruption at byte " << index << " accepted";
  }
}

TEST(Packet, ParseRejectsNonIpv4AndTruncation) {
  const std::vector<std::uint8_t> payload = {1, 2, 3};
  const Packet good = make_udp_datagram(test_address(), payload);
  auto bytes =
      std::vector<std::uint8_t>(good.bytes().begin(), good.bytes().end());

  auto arp = bytes;
  arp[12] = 0x08;
  arp[13] = 0x06;  // EtherType ARP
  EXPECT_FALSE(parse_udp_datagram(Packet(std::move(arp))).has_value());

  auto truncated = bytes;
  truncated.resize(30);
  EXPECT_FALSE(parse_udp_datagram(Packet(std::move(truncated))).has_value());

  EXPECT_FALSE(parse_udp_datagram(Packet{}).has_value());
}

TEST(Packet, FiveTupleAndReversedAddress) {
  const Packet packet = make_udp_datagram(test_address(), {});
  const auto view = parse_udp_datagram(packet);
  ASSERT_TRUE(view.has_value());

  const FiveTuple tuple = view->five_tuple();
  EXPECT_EQ(tuple.src_ip, Ipv4Address(10, 0, 0, 1));
  EXPECT_EQ(tuple.dst_port, 8080);
  EXPECT_EQ(tuple.protocol, 17);

  const DatagramAddress reply = view->address().reversed();
  EXPECT_EQ(reply.src_mac, MacAddress::from_index(2));
  EXPECT_EQ(reply.dst_mac, MacAddress::from_index(1));
  EXPECT_EQ(reply.src_port, 8080);
  EXPECT_EQ(reply.dst_port, 20000);
}

TEST(FlowDirector, ExactMatchBeatsPortRuleBeatsMiss) {
  FlowDirector director;
  const FiveTuple tuple{Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2),
                        1234, 8080, 17};
  EXPECT_FALSE(director.match(tuple).has_value());

  director.add_dst_port_rule(8080, 3);
  EXPECT_EQ(director.match(tuple), 3u);

  director.add_rule(tuple, 7);
  EXPECT_EQ(director.match(tuple), 7u);
  EXPECT_EQ(director.rule_count(), 2u);

  EXPECT_TRUE(director.remove_rule(tuple));
  EXPECT_EQ(director.match(tuple), 3u);
  EXPECT_FALSE(director.remove_rule(tuple));
}

class PayloadSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PayloadSizes, RoundTripAcrossSizes) {
  std::vector<std::uint8_t> payload(GetParam());
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 13 + 7);
  }
  const Packet packet = make_udp_datagram(test_address(), payload);
  const auto view = parse_udp_datagram(packet);
  ASSERT_TRUE(view.has_value());
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(),
                         view->payload.begin(), view->payload.end()));
}

INSTANTIATE_TEST_SUITE_P(Sizes, PayloadSizes,
                         ::testing::Values(0, 1, 23, 64, 512, 1400));

}  // namespace
}  // namespace nicsched::net
