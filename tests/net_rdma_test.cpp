// RdmaQueuePair (DESIGN §15): the one-sided-write channel under the `rain`
// family. Delivery latency is write_latency + cq_poll_interval, the
// initiator cost (WQE build + doorbell) is returned to the caller, post
// order equals visibility order, and payload bytes survive intact through
// the recycled ring.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "net/rdma.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace nicsched {
namespace {

net::RdmaQueuePair::Config test_config() {
  net::RdmaQueuePair::Config config;
  config.write_latency = sim::Duration::nanos(400);
  config.cq_poll_interval = sim::Duration::nanos(100);
  config.wqe_post_cost = sim::Duration::nanos(30);
  config.doorbell_cost = sim::Duration::nanos(50);
  return config;
}

TEST(RdmaQueuePair, PayloadVisibleAfterTraversalPlusPollSkew) {
  sim::Simulator sim;
  net::RdmaQueuePair qp(sim, test_config());

  sim::TimePoint delivered_at;
  int deliveries = 0;
  qp.set_on_receive([&] {
    delivered_at = sim.now();
    ++deliveries;
  });

  const sim::TimePoint posted_at = sim.now();
  const sim::Duration initiator_cost = qp.post_write({1, 2, 3});
  EXPECT_EQ(initiator_cost, sim::Duration::nanos(30 + 50))
      << "post_write must return WQE build + doorbell for the caller to "
         "charge on the posting core";

  // Nothing is pollable before the posted write lands.
  EXPECT_TRUE(qp.empty());
  EXPECT_FALSE(qp.poll().has_value());

  sim.run_until(posted_at + sim::Duration::micros(1));
  ASSERT_EQ(deliveries, 1);
  EXPECT_EQ(delivered_at - posted_at, sim::Duration::nanos(400 + 100));

  ASSERT_EQ(qp.depth(), 1u);
  const auto payload = qp.poll();
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_TRUE(qp.empty());
  EXPECT_FALSE(qp.poll().has_value());
}

TEST(RdmaQueuePair, PostOrderIsVisibilityOrder) {
  // All writes on a QP share one latency, so the channel can never reorder —
  // the property the rain scheduler's sequencing relies on.
  sim::Simulator sim;
  net::RdmaQueuePair qp(sim, test_config());
  for (std::uint8_t i = 0; i < 16; ++i) qp.post_write({i});
  sim.run_for(sim::Duration::micros(1));
  ASSERT_EQ(qp.depth(), 16u);
  for (std::uint8_t i = 0; i < 16; ++i) {
    const auto payload = qp.poll();
    ASSERT_TRUE(payload.has_value());
    EXPECT_EQ((*payload)[0], i);
  }
}

TEST(RdmaQueuePair, StatsCountWritesDeliveriesAndBytes) {
  sim::Simulator sim;
  net::RdmaQueuePair qp(sim, test_config());
  qp.post_write({1, 2, 3});
  qp.post_write({4, 5});
  sim.run_for(sim::Duration::micros(1));
  EXPECT_EQ(qp.stats().writes, 2u);
  EXPECT_EQ(qp.stats().bytes, 5u);
  EXPECT_EQ(qp.stats().delivered, 0u);  // counts pops, not visibility
  (void)qp.poll();
  (void)qp.poll();
  EXPECT_EQ(qp.stats().delivered, 2u);
}

TEST(RdmaQueuePair, RecycledRingSurvivesSteadyStateTraffic) {
  // Thousands of post/poll cycles through the grow-only ring: every payload
  // round-trips intact even when slots (and their vectors) are reused.
  sim::Simulator sim;
  net::RdmaQueuePair qp(sim, test_config());
  std::uint32_t received = 0;
  qp.set_on_receive([&] {
    const auto payload = qp.poll();
    ASSERT_TRUE(payload.has_value());
    ASSERT_EQ(payload->size(), 4u);
    std::uint32_t value = 0;
    for (std::size_t b = 0; b < 4; ++b) {
      value |= static_cast<std::uint32_t>((*payload)[b]) << (8 * b);
    }
    EXPECT_EQ(value, received);
    ++received;
  });
  constexpr std::uint32_t kRounds = 4096;
  for (std::uint32_t i = 0; i < kRounds; ++i) {
    sim.at(sim::TimePoint::origin() + sim::Duration::nanos(10 * i), [&qp, i] {
      qp.post_write({static_cast<std::uint8_t>(i),
                     static_cast<std::uint8_t>(i >> 8),
                     static_cast<std::uint8_t>(i >> 16),
                     static_cast<std::uint8_t>(i >> 24)});
    });
  }
  sim.run_until(sim::TimePoint::origin() + sim::Duration::millis(1));
  EXPECT_EQ(received, kRounds);
  EXPECT_EQ(qp.stats().writes, kRounds);
  EXPECT_EQ(qp.stats().delivered, kRounds);
}

}  // namespace
}  // namespace nicsched
