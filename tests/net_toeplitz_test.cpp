#include "net/toeplitz.h"

#include <gtest/gtest.h>

#include <map>

namespace nicsched::net {
namespace {

Ipv4Address ip(std::string_view text) { return *Ipv4Address::parse(text); }

struct MsVector {
  const char* dst_ip;
  std::uint16_t dst_port;
  const char* src_ip;
  std::uint16_t src_port;
  std::uint32_t hash_with_ports;
  std::uint32_t hash_ip_only;
};

// The official Microsoft RSS verification suite for IPv4 (the same vectors
// every NIC vendor validates Toeplitz against).
const MsVector kVectors[] = {
    {"161.142.100.80", 1766, "66.9.149.187", 2794, 0x51ccc178, 0x323e8fc2},
    {"65.69.140.83", 4739, "199.92.111.2", 14230, 0xc626b0ea, 0xd718262a},
    {"12.22.207.184", 38024, "24.19.198.95", 12898, 0x5c2b394a, 0xd2d0a5de},
    {"209.142.163.6", 2217, "38.27.205.30", 48228, 0xafc7327f, 0x82989176},
    {"202.188.127.2", 1303, "153.39.163.191", 44251, 0x10e828a2, 0x5d1809c5},
};

class ToeplitzMsVectors : public ::testing::TestWithParam<MsVector> {};

TEST_P(ToeplitzMsVectors, FourTupleMatchesPublishedHash) {
  const MsVector& vector = GetParam();
  EXPECT_EQ(rss_hash_ipv4_ports(kDefaultRssKey, ip(vector.src_ip),
                                ip(vector.dst_ip), vector.src_port,
                                vector.dst_port),
            vector.hash_with_ports);
}

TEST_P(ToeplitzMsVectors, TwoTupleMatchesPublishedHash) {
  const MsVector& vector = GetParam();
  EXPECT_EQ(rss_hash_ipv4(kDefaultRssKey, ip(vector.src_ip), ip(vector.dst_ip)),
            vector.hash_ip_only);
}

INSTANTIATE_TEST_SUITE_P(MicrosoftSuite, ToeplitzMsVectors,
                         ::testing::ValuesIn(kVectors));

TEST(Toeplitz, EmptyInputHashesToZero) {
  EXPECT_EQ(toeplitz_hash(kDefaultRssKey, {}), 0u);
}

TEST(Toeplitz, InputTooLongForKeyThrows) {
  const std::vector<std::uint8_t> input(37, 0);  // needs 37+4 > 40 key bytes
  EXPECT_THROW(toeplitz_hash(kDefaultRssKey, input), std::invalid_argument);
}

TEST(Toeplitz, HashIsLinearInXor) {
  // Toeplitz is GF(2)-linear: H(a^b) == H(a)^H(b) for equal-length inputs.
  const std::vector<std::uint8_t> a = {1, 2, 3, 4, 5, 6, 7, 8};
  const std::vector<std::uint8_t> b = {9, 8, 7, 6, 5, 4, 3, 2};
  std::vector<std::uint8_t> axb(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) axb[i] = a[i] ^ b[i];
  EXPECT_EQ(toeplitz_hash(kDefaultRssKey, axb),
            toeplitz_hash(kDefaultRssKey, a) ^ toeplitz_hash(kDefaultRssKey, b));
}

TEST(RssIndirectionTable, RoundRobinInitialization) {
  RssIndirectionTable table(128, 4);
  std::map<std::uint32_t, int> counts;
  for (std::size_t i = 0; i < table.size(); ++i) {
    EXPECT_EQ(table.entry(i), i % 4);
    counts[table.entry(i)]++;
  }
  EXPECT_EQ(counts.size(), 4u);
  for (const auto& [queue, count] : counts) EXPECT_EQ(count, 32);
}

TEST(RssIndirectionTable, QueueForHashUsesLowBits) {
  RssIndirectionTable table(128, 8);
  EXPECT_EQ(table.queue_for_hash(0), table.entry(0));
  EXPECT_EQ(table.queue_for_hash(129), table.entry(1));
  EXPECT_EQ(table.queue_for_hash(0xFFFFFF80u), table.entry(0));
}

TEST(RssIndirectionTable, RemapMovesEntries) {
  RssIndirectionTable table(16, 4);
  table.remap(3, 0);
  for (std::size_t i = 0; i < table.size(); ++i) {
    EXPECT_NE(table.entry(i), 3u);
  }
}

TEST(RssIndirectionTable, RemapOneMovesExactlyOneEntry) {
  RssIndirectionTable table(16, 4);
  EXPECT_EQ(table.entries_for(3), 4u);
  EXPECT_TRUE(table.remap_one(3, 0));
  EXPECT_EQ(table.entries_for(3), 3u);
  EXPECT_EQ(table.entries_for(0), 5u);
  // Drain queue 3 entirely, then remap_one fails.
  EXPECT_TRUE(table.remap_one(3, 0));
  EXPECT_TRUE(table.remap_one(3, 0));
  EXPECT_TRUE(table.remap_one(3, 0));
  EXPECT_FALSE(table.remap_one(3, 0));
  EXPECT_EQ(table.entries_for(0), 8u);
}

TEST(RssIndirectionTable, RejectsBadSizes) {
  EXPECT_THROW(RssIndirectionTable(0, 4), std::invalid_argument);
  EXPECT_THROW(RssIndirectionTable(100, 4), std::invalid_argument);  // not 2^n
  EXPECT_THROW(RssIndirectionTable(128, 0), std::invalid_argument);
}

TEST(RssSteer, SpreadsFlowsAcrossQueues) {
  RssIndirectionTable table(128, 8);
  std::map<std::uint32_t, int> counts;
  for (std::uint16_t port = 20000; port < 21000; ++port) {
    FiveTuple tuple{Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2), port,
                    8080, 17};
    counts[rss_steer(kDefaultRssKey, table, tuple)]++;
  }
  EXPECT_EQ(counts.size(), 8u);
  for (const auto& [queue, count] : counts) {
    // 1000 flows over 8 queues: expect roughly 125 each.
    EXPECT_GT(count, 70);
    EXPECT_LT(count, 190);
  }
}

TEST(RssSteer, SameFlowAlwaysSameQueue) {
  RssIndirectionTable table(128, 16);
  const FiveTuple tuple{Ipv4Address(10, 1, 2, 3), Ipv4Address(10, 4, 5, 6),
                        31337, 8080, 17};
  const std::uint32_t queue = rss_steer(kDefaultRssKey, table, tuple);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rss_steer(kDefaultRssKey, table, tuple), queue);
  }
}

}  // namespace
}  // namespace nicsched::net
