#include <gtest/gtest.h>

#include <sstream>

#include "obs/chrome_trace.h"
#include "obs/span.h"
#include "obs/span_recorder.h"

namespace nicsched {
namespace {

obs::RequestLifecycle make_lifecycle(std::uint64_t id) {
  obs::RequestLifecycle life;
  life.request_id = id;
  life.complete = true;
  const auto at = [](std::int64_t ps) {
    return sim::TimePoint::origin() + sim::Duration::picos(ps);
  };
  // Deliberately sub-microsecond boundaries to exercise the fixed-point
  // microsecond formatting.
  life.spans.push_back(
      {obs::SpanKind::kClientWire, 1, at(0), at(2'350'000)});
  life.spans.push_back(
      {obs::SpanKind::kNicRx, 0, at(2'350'000), at(2'412'500)});
  life.spans.push_back(
      {obs::SpanKind::kService, 103, at(2'412'500), at(7'412'500)});
  life.spans.push_back(
      {obs::SpanKind::kResponse, 103, at(7'412'500), at(9'000'001)});
  return life;
}

TEST(ChromeTrace, RoundTripsThroughParser) {
  std::vector<obs::RequestLifecycle> lifecycles = {make_lifecycle(11),
                                                   make_lifecycle(12)};
  std::ostringstream out;
  obs::write_chrome_trace(out, lifecycles);
  const std::string json = out.str();

  const auto parsed = obs::parse_chrome_trace(json);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 8u);

  // Events come back in lifecycle-then-span order.
  const obs::ChromeTraceEvent& wire = (*parsed)[0];
  EXPECT_EQ(wire.name, "client-wire");
  EXPECT_EQ(wire.request_id, 11u);
  EXPECT_EQ(wire.tid, 1u);
  EXPECT_DOUBLE_EQ(wire.ts_us, 0.0);
  EXPECT_DOUBLE_EQ(wire.dur_us, 2.35);

  const obs::ChromeTraceEvent& service = (*parsed)[2];
  EXPECT_EQ(service.name, "service");
  EXPECT_EQ(service.tid, 103u);
  EXPECT_DOUBLE_EQ(service.ts_us, 2.4125);
  EXPECT_DOUBLE_EQ(service.dur_us, 5.0);

  const obs::ChromeTraceEvent& last = (*parsed)[7];
  EXPECT_EQ(last.request_id, 12u);
  EXPECT_EQ(last.name, "response");
  // 1'587'501 ps, formatted at fixed 6-decimal microseconds.
  EXPECT_DOUBLE_EQ(last.dur_us, 1.587501);
}

TEST(ChromeTrace, EmptyCaptureIsStillValidJson) {
  std::ostringstream out;
  obs::write_chrome_trace(out, {});
  const auto parsed = obs::parse_chrome_trace(out.str());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->empty());
}

TEST(ChromeTrace, ParserRejectsMalformedInput) {
  EXPECT_FALSE(obs::parse_chrome_trace("").has_value());
  EXPECT_FALSE(obs::parse_chrome_trace("not json").has_value());
  EXPECT_FALSE(obs::parse_chrome_trace("{\"traceEvents\": 3}").has_value());
  EXPECT_FALSE(
      obs::parse_chrome_trace("{\"traceEvents\": [{\"ph\":\"X\"")
          .has_value());
}

TEST(ChromeTrace, ParserSkipsUnknownKeysAndNonCompleteEvents) {
  const std::string json = R"({
    "displayTimeUnit": "ns",
    "otherTopLevel": {"nested": [1, 2, {"deep": true}]},
    "traceEvents": [
      {"name": "meta", "ph": "M", "pid": 1, "args": {"x": 1}},
      {"name": "service", "cat": "request", "ph": "X", "ts": 1.5,
       "dur": 4.25, "pid": 1, "tid": 100,
       "args": {"request_id": 42, "extra": "ignored"}}
    ]
  })";
  const auto parsed = obs::parse_chrome_trace(json);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ((*parsed)[0].name, "service");
  EXPECT_DOUBLE_EQ((*parsed)[0].ts_us, 1.5);
  EXPECT_DOUBLE_EQ((*parsed)[0].dur_us, 4.25);
  EXPECT_EQ((*parsed)[0].tid, 100u);
  EXPECT_EQ((*parsed)[0].request_id, 42u);
}

TEST(ChromeTrace, RecorderOutputRoundTrips) {
  // Feed a recorder the way the simulator would, then export + parse.
  obs::SpanRecorder recorder;
  sim::SpanEvent e;
  e.request_id = 5;
  const auto emit = [&](std::int64_t us, obs::SpanKind kind, bool begin,
                        std::uint32_t component) {
    e.when = sim::TimePoint::origin() + sim::Duration::micros(us);
    e.kind = static_cast<std::uint16_t>(kind);
    e.begin = begin;
    e.component = component;
    recorder.on_event(e);
  };
  emit(0, obs::SpanKind::kClientWire, true, 1);
  emit(2, obs::SpanKind::kClientWire, false, 1);
  emit(2, obs::SpanKind::kDispatchQueue, true, 0);
  emit(5, obs::SpanKind::kDispatchQueue, false, 0);
  emit(5, obs::SpanKind::kService, true, 101);
  emit(11, obs::SpanKind::kService, false, 101);
  emit(11, obs::SpanKind::kResponse, true, 101);
  emit(13, obs::SpanKind::kResponse, false, 1);

  std::ostringstream out;
  obs::write_chrome_trace(out, recorder.completed());
  const auto parsed = obs::parse_chrome_trace(out.str());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 4u);
  double total_us = 0.0;
  for (const auto& event : *parsed) {
    EXPECT_EQ(event.request_id, 5u);
    total_us += event.dur_us;
  }
  EXPECT_DOUBLE_EQ(total_us, 13.0);
}

}  // namespace
}  // namespace nicsched
