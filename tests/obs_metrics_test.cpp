#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "core/shinjuku_server.h"
#include "net/ethernet_switch.h"
#include "obs/metrics.h"
#include "proto/messages.h"
#include "sim/simulator.h"

namespace nicsched {
namespace {

sim::TimePoint at_us(std::int64_t us) {
  return sim::TimePoint::origin() + sim::Duration::micros(us);
}

TEST(MetricSampler, SamplesOnCadenceUntilDeadline) {
  sim::Simulator sim;
  obs::MetricSampler sampler(sim, sim::Duration::micros(10));

  int depth = 0;
  sampler.add_probe("depth", [&]() { return static_cast<double>(depth); });
  sim.after(sim::Duration::micros(25), [&]() { depth = 4; });

  sampler.start(at_us(50));
  sim.run_until(at_us(200));

  // Ticks at 10, 20, 30, 40, 50 us.
  EXPECT_EQ(sampler.ticks(), 5u);
  const obs::TimeSeries* series = sampler.find("depth");
  ASSERT_NE(series, nullptr);
  ASSERT_EQ(series->size(), 5u);
  EXPECT_EQ(series->at.front(), at_us(10));
  EXPECT_EQ(series->at.back(), at_us(50));
  EXPECT_DOUBLE_EQ(series->values[1], 0.0);
  EXPECT_DOUBLE_EQ(series->values[2], 4.0);
  EXPECT_DOUBLE_EQ(series->max(), 4.0);
  EXPECT_DOUBLE_EQ(series->mean(), 12.0 / 5.0);
}

TEST(MetricSampler, ProbeBlockFansOneCallAcrossSeries) {
  sim::Simulator sim;
  obs::MetricSampler sampler(sim, sim::Duration::micros(5));

  int calls = 0;
  sampler.add_probe_block({"a", "b", "c"}, [&]() {
    ++calls;
    return std::vector<double>{1.0, 2.0, 3.0};
  });
  sampler.start(at_us(20));
  sim.run_until(at_us(30));

  // One callable invocation per tick feeds all three series.
  EXPECT_EQ(calls, 4);
  ASSERT_NE(sampler.find("b"), nullptr);
  EXPECT_EQ(sampler.find("b")->size(), 4u);
  EXPECT_DOUBLE_EQ(sampler.find("b")->last(), 2.0);
  EXPECT_DOUBLE_EQ(sampler.find("c")->last(), 3.0);
}

TEST(MetricSampler, RejectsBadConfiguration) {
  sim::Simulator sim;
  EXPECT_THROW(obs::MetricSampler(sim, sim::Duration::zero()),
               std::invalid_argument);

  obs::MetricSampler sampler(sim, sim::Duration::micros(1));
  sampler.add_probe("x", []() { return 0.0; });
  sampler.start(at_us(3));
  EXPECT_THROW(sampler.add_probe("late", []() { return 0.0; }),
               std::logic_error);
}

TEST(ServerTelemetry, RingOverflowDropsReachTelemetry) {
  // Regression: RX-ring overflow was counted in run-end stats() but not in
  // the live telemetry() snapshot the metric sampler polls, so the sampled
  // "drops" series silently understated loss.
  sim::Simulator sim;
  core::ModelParams params = core::ModelParams::defaults();
  params.ring_capacity = 2;
  net::EthernetSwitch network(sim, params.switch_forward_latency);

  core::ShinjukuServer::Config config;
  config.worker_count = 1;
  config.preemption_enabled = false;
  core::ShinjukuServer server(sim, network, params, config);

  net::DatagramAddress address;
  address.src_mac = net::MacAddress::from_index(1);
  address.dst_mac = server.ingress_mac();
  address.src_ip = net::Ipv4Address::from_index(1);
  address.dst_ip = server.ingress_ip();
  address.src_port = 1234;
  address.dst_port = server.port();

  proto::RequestMessage request;
  request.client_id = 1;
  request.work_ps = 5'000'000;  // 5 us
  for (int i = 0; i < 32; ++i) {
    request.request_id = static_cast<std::uint64_t>(i + 1);
    network.ingress().deliver(
        net::make_udp_datagram(address, request.serialize()));
  }
  sim.run_until(at_us(2'000));

  const core::ServerStats stats = server.stats(sim::Duration::millis(2));
  ASSERT_GT(stats.drops, 0u) << "burst did not overflow the 2-slot ring";
  EXPECT_EQ(server.telemetry().drops, stats.drops);
}

TEST(MetricSampler, WritesAlignedCsv) {
  sim::Simulator sim;
  obs::MetricSampler sampler(sim, sim::Duration::micros(10));
  sampler.add_probe("depth", []() { return 2.0; });
  sampler.add_probe("busy", []() { return 0.5; });
  sampler.start(at_us(20));
  sim.run_until(at_us(25));

  std::ostringstream out;
  sampler.write_csv(out);
  EXPECT_EQ(out.str(),
            "time_us,depth,busy\n"
            "10.000,2,0.5\n"
            "20.000,2,0.5\n");
}

}  // namespace
}  // namespace nicsched
