#include <gtest/gtest.h>

#include <map>

#include "core/testbed.h"
#include "obs/capture.h"
#include "obs/span.h"
#include "obs/span_recorder.h"
#include "sim/simulator.h"

namespace nicsched {
namespace {

sim::TimePoint at_us(std::int64_t us) {
  return sim::TimePoint::origin() + sim::Duration::micros(us);
}

sim::SpanEvent event(std::int64_t us, std::uint64_t id, obs::SpanKind kind,
                     bool begin, std::uint32_t component = 0) {
  sim::SpanEvent e;
  e.when = at_us(us);
  e.request_id = id;
  e.kind = static_cast<std::uint16_t>(kind);
  e.begin = begin;
  e.component = component;
  return e;
}

TEST(SpanRecorder, AssemblesTiledLifecycle) {
  obs::SpanRecorder recorder;
  recorder.on_event(event(0, 7, obs::SpanKind::kClientWire, true));
  recorder.on_event(event(2, 7, obs::SpanKind::kClientWire, false));
  recorder.on_event(event(2, 7, obs::SpanKind::kNicRx, true));
  recorder.on_event(event(3, 7, obs::SpanKind::kNicRx, false));
  recorder.on_event(event(3, 7, obs::SpanKind::kService, true, 100));
  recorder.on_event(event(8, 7, obs::SpanKind::kService, false, 100));
  recorder.on_event(event(8, 7, obs::SpanKind::kResponse, true, 100));
  recorder.on_event(event(10, 7, obs::SpanKind::kResponse, false));

  EXPECT_EQ(recorder.violations(), 0u);
  const auto completed = recorder.completed();
  ASSERT_EQ(completed.size(), 1u);
  const obs::RequestLifecycle& life = completed[0];
  EXPECT_EQ(life.request_id, 7u);
  EXPECT_TRUE(life.complete);
  ASSERT_EQ(life.spans.size(), 4u);
  // Tiling: span sum equals end-to-end.
  EXPECT_EQ(life.total(), life.end() - life.begin());
  EXPECT_EQ(life.total(), sim::Duration::micros(10));
  EXPECT_EQ(life.total_of(obs::SpanKind::kService), sim::Duration::micros(5));
  EXPECT_EQ(life.spans[2].component, 100u);
}

TEST(SpanRecorder, CountsViolationsWithoutThrowing) {
  obs::SpanRecorder recorder;
  // End with nothing open.
  recorder.on_event(event(1, 1, obs::SpanKind::kService, false));
  EXPECT_EQ(recorder.unmatched_ends(), 1u);
  // Begin over an already-open span.
  recorder.on_event(event(2, 2, obs::SpanKind::kClientWire, true));
  recorder.on_event(event(3, 2, obs::SpanKind::kNicRx, true));
  EXPECT_EQ(recorder.double_begins(), 1u);
  // Time going backwards.
  recorder.on_event(event(1, 2, obs::SpanKind::kClientWire, false));
  EXPECT_EQ(recorder.time_regressions(), 1u);
  EXPECT_EQ(recorder.violations(), 3u);
  EXPECT_TRUE(recorder.completed().empty());
}

TEST(SpanRecorder, PreemptedRequestAccumulatesServiceSegments) {
  obs::SpanRecorder recorder;
  recorder.on_event(event(0, 3, obs::SpanKind::kService, true));
  recorder.on_event(event(4, 3, obs::SpanKind::kService, false));
  recorder.on_event(event(4, 3, obs::SpanKind::kRequeue, true));
  recorder.on_event(event(6, 3, obs::SpanKind::kRequeue, false));
  recorder.on_event(event(6, 3, obs::SpanKind::kService, true));
  recorder.on_event(event(9, 3, obs::SpanKind::kService, false));
  EXPECT_EQ(recorder.violations(), 0u);
  const auto incomplete = recorder.incomplete();
  ASSERT_EQ(incomplete.size(), 1u);
  EXPECT_EQ(incomplete[0].total_of(obs::SpanKind::kService),
            sim::Duration::micros(7));
  EXPECT_EQ(incomplete[0].total_of(obs::SpanKind::kRequeue),
            sim::Duration::micros(2));
}

// The acceptance property: on a real run, every completed request's span sum
// equals the latency the client measured, for every modelled system.
class SpanEndToEnd : public testing::TestWithParam<core::SystemKind> {};

TEST_P(SpanEndToEnd, SpanSumsEqualMeasuredLatency) {
  obs::CaptureOptions options;
  options.enabled = true;
  options.metric_cadence = sim::Duration::micros(50);

  stats::ResponseLog log;
  auto config = core::ExperimentConfig::of(GetParam())
                    .workers(4)
                    .fixed_5us()
                    .load(150e3)
                    .clients(2, 16)
                    .measure_for(sim::Duration::millis(5))
                    .with_capture(options);
  config.warmup = sim::Duration::millis(1);
  config.response_log = &log;
  const core::ExperimentResult result = core::run_experiment(config);

  ASSERT_NE(result.capture, nullptr);
  const obs::SpanRecorder& spans = result.capture->spans();
  EXPECT_EQ(spans.violations(), 0u);
  const auto completed = spans.completed();
  ASSERT_GT(completed.size(), 100u);

  std::map<std::uint64_t, const obs::RequestLifecycle*> by_id;
  for (const auto& life : completed) by_id[life.request_id] = &life;

  std::size_t checked = 0;
  for (const auto& row : log.records()) {
    auto it = by_id.find(row.request_id);
    if (it == by_id.end()) continue;  // outside the capture window
    const obs::RequestLifecycle& life = *it->second;
    const sim::Duration measured = row.received_at - row.sent_at;
    // Tiling within the lifecycle...
    EXPECT_EQ(life.total(), life.end() - life.begin());
    // ...and the lifecycle covers exactly the client-observed interval.
    EXPECT_EQ(life.total(), measured) << "request " << row.request_id;
    ++checked;
  }
  EXPECT_GT(checked, 100u);

  // The sampler ran on its cadence and saw the telemetry gauges.
  ASSERT_NE(result.capture->metrics(), nullptr);
  EXPECT_GT(result.capture->metrics()->ticks(), 0u);
  EXPECT_NE(result.capture->metrics()->find("queue_depth"), nullptr);
}

INSTANTIATE_TEST_SUITE_P(AllSystems, SpanEndToEnd,
                         testing::Values(core::SystemKind::kShinjuku,
                                         core::SystemKind::kShinjukuOffload,
                                         core::SystemKind::kIdealNic,
                                         core::SystemKind::kRss),
                         [](const auto& info) {
                           std::string name = core::to_string(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(SpanZeroCost, DisabledCaptureEmitsNothing) {
  sim::Simulator sim;
  EXPECT_FALSE(sim.span_enabled());
  // With no sink installed span() is a no-op; nothing to observe, but the
  // call must be safe.
  sim.span(1, 0, true, 0);
}

}  // namespace
}  // namespace nicsched
