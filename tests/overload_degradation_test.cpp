// Overload control acceptance tests (DESIGN §11).
//
// The headline contract: at 2x saturation the informed dispatcher (EWMA
// admission + deadline shedding + adaptive-K) keeps goodput >= 70 % of its
// peak, while the same system with the counter-measures disabled collapses
// below 30 % — the hockey-stick the subsystem exists to remove. Plus the
// composition and accounting guarantees around it:
//
//  * the client conservation identity holds exactly at the end of a run:
//      sent == completed + rejected + expired + abandoned + outstanding
//  * adaptive-K composes with PR 3 fault injection: a mid-run worker stall
//    shrinks K and sheds load without losing a single non-shed request;
//  * an explicit all-off OverloadParams is indistinguishable from leaving
//    the config field unset (the env-resolution path) — the feature is
//    genuinely inert by default.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "core/testbed.h"
#include "fault/fault_schedule.h"
#include "overload/overload.h"

namespace nicsched {
namespace {

// 4 workers x 5 us fixed service: capacity 800 kRPS, so 1.6 MRPS is 2x
// saturation. Mirrors examples/overload_sweep.cpp.
constexpr double kCapacityRps = 800e3;

core::ExperimentConfig base_config(std::uint64_t seed) {
  return core::ExperimentConfig::offload()
      .workers(4)
      .outstanding(4)
      .fixed_5us()
      .samples(20'000)
      .with_seed(seed);
}

overload::OverloadParams informed_params() {
  overload::OverloadParams params;
  params.enabled = true;  // admission/shedding/adaptive-K on by default
  return params;
}

overload::OverloadParams no_control_params() {
  overload::OverloadParams params;
  params.enabled = true;  // deadlines tagged, nothing enforced
  params.admission_enabled = false;
  params.shedding_enabled = false;
  params.adaptive_k_enabled = false;
  return params;
}

std::vector<std::uint64_t> seeds() {
  if (std::getenv("NICSCHED_FAST") != nullptr) return {1};
  return {1, 2, 3};
}

void expect_conserved(const core::ExperimentResult::ClientTotals& t) {
  EXPECT_EQ(t.sent, t.completed + t.rejected + t.expired + t.abandoned +
                        t.outstanding);
}

TEST(OverloadDegradation, InformedControlKeepsGoodputAtTwiceSaturation) {
  for (const std::uint64_t seed : seeds()) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const auto near_peak = core::run_experiment(
        base_config(seed).load(0.875 * kCapacityRps).with_overload(
            informed_params()));
    const auto informed = core::run_experiment(
        base_config(seed).load(2.0 * kCapacityRps).with_overload(
            informed_params()));
    const auto uncontrolled = core::run_experiment(
        base_config(seed).load(2.0 * kCapacityRps).with_overload(
            no_control_params()));

    const double peak = std::max(near_peak.summary.goodput_rps,
                                 informed.summary.goodput_rps);
    ASSERT_GT(peak, 0.0);
    // ISSUE acceptance: informed control holds >= 70 % of peak goodput at
    // 2x saturation; without it goodput collapses below 30 %.
    EXPECT_GE(informed.summary.goodput_rps, 0.70 * peak);
    EXPECT_LT(uncontrolled.summary.goodput_rps, 0.30 * peak);
    // The informed run sheds explicitly: rejects on the wire, and the
    // accepted remainder completes inside the deadline.
    EXPECT_GT(informed.server.overload.rejected, 0u);
    EXPECT_EQ(uncontrolled.server.overload.rejected, 0u);
    expect_conserved(informed.clients);
    expect_conserved(uncontrolled.clients);
  }
}

TEST(OverloadDegradation, ConservationIdentityHoldsWithRetriesAndJitter) {
  // Retries + backoff jitter exercise every client-side counter at once:
  // timeouts fire (p99 under 2x overload exceeds the 100 us retry timeout),
  // rejections terminate retry chains, and the budget abandons the rest.
  overload::OverloadParams params = informed_params();
  params.retry_budget = 2;
  const auto result = core::run_experiment(
      base_config(7).load(2.0 * kCapacityRps).with_overload(params));

  const auto& t = result.clients;
  ASSERT_GT(t.sent, 10'000u);
  EXPECT_GT(t.rejected, 0u);
  EXPECT_GT(t.retries, 0u);
  expect_conserved(t);
}

TEST(OverloadDegradation, AdaptiveKComposesWithMidRunWorkerStall) {
  // PR 3 composition: repeated 300 us stalls on one worker mid-measurement.
  // With unreliable dispatch there is no liveness watchdog, so the stalled
  // worker survives, drains its local backlog after each stall, and
  // piggybacks ~300 us sojourn samples that drive the adaptive-K governor
  // over its 40 us shrink limit; once the backlog clears the samples fall
  // back and K is restored. Requests stuck behind the stall blow the 200 us
  // deadline and are shed at dispatch. Through all of it the conservation
  // identity must hold exactly — faults may shed or expire requests, never
  // lose one.
  fault::FaultSchedule schedule;
  for (int i = 0; i < 4; ++i) {
    schedule.stall_worker(sim::TimePoint::origin() +
                              sim::Duration::millis(10 + i),
                          0, sim::Duration::micros(300));
  }

  const auto result = core::run_experiment(base_config(5)
                                               .load(0.75 * kCapacityRps)
                                               .with_faults(schedule)
                                               .with_overload(informed_params()));

  ASSERT_GT(result.clients.sent, 10'000u);
  EXPECT_GT(result.server.overload.k_shrinks, 0u)
      << "the stall backlog never tripped the sojourn governor";
  EXPECT_GT(result.server.overload.k_restores, 0u)
      << "capacity was never restored after the backlog drained";
  EXPECT_GT(result.server.overload.shed_expired, 0u)
      << "no already-expired request was shed at dispatch";
  expect_conserved(result.clients);
}

TEST(OverloadDegradation, AdaptiveKComposesWithReliableReSteer) {
  // The same stalls under reliable dispatch (DESIGN §9): now the liveness
  // detector declares the stalled worker dead after consecutive RTO misses
  // and re-steers its in-flight assignments, and the adaptive-K governor
  // forgets the dead worker's sojourn history so its revival restarts from
  // full capacity. Recovery machinery plus overload control together must
  // still account for every request.
  fault::FaultSchedule schedule;
  for (int i = 0; i < 3; ++i) {
    schedule.stall_worker(sim::TimePoint::origin() +
                              sim::Duration::millis(10 + 2 * i),
                          0, sim::Duration::micros(300));
  }

  const auto result = core::run_experiment(base_config(5)
                                               .load(0.75 * kCapacityRps)
                                               .reliable()
                                               .with_faults(schedule)
                                               .with_overload(informed_params()));

  ASSERT_GT(result.clients.sent, 10'000u);
  EXPECT_GT(result.server.reliability.worker_deaths, 0u);
  EXPECT_GT(result.server.reliability.redispatched, 0u);
  // Re-steer loses nothing: everything the clients sent is accounted for.
  expect_conserved(result.clients);
  EXPECT_EQ(result.clients.outstanding, 0u);
  EXPECT_EQ(result.clients.abandoned, 0u);
}

TEST(OverloadDegradation, ExplicitlyDisabledMatchesUnsetConfig) {
  // Leaving `overload` unset resolves via the NICSCHED_OVERLOAD_* env
  // contract; with a clean environment that is all-off. Both paths must
  // produce the same run, and an all-off run must show zero overload
  // activity with goodput degenerating to plain completions.
  const auto unset = core::run_experiment(base_config(3).load(600e3));
  const auto disabled = core::run_experiment(
      base_config(3).load(600e3).with_overload(overload::OverloadParams{}));

  EXPECT_EQ(unset.summary.completed, disabled.summary.completed);
  EXPECT_EQ(unset.summary.goodput, disabled.summary.goodput);
  EXPECT_EQ(unset.summary.p50_us, disabled.summary.p50_us);
  EXPECT_EQ(unset.summary.p99_us, disabled.summary.p99_us);
  EXPECT_EQ(unset.server.requests_received, disabled.server.requests_received);
  EXPECT_EQ(unset.server.responses_sent, disabled.server.responses_sent);
  EXPECT_TRUE(unset.server.overload == disabled.server.overload);
  EXPECT_EQ(unset.events_fired, disabled.events_fired);

  // Inert means inert: no rejects, no shedding, no K movement, and every
  // completion counts as goodput because no deadline was assigned.
  EXPECT_EQ(disabled.server.overload.rejected, 0u);
  EXPECT_EQ(disabled.server.overload.shed_expired, 0u);
  EXPECT_EQ(disabled.server.overload.k_shrinks, 0u);
  EXPECT_EQ(disabled.summary.goodput, disabled.summary.completed);
  EXPECT_EQ(disabled.clients.rejected, 0u);
  EXPECT_EQ(disabled.clients.expired, 0u);
  expect_conserved(disabled.clients);
}

}  // namespace
}  // namespace nicsched
