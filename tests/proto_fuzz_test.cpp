// Robustness properties of every wire parser: random bytes and random
// single-bit mutations of valid messages must never crash, and accepted
// parses of mutated input must still satisfy basic invariants.
#include <gtest/gtest.h>

#include <vector>

#include "net/packet.h"
#include "proto/messages.h"
#include "sim/random.h"

namespace nicsched {
namespace {

std::vector<std::uint8_t> random_bytes(sim::Rng& rng, std::size_t max_len) {
  std::vector<std::uint8_t> bytes(rng.uniform_int(0, max_len));
  for (auto& byte : bytes) {
    byte = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  return bytes;
}

class ProtoFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProtoFuzz, RandomBytesNeverCrashAnyParser) {
  sim::Rng rng(GetParam());
  for (int trial = 0; trial < 2000; ++trial) {
    const auto bytes = random_bytes(rng, 128);
    (void)proto::peek_type(bytes);
    (void)proto::RequestMessage::parse(bytes);
    (void)proto::RequestDescriptor::parse(bytes,
                                          proto::MessageType::kAssignment);
    (void)proto::RequestDescriptor::parse(bytes,
                                          proto::MessageType::kPreemption);
    (void)proto::CompletionMessage::parse(bytes);
    (void)proto::ResponseMessage::parse(bytes);
    (void)proto::SequencedAssignment::parse(bytes);
    (void)proto::AckMessage::parse(bytes, proto::MessageType::kDispatchAck);
    (void)proto::AckMessage::parse(bytes, proto::MessageType::kNoteAck);
    (void)proto::SequencedNote::parse(bytes);
    (void)proto::RejectMessage::parse(bytes);
    (void)proto::RdmaRunQueueEntry::parse(bytes);
    (void)proto::RdmaCqEntry::parse(bytes);
    (void)proto::ProbeMessage::parse(bytes, proto::MessageType::kHealthProbe);
    (void)proto::ProbeMessage::parse(bytes,
                                     proto::MessageType::kHealthProbeAck);
    (void)proto::CancelMessage::parse(bytes);
    (void)net::parse_udp_datagram(net::Packet(bytes));
  }
}

TEST_P(ProtoFuzz, TruncationsOfReliableMessagesAreRejectedNotCrashing) {
  proto::RequestDescriptor descriptor;
  descriptor.request_id = 7;
  descriptor.remaining_ps = 123;

  const auto assignment =
      proto::SequencedAssignment{11, descriptor}.serialize();
  for (std::size_t len = 0; len < assignment.size(); ++len) {
    auto truncated = assignment;
    truncated.resize(len);
    EXPECT_FALSE(proto::SequencedAssignment::parse(truncated).has_value())
        << "accepted a " << len << "-byte truncation";
  }
  EXPECT_TRUE(proto::SequencedAssignment::parse(assignment).has_value());

  proto::SequencedNote note;
  note.seq = 12;
  note.worker_id = 2;
  note.preempted = true;
  note.descriptor = descriptor;
  const auto note_bytes = note.serialize();
  for (std::size_t len = 0; len < note_bytes.size(); ++len) {
    auto truncated = note_bytes;
    truncated.resize(len);
    EXPECT_FALSE(proto::SequencedNote::parse(truncated).has_value())
        << "accepted a " << len << "-byte truncation";
  }
  EXPECT_TRUE(proto::SequencedNote::parse(note_bytes).has_value());

  const auto ack =
      proto::AckMessage{13, 4}.serialize(proto::MessageType::kNoteAck);
  for (std::size_t len = 0; len < ack.size(); ++len) {
    auto truncated = ack;
    truncated.resize(len);
    EXPECT_FALSE(
        proto::AckMessage::parse(truncated, proto::MessageType::kNoteAck)
            .has_value())
        << "accepted a " << len << "-byte truncation";
  }
  EXPECT_TRUE(proto::AckMessage::parse(ack, proto::MessageType::kNoteAck)
                  .has_value());
}

TEST_P(ProtoFuzz, MutatedDatagramsNeverCrashAndParseConsistently) {
  sim::Rng rng(GetParam() + 1000);
  net::DatagramAddress address;
  address.src_mac = net::MacAddress::from_index(1);
  address.dst_mac = net::MacAddress::from_index(2);
  address.src_ip = net::Ipv4Address::from_index(1);
  address.dst_ip = net::Ipv4Address::from_index(2);
  address.src_port = 1111;
  address.dst_port = 8080;

  proto::RequestMessage request;
  request.request_id = 42;
  request.work_ps = 5'000'000;
  const net::Packet valid =
      net::make_udp_datagram(address, request.serialize());

  for (int trial = 0; trial < 2000; ++trial) {
    auto bytes =
        std::vector<std::uint8_t>(valid.bytes().begin(), valid.bytes().end());
    // A single random bit flip. One's-complement checksums always detect a
    // single-bit error (multi-bit flips can cancel — that is a genuine
    // limitation of the real 16-bit internet checksum, not a parser bug).
    const std::size_t index = rng.uniform_int(0, bytes.size() - 1);
    bytes[index] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
    const auto view = net::parse_udp_datagram(net::Packet(std::move(bytes)));
    if (index < net::EthernetHeader::kSize) {
      // Ethernet bytes are not covered by a checksum here (the link CRC is
      // assumed checked); the datagram still parses and the payload —
      // untouched — must survive intact.
      if (view) {
        const auto parsed = proto::RequestMessage::parse(view->payload);
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(parsed->work_ps, request.work_ps);
      }
    } else {
      EXPECT_FALSE(view.has_value())
          << "single-bit flip at byte " << index << " not detected";
    }
  }
}

TEST_P(ProtoFuzz, TruncationsOfValidMessagesAreRejectedNotCrashing) {
  sim::Rng rng(GetParam() + 2000);
  proto::RequestDescriptor descriptor;
  descriptor.request_id = 7;
  descriptor.remaining_ps = 123;
  const auto full = descriptor.serialize(proto::MessageType::kAssignment);
  for (std::size_t len = 0; len < full.size(); ++len) {
    auto truncated = full;
    truncated.resize(len);
    EXPECT_FALSE(proto::RequestDescriptor::parse(
                     truncated, proto::MessageType::kAssignment)
                     .has_value())
        << "accepted a " << len << "-byte truncation";
  }
  // The untruncated original round-trips.
  EXPECT_TRUE(proto::RequestDescriptor::parse(full,
                                              proto::MessageType::kAssignment)
                  .has_value());
}

TEST_P(ProtoFuzz, TruncationsOfExtendedAndRejectMessagesAreRejected) {
  // Version-2 frames (DESIGN §11) are fixed-size per version: a truncated
  // extended frame must be rejected outright, never mis-parsed as its
  // shorter version-1 layout with the extended fields silently dropped.
  proto::RequestMessage request;
  request.request_id = 7;
  request.work_ps = 123;
  request.deadline_ps = 99'000'000;  // forces version 2
  request.padding = 16;
  const auto request_bytes = request.serialize();
  for (std::size_t len = 0; len < request_bytes.size(); ++len) {
    auto truncated = request_bytes;
    truncated.resize(len);
    EXPECT_FALSE(proto::RequestMessage::parse(truncated).has_value())
        << "accepted a " << len << "-byte truncation";
  }
  const auto request_parsed = proto::RequestMessage::parse(request_bytes);
  ASSERT_TRUE(request_parsed.has_value());
  EXPECT_EQ(*request_parsed, request);

  proto::RequestDescriptor descriptor;
  descriptor.request_id = 7;
  descriptor.remaining_ps = 123;
  descriptor.deadline_ps = 99'000'000;
  const auto descriptor_bytes =
      descriptor.serialize(proto::MessageType::kAssignment);
  for (std::size_t len = 0; len < descriptor_bytes.size(); ++len) {
    auto truncated = descriptor_bytes;
    truncated.resize(len);
    EXPECT_FALSE(proto::RequestDescriptor::parse(
                     truncated, proto::MessageType::kAssignment)
                     .has_value())
        << "accepted a " << len << "-byte truncation";
  }
  const auto descriptor_parsed = proto::RequestDescriptor::parse(
      descriptor_bytes, proto::MessageType::kAssignment);
  ASSERT_TRUE(descriptor_parsed.has_value());
  EXPECT_EQ(*descriptor_parsed, descriptor);

  proto::CompletionMessage completion;
  completion.request_id = 9;
  completion.worker_id = 1;
  completion.has_sojourn = true;
  completion.sojourn_ps = 0;  // zero sample is legitimate and must survive
  const auto completion_bytes = completion.serialize();
  for (std::size_t len = 0; len < completion_bytes.size(); ++len) {
    auto truncated = completion_bytes;
    truncated.resize(len);
    EXPECT_FALSE(proto::CompletionMessage::parse(truncated).has_value())
        << "accepted a " << len << "-byte truncation";
  }
  const auto completion_parsed =
      proto::CompletionMessage::parse(completion_bytes);
  ASSERT_TRUE(completion_parsed.has_value());
  EXPECT_EQ(*completion_parsed, completion);

  proto::SequencedNote note;
  note.seq = 12;
  note.worker_id = 2;
  note.descriptor = descriptor;
  note.has_sojourn = true;
  note.sojourn_ps = 44'000'000;
  const auto note_bytes = note.serialize();
  for (std::size_t len = 0; len < note_bytes.size(); ++len) {
    auto truncated = note_bytes;
    truncated.resize(len);
    EXPECT_FALSE(proto::SequencedNote::parse(truncated).has_value())
        << "accepted a " << len << "-byte truncation";
  }
  const auto note_parsed = proto::SequencedNote::parse(note_bytes);
  ASSERT_TRUE(note_parsed.has_value());
  EXPECT_EQ(*note_parsed, note);

  proto::RejectMessage reject;
  reject.request_id = 5;
  reject.client_id = 3;
  reject.queue_depth = 512;
  const auto reject_bytes = reject.serialize();
  for (std::size_t len = 0; len < reject_bytes.size(); ++len) {
    auto truncated = reject_bytes;
    truncated.resize(len);
    EXPECT_FALSE(proto::RejectMessage::parse(truncated).has_value())
        << "accepted a " << len << "-byte truncation";
  }
  const auto reject_parsed = proto::RejectMessage::parse(reject_bytes);
  ASSERT_TRUE(reject_parsed.has_value());
  EXPECT_EQ(*reject_parsed, reject);
}

TEST_P(ProtoFuzz, CorruptedSojournFlagBytesAreRejectedNotCrashing) {
  // The explicit sojourn-presence flag must be 0 or 1; every other value is
  // a corrupted frame and must fail the parse, whatever the rest holds.
  proto::CompletionMessage completion;
  completion.request_id = 9;
  completion.has_sojourn = true;
  completion.sojourn_ps = 1'000'000;
  auto completion_bytes = completion.serialize();
  const std::size_t completion_flag = 4 + 8 + 4;  // header + id + worker

  proto::SequencedNote note;
  note.seq = 12;
  note.has_sojourn = true;
  auto note_bytes = note.serialize();
  const std::size_t note_flag = 4 + 8 + 4 + 1;  // header + seq + worker + flag

  sim::Rng rng(GetParam() + 3000);
  for (int trial = 0; trial < 200; ++trial) {
    const auto bad = static_cast<std::uint8_t>(rng.uniform_int(2, 255));
    completion_bytes[completion_flag] = bad;
    EXPECT_FALSE(proto::CompletionMessage::parse(completion_bytes).has_value())
        << "accepted sojourn flag " << int(bad);
    note_bytes[note_flag] = bad;
    EXPECT_FALSE(proto::SequencedNote::parse(note_bytes).has_value())
        << "accepted sojourn flag " << int(bad);
  }
}

TEST_P(ProtoFuzz, TruncationsOfRdmaFramesNeverAliasAndRoundTripExactly) {
  // The RDMA dispatch frames (DESIGN §15) follow the same fixed-size-per-
  // version discipline as the reliable UDP frames: any truncation of a v1 or
  // v2 frame is rejected outright — it must never alias the shorter layout
  // of its own type nor parse as any other message — and the untruncated
  // frame round-trips field-exactly.
  proto::RequestDescriptor plain;
  plain.request_id = 7;
  plain.remaining_ps = 123;
  proto::RequestDescriptor extended = plain;
  extended.deadline_ps = 99'000'000;  // promotes the descriptor body to v2

  for (const auto& descriptor : {plain, extended}) {
    proto::RdmaRunQueueEntry entry;
    entry.seq = 11;
    entry.descriptor = descriptor;
    const auto entry_bytes = entry.serialize();
    for (std::size_t len = 0; len < entry_bytes.size(); ++len) {
      auto truncated = entry_bytes;
      truncated.resize(len);
      EXPECT_FALSE(proto::RdmaRunQueueEntry::parse(truncated).has_value())
          << "accepted a " << len << "-byte truncation";
      EXPECT_FALSE(proto::RdmaCqEntry::parse(truncated).has_value());
      EXPECT_FALSE(proto::SequencedAssignment::parse(truncated).has_value());
    }
    const auto entry_parsed = proto::RdmaRunQueueEntry::parse(entry_bytes);
    ASSERT_TRUE(entry_parsed.has_value());
    EXPECT_EQ(*entry_parsed, entry);
  }

  proto::RdmaCqEntry cqe;
  cqe.seq = 12;
  cqe.worker_id = 2;
  cqe.cq_kind = proto::RdmaCqKind::kPreempted;
  cqe.descriptor = plain;
  for (const bool sojourn : {false, true}) {
    cqe.has_sojourn = sojourn;
    cqe.sojourn_ps = sojourn ? 44'000'000 : 0;
    const auto cqe_bytes = cqe.serialize();
    for (std::size_t len = 0; len < cqe_bytes.size(); ++len) {
      auto truncated = cqe_bytes;
      truncated.resize(len);
      EXPECT_FALSE(proto::RdmaCqEntry::parse(truncated).has_value())
          << "accepted a " << len << "-byte truncation";
      EXPECT_FALSE(proto::RdmaRunQueueEntry::parse(truncated).has_value());
      EXPECT_FALSE(proto::SequencedNote::parse(truncated).has_value());
    }
    const auto cqe_parsed = proto::RdmaCqEntry::parse(cqe_bytes);
    ASSERT_TRUE(cqe_parsed.has_value());
    EXPECT_EQ(*cqe_parsed, cqe);
  }
}

TEST_P(ProtoFuzz, CorruptedRdmaCqKindAndFlagBytesAreRejectedNotCrashing) {
  // The CQE kind byte admits exactly {started, completed, preempted} and the
  // v2 sojourn-presence flag admits exactly {0, 1}; every other value is a
  // corrupted frame and must fail the parse, whatever the rest holds.
  proto::RdmaCqEntry cqe;
  cqe.seq = 9;
  cqe.worker_id = 1;
  cqe.has_sojourn = true;
  cqe.sojourn_ps = 1'000'000;
  auto bytes = cqe.serialize();
  const std::size_t kind_at = 4 + 8 + 4;  // header + seq + worker
  const std::size_t flag_at = kind_at + 1;

  sim::Rng rng(GetParam() + 4000);
  for (int trial = 0; trial < 200; ++trial) {
    auto bad_kind = bytes;
    bad_kind[kind_at] = static_cast<std::uint8_t>(rng.uniform_int(3, 255));
    EXPECT_FALSE(proto::RdmaCqEntry::parse(bad_kind).has_value())
        << "accepted cq kind " << int(bad_kind[kind_at]);
    auto bad_flag = bytes;
    bad_flag[flag_at] = static_cast<std::uint8_t>(rng.uniform_int(2, 255));
    EXPECT_FALSE(proto::RdmaCqEntry::parse(bad_flag).has_value())
        << "accepted sojourn flag " << int(bad_flag[flag_at]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtoFuzz, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace nicsched
