// Robustness properties of every wire parser: random bytes and random
// single-bit mutations of valid messages must never crash, and accepted
// parses of mutated input must still satisfy basic invariants.
#include <gtest/gtest.h>

#include <vector>

#include "net/packet.h"
#include "proto/messages.h"
#include "sim/random.h"

namespace nicsched {
namespace {

std::vector<std::uint8_t> random_bytes(sim::Rng& rng, std::size_t max_len) {
  std::vector<std::uint8_t> bytes(rng.uniform_int(0, max_len));
  for (auto& byte : bytes) {
    byte = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  return bytes;
}

class ProtoFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProtoFuzz, RandomBytesNeverCrashAnyParser) {
  sim::Rng rng(GetParam());
  for (int trial = 0; trial < 2000; ++trial) {
    const auto bytes = random_bytes(rng, 128);
    (void)proto::peek_type(bytes);
    (void)proto::RequestMessage::parse(bytes);
    (void)proto::RequestDescriptor::parse(bytes,
                                          proto::MessageType::kAssignment);
    (void)proto::RequestDescriptor::parse(bytes,
                                          proto::MessageType::kPreemption);
    (void)proto::CompletionMessage::parse(bytes);
    (void)proto::ResponseMessage::parse(bytes);
    (void)proto::SequencedAssignment::parse(bytes);
    (void)proto::AckMessage::parse(bytes, proto::MessageType::kDispatchAck);
    (void)proto::AckMessage::parse(bytes, proto::MessageType::kNoteAck);
    (void)proto::SequencedNote::parse(bytes);
    (void)net::parse_udp_datagram(net::Packet(bytes));
  }
}

TEST_P(ProtoFuzz, TruncationsOfReliableMessagesAreRejectedNotCrashing) {
  proto::RequestDescriptor descriptor;
  descriptor.request_id = 7;
  descriptor.remaining_ps = 123;

  const auto assignment =
      proto::SequencedAssignment{11, descriptor}.serialize();
  for (std::size_t len = 0; len < assignment.size(); ++len) {
    auto truncated = assignment;
    truncated.resize(len);
    EXPECT_FALSE(proto::SequencedAssignment::parse(truncated).has_value())
        << "accepted a " << len << "-byte truncation";
  }
  EXPECT_TRUE(proto::SequencedAssignment::parse(assignment).has_value());

  proto::SequencedNote note;
  note.seq = 12;
  note.worker_id = 2;
  note.preempted = true;
  note.descriptor = descriptor;
  const auto note_bytes = note.serialize();
  for (std::size_t len = 0; len < note_bytes.size(); ++len) {
    auto truncated = note_bytes;
    truncated.resize(len);
    EXPECT_FALSE(proto::SequencedNote::parse(truncated).has_value())
        << "accepted a " << len << "-byte truncation";
  }
  EXPECT_TRUE(proto::SequencedNote::parse(note_bytes).has_value());

  const auto ack =
      proto::AckMessage{13, 4}.serialize(proto::MessageType::kNoteAck);
  for (std::size_t len = 0; len < ack.size(); ++len) {
    auto truncated = ack;
    truncated.resize(len);
    EXPECT_FALSE(
        proto::AckMessage::parse(truncated, proto::MessageType::kNoteAck)
            .has_value())
        << "accepted a " << len << "-byte truncation";
  }
  EXPECT_TRUE(proto::AckMessage::parse(ack, proto::MessageType::kNoteAck)
                  .has_value());
}

TEST_P(ProtoFuzz, MutatedDatagramsNeverCrashAndParseConsistently) {
  sim::Rng rng(GetParam() + 1000);
  net::DatagramAddress address;
  address.src_mac = net::MacAddress::from_index(1);
  address.dst_mac = net::MacAddress::from_index(2);
  address.src_ip = net::Ipv4Address::from_index(1);
  address.dst_ip = net::Ipv4Address::from_index(2);
  address.src_port = 1111;
  address.dst_port = 8080;

  proto::RequestMessage request;
  request.request_id = 42;
  request.work_ps = 5'000'000;
  const net::Packet valid =
      net::make_udp_datagram(address, request.serialize());

  for (int trial = 0; trial < 2000; ++trial) {
    auto bytes =
        std::vector<std::uint8_t>(valid.bytes().begin(), valid.bytes().end());
    // A single random bit flip. One's-complement checksums always detect a
    // single-bit error (multi-bit flips can cancel — that is a genuine
    // limitation of the real 16-bit internet checksum, not a parser bug).
    const std::size_t index = rng.uniform_int(0, bytes.size() - 1);
    bytes[index] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
    const auto view = net::parse_udp_datagram(net::Packet(std::move(bytes)));
    if (index < net::EthernetHeader::kSize) {
      // Ethernet bytes are not covered by a checksum here (the link CRC is
      // assumed checked); the datagram still parses and the payload —
      // untouched — must survive intact.
      if (view) {
        const auto parsed = proto::RequestMessage::parse(view->payload);
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(parsed->work_ps, request.work_ps);
      }
    } else {
      EXPECT_FALSE(view.has_value())
          << "single-bit flip at byte " << index << " not detected";
    }
  }
}

TEST_P(ProtoFuzz, TruncationsOfValidMessagesAreRejectedNotCrashing) {
  sim::Rng rng(GetParam() + 2000);
  proto::RequestDescriptor descriptor;
  descriptor.request_id = 7;
  descriptor.remaining_ps = 123;
  const auto full = descriptor.serialize(proto::MessageType::kAssignment);
  for (std::size_t len = 0; len < full.size(); ++len) {
    auto truncated = full;
    truncated.resize(len);
    EXPECT_FALSE(proto::RequestDescriptor::parse(
                     truncated, proto::MessageType::kAssignment)
                     .has_value())
        << "accepted a " << len << "-byte truncation";
  }
  // The untruncated original round-trips.
  EXPECT_TRUE(proto::RequestDescriptor::parse(full,
                                              proto::MessageType::kAssignment)
                  .has_value());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtoFuzz, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace nicsched
