#include "proto/messages.h"

#include <gtest/gtest.h>

namespace nicsched::proto {
namespace {

RequestDescriptor sample_descriptor() {
  RequestDescriptor descriptor;
  descriptor.request_id = 0x0102030405060708ULL;
  descriptor.client_id = 7;
  descriptor.kind = 1;
  descriptor.remaining_ps = 55'000'000;
  descriptor.total_ps = 100'000'000;
  descriptor.preempt_count = 3;
  descriptor.client_mac = net::MacAddress::from_index(42);
  descriptor.client_ip = net::Ipv4Address(10, 0, 0, 42);
  descriptor.client_port = 20017;
  return descriptor;
}

TEST(RequestMessage, RoundTrip) {
  RequestMessage message;
  message.request_id = 99;
  message.client_id = 3;
  message.kind = 2;
  message.work_ps = 5'000'000;
  message.padding = 40;

  const auto bytes = message.serialize();
  EXPECT_EQ(bytes.size(), 4u + 24u + 40u);  // header + body + padding
  const auto parsed = RequestMessage::parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, message);
}

TEST(RequestMessage, PaddingControlsWireSize) {
  RequestMessage small;
  small.padding = 0;
  RequestMessage large;
  large.padding = 996;
  EXPECT_EQ(large.serialize().size() - small.serialize().size(), 996u);
}

TEST(RequestMessage, ParseRejectsTruncatedPadding) {
  RequestMessage message;
  message.padding = 100;
  auto bytes = message.serialize();
  bytes.resize(bytes.size() - 50);
  EXPECT_FALSE(RequestMessage::parse(bytes).has_value());
}

TEST(RequestDescriptor, RoundTripAsAssignmentAndPreemption) {
  const RequestDescriptor descriptor = sample_descriptor();
  for (const MessageType type :
       {MessageType::kAssignment, MessageType::kPreemption}) {
    const auto bytes = descriptor.serialize(type);
    const auto parsed = RequestDescriptor::parse(bytes, type);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, descriptor);
  }
}

TEST(RequestDescriptor, TypeMismatchRejected) {
  const auto bytes = sample_descriptor().serialize(MessageType::kAssignment);
  EXPECT_FALSE(
      RequestDescriptor::parse(bytes, MessageType::kPreemption).has_value());
  EXPECT_FALSE(
      RequestDescriptor::parse(bytes, MessageType::kRequest).has_value());
}

TEST(CompletionMessage, RoundTrip) {
  CompletionMessage message;
  message.request_id = 12345;
  message.worker_id = 9;
  const auto parsed = CompletionMessage::parse(message.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, message);
}

TEST(ResponseMessage, RoundTrip) {
  ResponseMessage message;
  message.request_id = 777;
  message.client_id = 4;
  message.kind = 1;
  message.preempt_count = 10;
  const auto parsed = ResponseMessage::parse(message.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, message);
}

TEST(SequencedAssignment, RoundTrip) {
  SequencedAssignment message;
  message.seq = 0xDEADBEEFCAFE0001ULL;
  message.descriptor = sample_descriptor();
  const auto parsed = SequencedAssignment::parse(message.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, message);
}

TEST(SequencedAssignment, ParseRejectsTruncation) {
  const SequencedAssignment message{1, sample_descriptor()};
  auto bytes = message.serialize();
  for (std::size_t cut = 1; cut <= bytes.size(); cut += 7) {
    auto truncated = bytes;
    truncated.resize(bytes.size() - cut);
    EXPECT_FALSE(SequencedAssignment::parse(truncated).has_value());
  }
}

TEST(AckMessage, RoundTripBothAckTypes) {
  AckMessage message;
  message.seq = 42;
  message.worker_id = 3;
  for (const MessageType type :
       {MessageType::kDispatchAck, MessageType::kNoteAck}) {
    const auto parsed = AckMessage::parse(message.serialize(type), type);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, message);
  }
}

TEST(AckMessage, TypeMismatchRejected) {
  AckMessage message;
  message.seq = 7;
  const auto bytes = message.serialize(MessageType::kDispatchAck);
  EXPECT_FALSE(AckMessage::parse(bytes, MessageType::kNoteAck).has_value());
  // Non-ack expected types are rejected outright.
  EXPECT_FALSE(AckMessage::parse(bytes, MessageType::kRequest).has_value());
}

TEST(SequencedNote, RoundTripCompletionAndPreemption) {
  SequencedNote message;
  message.seq = 0x1122334455667788ULL;
  message.worker_id = 6;
  message.descriptor = sample_descriptor();
  for (const bool preempted : {false, true}) {
    message.preempted = preempted;
    const auto parsed = SequencedNote::parse(message.serialize());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, message);
  }
}

TEST(SequencedNote, ParseRejectsBadFlagAndTruncation) {
  SequencedNote message;
  message.seq = 9;
  message.worker_id = 1;
  message.descriptor = sample_descriptor();
  auto bytes = message.serialize();
  // The preempted flag byte sits after seq (8) + worker (4) in the body.
  auto bad_flag = bytes;
  bad_flag[4 + 8 + 4] = 2;
  EXPECT_FALSE(SequencedNote::parse(bad_flag).has_value());
  auto truncated = bytes;
  truncated.resize(truncated.size() - 1);
  EXPECT_FALSE(SequencedNote::parse(truncated).has_value());
}

TEST(PeekType, IdentifiesReliableTypes) {
  EXPECT_EQ(peek_type(SequencedAssignment{1, sample_descriptor()}.serialize()),
            MessageType::kSequencedAssignment);
  EXPECT_EQ(peek_type(AckMessage{}.serialize(MessageType::kDispatchAck)),
            MessageType::kDispatchAck);
  EXPECT_EQ(peek_type(AckMessage{}.serialize(MessageType::kNoteAck)),
            MessageType::kNoteAck);
  SequencedNote note;
  note.descriptor = sample_descriptor();
  EXPECT_EQ(peek_type(note.serialize()), MessageType::kSequencedNote);
}

TEST(PeekType, IdentifiesAllTypes) {
  RequestMessage request;
  EXPECT_EQ(peek_type(request.serialize()), MessageType::kRequest);
  EXPECT_EQ(peek_type(sample_descriptor().serialize(MessageType::kAssignment)),
            MessageType::kAssignment);
  EXPECT_EQ(peek_type(sample_descriptor().serialize(MessageType::kPreemption)),
            MessageType::kPreemption);
  EXPECT_EQ(peek_type(CompletionMessage{}.serialize()),
            MessageType::kCompletion);
  EXPECT_EQ(peek_type(ResponseMessage{}.serialize()), MessageType::kResponse);
}

TEST(PeekType, RejectsGarbage) {
  EXPECT_FALSE(peek_type({}).has_value());
  const std::vector<std::uint8_t> short_payload = {0x4E, 0x53};
  EXPECT_FALSE(peek_type(short_payload).has_value());
  const std::vector<std::uint8_t> bad_magic = {0x00, 0x00, 1, 1, 0, 0, 0, 0};
  EXPECT_FALSE(peek_type(bad_magic).has_value());
  const std::vector<std::uint8_t> bad_version = {0x4E, 0x53, 9, 1};
  EXPECT_FALSE(peek_type(bad_version).has_value());
  const std::vector<std::uint8_t> bad_type = {0x4E, 0x53, 1, 99};
  EXPECT_FALSE(peek_type(bad_type).has_value());
}

TEST(AllMessages, ParseRejectsWrongMagicVersionTruncation) {
  auto bytes = sample_descriptor().serialize(MessageType::kAssignment);

  auto bad_magic = bytes;
  bad_magic[0] = 0xFF;
  EXPECT_FALSE(RequestDescriptor::parse(bad_magic, MessageType::kAssignment)
                   .has_value());

  auto bad_version = bytes;
  bad_version[2] = 99;
  EXPECT_FALSE(RequestDescriptor::parse(bad_version, MessageType::kAssignment)
                   .has_value());

  auto truncated = bytes;
  truncated.resize(truncated.size() - 1);
  EXPECT_FALSE(RequestDescriptor::parse(truncated, MessageType::kAssignment)
                   .has_value());
}

}  // namespace
}  // namespace nicsched::proto
