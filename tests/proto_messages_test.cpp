#include "proto/messages.h"

#include <gtest/gtest.h>

namespace nicsched::proto {
namespace {

RequestDescriptor sample_descriptor() {
  RequestDescriptor descriptor;
  descriptor.request_id = 0x0102030405060708ULL;
  descriptor.client_id = 7;
  descriptor.kind = 1;
  descriptor.remaining_ps = 55'000'000;
  descriptor.total_ps = 100'000'000;
  descriptor.preempt_count = 3;
  descriptor.client_mac = net::MacAddress::from_index(42);
  descriptor.client_ip = net::Ipv4Address(10, 0, 0, 42);
  descriptor.client_port = 20017;
  return descriptor;
}

TEST(RequestMessage, RoundTrip) {
  RequestMessage message;
  message.request_id = 99;
  message.client_id = 3;
  message.kind = 2;
  message.work_ps = 5'000'000;
  message.padding = 40;

  const auto bytes = message.serialize();
  EXPECT_EQ(bytes.size(), 4u + 24u + 40u);  // header + body + padding
  const auto parsed = RequestMessage::parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, message);
}

TEST(RequestMessage, PaddingControlsWireSize) {
  RequestMessage small;
  small.padding = 0;
  RequestMessage large;
  large.padding = 996;
  EXPECT_EQ(large.serialize().size() - small.serialize().size(), 996u);
}

TEST(RequestMessage, DeadlineForcesVersion2AndRoundTrips) {
  RequestMessage message;
  message.request_id = 99;
  message.work_ps = 5'000'000;
  message.deadline_ps = 777'000'000;
  message.padding = 8;

  const auto bytes = message.serialize();
  EXPECT_EQ(bytes[2], kVersionExtended);
  EXPECT_EQ(bytes.size(), 4u + 34u + 8u);  // header + v2 body + padding
  const auto parsed = RequestMessage::parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, message);

  // Zero deadline emits the legacy version-1 frame bit for bit — overload
  // control off means nothing changes on the wire.
  message.deadline_ps = 0;
  const auto v1 = message.serialize();
  EXPECT_EQ(v1[2], kVersion);
  EXPECT_EQ(v1.size(), 4u + 24u + 8u);
}

TEST(RequestMessage, TenantForcesVersion2AndRoundTrips) {
  RequestMessage message;
  message.request_id = 100;
  message.work_ps = 5'000'000;
  message.tenant = 7;  // no deadline: the tenant tag alone promotes
  message.padding = 4;

  const auto bytes = message.serialize();
  EXPECT_EQ(bytes[2], kVersionExtended);
  EXPECT_EQ(bytes.size(), 4u + 34u + 4u);
  const auto parsed = RequestMessage::parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, message);
  EXPECT_EQ(parsed->tenant, 7);

  // Tenant 0 (untenanted) with no deadline stays a version-1 frame.
  message.tenant = 0;
  EXPECT_EQ(message.serialize()[2], kVersion);
}

TEST(RequestDescriptor, TenantForcesVersion2AndRoundTrips) {
  RequestDescriptor descriptor = sample_descriptor();
  descriptor.tenant = 3;
  for (const MessageType type :
       {MessageType::kAssignment, MessageType::kPreemption}) {
    const auto bytes = descriptor.serialize(type);
    EXPECT_EQ(bytes[2], kVersionExtended);
    const auto parsed = RequestDescriptor::parse(bytes, type);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, descriptor);
  }
  descriptor.tenant = 0;
  EXPECT_EQ(descriptor.serialize(MessageType::kAssignment)[2], kVersion);
}

TEST(RequestMessage, TruncatedVersion2NeverAliasesToVersion1) {
  RequestMessage message;
  message.deadline_ps = 1;
  message.padding = 0;
  auto bytes = message.serialize();
  // Cut the frame down to exactly the version-1 size: the header still says
  // version 2, so the fixed v2 layout no longer fits and the parse fails
  // rather than silently dropping the deadline.
  bytes.resize(4 + 24 + 2);
  EXPECT_FALSE(RequestMessage::parse(bytes).has_value());
}

TEST(RequestMessage, ParseRejectsTruncatedPadding) {
  RequestMessage message;
  message.padding = 100;
  auto bytes = message.serialize();
  bytes.resize(bytes.size() - 50);
  EXPECT_FALSE(RequestMessage::parse(bytes).has_value());
}

TEST(RequestDescriptor, RoundTripAsAssignmentAndPreemption) {
  const RequestDescriptor descriptor = sample_descriptor();
  for (const MessageType type :
       {MessageType::kAssignment, MessageType::kPreemption}) {
    const auto bytes = descriptor.serialize(type);
    const auto parsed = RequestDescriptor::parse(bytes, type);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, descriptor);
  }
}

TEST(RequestDescriptor, TypeMismatchRejected) {
  const auto bytes = sample_descriptor().serialize(MessageType::kAssignment);
  EXPECT_FALSE(
      RequestDescriptor::parse(bytes, MessageType::kPreemption).has_value());
  EXPECT_FALSE(
      RequestDescriptor::parse(bytes, MessageType::kRequest).has_value());
}

TEST(CompletionMessage, RoundTrip) {
  CompletionMessage message;
  message.request_id = 12345;
  message.worker_id = 9;
  const auto parsed = CompletionMessage::parse(message.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, message);
}

TEST(RequestDescriptor, DeadlineForcesVersion2AndRoundTrips) {
  RequestDescriptor descriptor = sample_descriptor();
  descriptor.deadline_ps = 321'000'000;
  for (const MessageType type :
       {MessageType::kAssignment, MessageType::kPreemption}) {
    const auto bytes = descriptor.serialize(type);
    EXPECT_EQ(bytes[2], kVersionExtended);
    EXPECT_EQ(bytes.size(), 4u + 48u + 10u);  // header + v1 body + ext fields
    const auto parsed = RequestDescriptor::parse(bytes, type);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, descriptor);
  }
  // Without a deadline the legacy frame is emitted unchanged.
  descriptor.deadline_ps = 0;
  EXPECT_EQ(descriptor.serialize(MessageType::kAssignment)[2], kVersion);
}

TEST(CompletionMessage, SojournSampleRoundTripsIncludingZero) {
  // Presence is an explicit flag: a zero-valued sample (idle worker — what
  // restores adaptive-K) must be distinguishable from "no sample".
  CompletionMessage message;
  message.request_id = 12345;
  message.worker_id = 9;
  message.has_sojourn = true;
  for (const std::uint64_t sojourn :
       {std::uint64_t{0}, std::uint64_t{44'000'000}}) {
    message.sojourn_ps = sojourn;
    const auto bytes = message.serialize();
    EXPECT_EQ(bytes[2], kVersionExtended);
    const auto parsed = CompletionMessage::parse(bytes);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, message);
    EXPECT_TRUE(parsed->has_sojourn);
  }
  message.has_sojourn = false;
  message.sojourn_ps = 0;
  const auto v1 = message.serialize();
  EXPECT_EQ(v1[2], kVersion);
  const auto parsed = CompletionMessage::parse(v1);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->has_sojourn);
}

TEST(CompletionMessage, CorruptedSojournFlagRejected) {
  CompletionMessage message;
  message.has_sojourn = true;
  auto bytes = message.serialize();
  bytes[4 + 8 + 4] = 2;  // flag byte after header + request_id + worker_id
  EXPECT_FALSE(CompletionMessage::parse(bytes).has_value());
}

TEST(RejectMessage, RoundTripAndPeek) {
  RejectMessage message;
  message.request_id = 0xABCDEF01ULL;
  message.client_id = 6;
  message.kind = 2;
  message.queue_depth = 513;
  const auto bytes = message.serialize();
  EXPECT_EQ(peek_type(bytes), MessageType::kReject);
  const auto parsed = RejectMessage::parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, message);

  auto truncated = bytes;
  truncated.resize(truncated.size() - 1);
  EXPECT_FALSE(RejectMessage::parse(truncated).has_value());
}

TEST(ResponseMessage, RoundTrip) {
  ResponseMessage message;
  message.request_id = 777;
  message.client_id = 4;
  message.kind = 1;
  message.preempt_count = 10;
  const auto parsed = ResponseMessage::parse(message.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, message);
}

TEST(ResponseMessage, SojournSampleRoundTripsAsVersion2) {
  ResponseMessage message;
  message.request_id = 778;
  message.client_id = 5;
  message.queue_depth = 17;
  message.has_sojourn = true;
  message.sojourn_ps = 42'000'000;
  const auto bytes = message.serialize();
  EXPECT_EQ(bytes[2], kVersionExtended);
  const auto parsed = ResponseMessage::parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, message);

  // A zero sample from an idle server is still an explicit sample.
  message.sojourn_ps = 0;
  const auto idle = ResponseMessage::parse(message.serialize());
  ASSERT_TRUE(idle.has_value());
  EXPECT_TRUE(idle->has_sojourn);

  // Without the sample the frame stays version 1 bit-for-bit.
  message.has_sojourn = false;
  EXPECT_EQ(message.serialize()[2], kVersion);
}

TEST(ResponseMessage, Version2RejectsTruncationAndBadFlag) {
  ResponseMessage message;
  message.request_id = 779;
  message.has_sojourn = true;
  message.sojourn_ps = 7;
  const auto bytes = message.serialize();
  // Truncating extended fields must never alias a version-1 parse.
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    auto truncated = bytes;
    truncated.resize(len);
    EXPECT_FALSE(ResponseMessage::parse(truncated).has_value())
        << "accepted a " << len << "-byte truncation";
  }
  // The sojourn flag byte sits after the 20-byte version-1 body.
  auto bad_flag = bytes;
  bad_flag[4 + 20] = 2;
  EXPECT_FALSE(ResponseMessage::parse(bad_flag).has_value());
}

TEST(SequencedAssignment, RoundTrip) {
  SequencedAssignment message;
  message.seq = 0xDEADBEEFCAFE0001ULL;
  message.descriptor = sample_descriptor();
  const auto parsed = SequencedAssignment::parse(message.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, message);
}

TEST(SequencedAssignment, ParseRejectsTruncation) {
  const SequencedAssignment message{1, sample_descriptor()};
  auto bytes = message.serialize();
  for (std::size_t cut = 1; cut <= bytes.size(); cut += 7) {
    auto truncated = bytes;
    truncated.resize(bytes.size() - cut);
    EXPECT_FALSE(SequencedAssignment::parse(truncated).has_value());
  }
}

TEST(AckMessage, RoundTripBothAckTypes) {
  AckMessage message;
  message.seq = 42;
  message.worker_id = 3;
  for (const MessageType type :
       {MessageType::kDispatchAck, MessageType::kNoteAck}) {
    const auto parsed = AckMessage::parse(message.serialize(type), type);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, message);
  }
}

TEST(AckMessage, TypeMismatchRejected) {
  AckMessage message;
  message.seq = 7;
  const auto bytes = message.serialize(MessageType::kDispatchAck);
  EXPECT_FALSE(AckMessage::parse(bytes, MessageType::kNoteAck).has_value());
  // Non-ack expected types are rejected outright.
  EXPECT_FALSE(AckMessage::parse(bytes, MessageType::kRequest).has_value());
}

TEST(SequencedNote, RoundTripCompletionAndPreemption) {
  SequencedNote message;
  message.seq = 0x1122334455667788ULL;
  message.worker_id = 6;
  message.descriptor = sample_descriptor();
  for (const bool preempted : {false, true}) {
    message.preempted = preempted;
    const auto parsed = SequencedNote::parse(message.serialize());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, message);
  }
}

TEST(SequencedNote, SojournAndDeadlineRoundTripAsVersion2) {
  SequencedNote message;
  message.seq = 0x1122334455667788ULL;
  message.worker_id = 6;
  message.descriptor = sample_descriptor();
  message.descriptor.deadline_ps = 200'000'000;
  message.has_sojourn = true;
  message.sojourn_ps = 17'000'000;
  const auto bytes = message.serialize();
  EXPECT_EQ(bytes[2], kVersionExtended);
  const auto parsed = SequencedNote::parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, message);
  // A sojourn sample alone (no deadline) still promotes the frame.
  message.descriptor.deadline_ps = 0;
  EXPECT_EQ(message.serialize()[2], kVersionExtended);
  // Neither extended field → the legacy frame, unchanged.
  message.has_sojourn = false;
  message.sojourn_ps = 0;
  EXPECT_EQ(message.serialize()[2], kVersion);
}

TEST(AllMessages, ScratchSerializeIntoMatchesOwningSerialize) {
  // The hot-path serialize_into(scratch) contract: identical bytes to the
  // owning serialize(), for both frame versions.
  auto& scratch = serialization_scratch();

  RequestMessage request;
  request.request_id = 5;
  request.padding = 12;
  for (const std::uint64_t deadline :
       {std::uint64_t{0}, std::uint64_t{9'000'000}}) {
    request.deadline_ps = deadline;
    request.serialize_into(scratch);
    EXPECT_EQ(scratch, request.serialize());
  }

  RequestDescriptor descriptor = sample_descriptor();
  descriptor.deadline_ps = 9'000'000;
  descriptor.serialize_into(MessageType::kPreemption, scratch);
  EXPECT_EQ(scratch, descriptor.serialize(MessageType::kPreemption));

  CompletionMessage completion;
  completion.request_id = 5;
  completion.has_sojourn = true;
  completion.serialize_into(scratch);
  EXPECT_EQ(scratch, completion.serialize());

  SequencedNote note;
  note.seq = 3;
  note.descriptor = descriptor;
  note.serialize_into(scratch);
  EXPECT_EQ(scratch, note.serialize());

  RejectMessage reject;
  reject.request_id = 5;
  reject.serialize_into(scratch);
  EXPECT_EQ(scratch, reject.serialize());

  ResponseMessage response;
  response.request_id = 5;
  response.serialize_into(scratch);
  EXPECT_EQ(scratch, response.serialize());

  AckMessage ack;
  ack.seq = 8;
  ack.serialize_into(MessageType::kNoteAck, scratch);
  EXPECT_EQ(scratch, ack.serialize(MessageType::kNoteAck));

  ProbeMessage probe;
  probe.seq = 9;
  probe.host = 2;
  probe.serialize_into(MessageType::kHealthProbe, scratch);
  EXPECT_EQ(scratch, probe.serialize(MessageType::kHealthProbe));

  CancelMessage cancel;
  cancel.request_id = 5;
  cancel.serialize_into(scratch);
  EXPECT_EQ(scratch, cancel.serialize());
}

TEST(SequencedNote, ParseRejectsBadFlagAndTruncation) {
  SequencedNote message;
  message.seq = 9;
  message.worker_id = 1;
  message.descriptor = sample_descriptor();
  auto bytes = message.serialize();
  // The preempted flag byte sits after seq (8) + worker (4) in the body.
  auto bad_flag = bytes;
  bad_flag[4 + 8 + 4] = 2;
  EXPECT_FALSE(SequencedNote::parse(bad_flag).has_value());
  auto truncated = bytes;
  truncated.resize(truncated.size() - 1);
  EXPECT_FALSE(SequencedNote::parse(truncated).has_value());
}

TEST(ProbeMessage, RoundTripBothDirections) {
  ProbeMessage message;
  message.seq = 42;
  message.host = 3;
  for (const MessageType type :
       {MessageType::kHealthProbe, MessageType::kHealthProbeAck}) {
    const auto bytes = message.serialize(type);
    EXPECT_EQ(peek_type(bytes), type);
    const auto parsed = ProbeMessage::parse(bytes, type);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, message);
  }
}

TEST(ProbeMessage, DirectionMismatchAndTruncationRejected) {
  // A reflected probe must never parse as its own ack — the expected-type
  // check is what stops a ToR from healing a host off its own echo.
  ProbeMessage message;
  message.seq = 7;
  message.host = 1;
  const auto probe = message.serialize(MessageType::kHealthProbe);
  EXPECT_FALSE(
      ProbeMessage::parse(probe, MessageType::kHealthProbeAck).has_value());
  EXPECT_FALSE(ProbeMessage::parse(probe, MessageType::kRequest).has_value());
  for (std::size_t len = 0; len < probe.size(); ++len) {
    auto truncated = probe;
    truncated.resize(len);
    EXPECT_FALSE(
        ProbeMessage::parse(truncated, MessageType::kHealthProbe).has_value())
        << "accepted a " << len << "-byte truncation";
  }
}

TEST(CancelMessage, RoundTripAndTruncationRejected) {
  CancelMessage message;
  message.request_id = 0xFEEDFACE01ULL;
  const auto bytes = message.serialize();
  EXPECT_EQ(peek_type(bytes), MessageType::kCancel);
  const auto parsed = CancelMessage::parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, message);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    auto truncated = bytes;
    truncated.resize(len);
    EXPECT_FALSE(CancelMessage::parse(truncated).has_value())
        << "accepted a " << len << "-byte truncation";
  }
}

TEST(PeekType, IdentifiesReliableTypes) {
  EXPECT_EQ(peek_type(SequencedAssignment{1, sample_descriptor()}.serialize()),
            MessageType::kSequencedAssignment);
  EXPECT_EQ(peek_type(AckMessage{}.serialize(MessageType::kDispatchAck)),
            MessageType::kDispatchAck);
  EXPECT_EQ(peek_type(AckMessage{}.serialize(MessageType::kNoteAck)),
            MessageType::kNoteAck);
  SequencedNote note;
  note.descriptor = sample_descriptor();
  EXPECT_EQ(peek_type(note.serialize()), MessageType::kSequencedNote);
}

TEST(PeekType, IdentifiesAllTypes) {
  RequestMessage request;
  EXPECT_EQ(peek_type(request.serialize()), MessageType::kRequest);
  EXPECT_EQ(peek_type(sample_descriptor().serialize(MessageType::kAssignment)),
            MessageType::kAssignment);
  EXPECT_EQ(peek_type(sample_descriptor().serialize(MessageType::kPreemption)),
            MessageType::kPreemption);
  EXPECT_EQ(peek_type(CompletionMessage{}.serialize()),
            MessageType::kCompletion);
  EXPECT_EQ(peek_type(ResponseMessage{}.serialize()), MessageType::kResponse);
}

TEST(PeekType, RejectsGarbage) {
  EXPECT_FALSE(peek_type({}).has_value());
  const std::vector<std::uint8_t> short_payload = {0x4E, 0x53};
  EXPECT_FALSE(peek_type(short_payload).has_value());
  const std::vector<std::uint8_t> bad_magic = {0x00, 0x00, 1, 1, 0, 0, 0, 0};
  EXPECT_FALSE(peek_type(bad_magic).has_value());
  const std::vector<std::uint8_t> bad_version = {0x4E, 0x53, 9, 1};
  EXPECT_FALSE(peek_type(bad_version).has_value());
  const std::vector<std::uint8_t> bad_type = {0x4E, 0x53, 1, 99};
  EXPECT_FALSE(peek_type(bad_type).has_value());
}

TEST(AllMessages, ParseRejectsWrongMagicVersionTruncation) {
  auto bytes = sample_descriptor().serialize(MessageType::kAssignment);

  auto bad_magic = bytes;
  bad_magic[0] = 0xFF;
  EXPECT_FALSE(RequestDescriptor::parse(bad_magic, MessageType::kAssignment)
                   .has_value());

  auto bad_version = bytes;
  bad_version[2] = 99;
  EXPECT_FALSE(RequestDescriptor::parse(bad_version, MessageType::kAssignment)
                   .has_value());

  auto truncated = bytes;
  truncated.resize(truncated.size() - 1);
  EXPECT_FALSE(RequestDescriptor::parse(truncated, MessageType::kAssignment)
                   .has_value());
}

}  // namespace
}  // namespace nicsched::proto
