// ToR request steering (DESIGN §12): unit tests drive a TorScheduler
// directly with crafted frames to pin down p2c scoring, request→host
// affinity, feedback staleness, and the death-verdict feedback epoch; then
// integration runs assert rack-wide conservation identities across seeds and
// that a one-host rack is bit-identical to the rackless testbed.
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "core/testbed.h"
#include "net/ethernet_switch.h"
#include "net/packet.h"
#include "proto/messages.h"
#include "rack/tor_scheduler.h"
#include "sim/simulator.h"
#include "stats/response_log.h"

namespace nicsched {
namespace {

constexpr std::uint16_t kClientPort = 9000;
constexpr std::uint16_t kServicePort = 8080;

net::MacAddress client_mac() { return net::MacAddress::from_index(1); }
net::Ipv4Address client_ip() { return net::Ipv4Address::from_index(1); }
net::MacAddress host_mac(std::size_t i) {
  return net::MacAddress::from_index(100 + static_cast<std::uint32_t>(i));
}
net::Ipv4Address host_ip(std::size_t i) {
  return net::Ipv4Address::from_index(100 + static_cast<std::uint32_t>(i));
}

/// Terminal sink standing in for a host fabric or the client NIC.
struct Collector final : net::PacketSink {
  std::vector<net::Packet> packets;
  void deliver(net::Packet packet) override {
    packets.push_back(std::move(packet));
  }
  std::vector<std::uint64_t> request_ids() const {
    std::vector<std::uint64_t> ids;
    for (const auto& packet : packets) {
      const auto view = net::parse_udp_datagram(packet);
      if (!view) continue;
      if (const auto request = proto::RequestMessage::parse(view->payload)) {
        ids.push_back(request->request_id);
      }
    }
    return ids;
  }
};

/// A ToR wired between one client endpoint and N collector "hosts". Requests
/// are injected straight into the ToR's VIP sink; responses are injected into
/// the per-host uplink snoop path, exactly as a host fabric's uplink would.
struct TorHarness {
  sim::Simulator sim;
  net::EthernetSwitch client_net;
  rack::TorScheduler tor;
  Collector client_rx;
  std::vector<std::unique_ptr<Collector>> host_rx;

  TorHarness(rack::TorParams params, std::size_t hosts)
      : client_net(sim, sim::Duration::zero()), tor(sim, params) {
    client_net.attach(client_mac(), client_rx, sim::Duration::zero(), 100.0);
    for (std::size_t i = 0; i < hosts; ++i) {
      auto rx = std::make_unique<Collector>();
      tor.add_host(host_mac(i), host_ip(i), *rx);
      host_rx.push_back(std::move(rx));
    }
    tor.attach(client_net, sim::Duration::zero(), 100.0);
  }

  void send_request(std::uint64_t id, std::uint16_t src_port = kClientPort) {
    proto::RequestMessage msg;
    msg.request_id = id;
    msg.client_id = 1;
    msg.work_ps = 1000;
    net::DatagramAddress address{client_mac(), tor.vip_mac(), client_ip(),
                                 tor.vip_ip(), src_port, kServicePort};
    tor.deliver(net::make_udp_datagram(address, msg.serialize()));
    flush();
  }

  void send_response(std::size_t host, std::uint64_t id, std::uint32_t depth,
                     std::optional<std::uint64_t> sojourn_ps) {
    proto::ResponseMessage msg;
    msg.request_id = id;
    msg.client_id = 1;
    msg.queue_depth = depth;
    if (sojourn_ps) {
      msg.has_sojourn = true;
      msg.sojourn_ps = *sojourn_ps;
    }
    net::DatagramAddress address{host_mac(host), client_mac(), host_ip(host),
                                 client_ip(), kServicePort, kClientPort};
    tor.host_uplink(host).deliver(net::make_udp_datagram(address,
                                                         msg.serialize()));
    flush();
  }

  void flush() { sim.run_for(sim::Duration::micros(2)); }
};

rack::TorParams unit_params() {
  rack::TorParams params;
  params.policy = rack::TorPolicy::kPowerOfTwo;
  params.feedback_stale_after = sim::Duration::millis(10);
  return params;
}

// A steered request is readdressed to the chosen host's ingress endpoint
// with the client's source fields preserved, and the payload rides through
// untouched.
TEST(TorScheduler, SteersAndReaddressesToHostIngress) {
  TorHarness h(unit_params(), 2);
  h.send_request(41);

  ASSERT_EQ(h.host_rx[0]->packets.size() + h.host_rx[1]->packets.size(), 1u);
  const Collector& hit =
      h.host_rx[0]->packets.empty() ? *h.host_rx[1] : *h.host_rx[0];
  const std::size_t index = h.host_rx[0]->packets.empty() ? 1 : 0;
  const auto view = net::parse_udp_datagram(hit.packets.front());
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->eth.dst, host_mac(index));
  EXPECT_EQ(view->ip.dst, host_ip(index));
  EXPECT_EQ(view->eth.src, client_mac());
  EXPECT_EQ(view->udp.src_port, kClientPort);
  const auto request = proto::RequestMessage::parse(view->payload);
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->request_id, 41u);

  const rack::RackStats stats = h.tor.stats();
  EXPECT_EQ(stats.requests_forwarded, 1u);
  EXPECT_EQ(h.tor.outstanding(index), 1u);
}

// With two hosts, p2c compares both every time, so steering is a pure
// function of the scores: a host whose piggybacked feedback reports a deep
// queue loses to the unloaded host until its own in-flight count catches up.
TEST(TorScheduler, P2cPrefersLowerFeedbackScore) {
  TorHarness h(unit_params(), 2);

  // Tie-break on equal scores is the lower index.
  h.send_request(1);
  ASSERT_EQ(h.host_rx[0]->packets.size(), 1u);

  // Host 0 reports depth 100, sojourn 50us on its response.
  h.send_response(0, 1, 100, sim::Duration::micros(50).to_picos());
  EXPECT_EQ(h.tor.outstanding(0), 0u);
  EXPECT_EQ(h.client_rx.packets.size(), 1u);  // forwarded client-ward

  // Every subsequent request avoids host 0: its advertised score (100 depth
  // + 50us sojourn) dwarfs host 1's growing outstanding count.
  for (std::uint64_t id = 2; id <= 11; ++id) h.send_request(id);
  EXPECT_EQ(h.host_rx[0]->packets.size(), 1u);
  EXPECT_EQ(h.host_rx[1]->packets.size(), 10u);

  // Host 1 was unseeded, so those decisions counted as stale fallbacks. A
  // response from host 1 seeds it; the next decision is fully informed.
  rack::RackStats stats = h.tor.stats();
  EXPECT_EQ(stats.informed_decisions, 0u);
  EXPECT_GE(stats.stale_decisions, 10u);
  EXPECT_EQ(stats.feedback_samples, 1u);

  h.send_response(1, 2, 0, sim::Duration::zero().to_picos());
  h.send_request(12);
  stats = h.tor.stats();
  EXPECT_EQ(stats.informed_decisions, 1u);
  EXPECT_EQ(stats.feedback_samples, 2u);
  EXPECT_EQ(h.host_rx[1]->packets.size(), 11u);
}

// A retransmit of an in-flight request sticks to the host holding its
// execution state even when the load comparison favors the other host; TTL
// expiry reclaims the outstanding slots and later responses are unknown.
TEST(TorScheduler, AffinityPinsRetransmitsAndExpires) {
  TorHarness h(unit_params(), 2);
  h.send_request(7);  // tie -> host 0
  h.send_request(8);  // host 0 loaded -> host 1
  h.send_request(9);  // tie at 1 vs 1 -> host 0, outstanding 2
  ASSERT_EQ(h.host_rx[0]->request_ids(), (std::vector<std::uint64_t>{7, 9}));
  ASSERT_EQ(h.host_rx[1]->request_ids(), (std::vector<std::uint64_t>{8}));

  // Retransmit id 7: host 0 scores 2 vs host 1's 1, but affinity wins.
  h.send_request(7);
  EXPECT_EQ(h.host_rx[0]->request_ids(),
            (std::vector<std::uint64_t>{7, 9, 7}));
  rack::RackStats stats = h.tor.stats();
  EXPECT_EQ(stats.affinity_hits, 1u);
  EXPECT_EQ(h.tor.outstanding(0), 2u);  // retransmit is not a new slot

  // Nothing ever completes; past the TTL the sweep evicts all three entries
  // and reclaims their slots.
  h.sim.run_for(h.tor.params().affinity_ttl + sim::Duration::millis(1));
  h.send_request(100);  // triggers the sweep before steering
  stats = h.tor.stats();
  EXPECT_EQ(stats.affinity_expired, 3u);
  EXPECT_EQ(h.tor.outstanding(0) + h.tor.outstanding(1), 1u);  // just id 100

  // A response for the evicted id no longer matches anything, but is still
  // forwarded toward the client.
  const std::size_t forwarded_before = h.client_rx.packets.size();
  h.send_response(0, 7, 3, std::nullopt);
  stats = h.tor.stats();
  EXPECT_EQ(stats.unknown_responses, 1u);
  EXPECT_EQ(h.client_rx.packets.size(), forwarded_before + 1);
}

// The staleness knob: the same advertised queue depth steers requests away
// while fresh, and is ignored (falling back to the ToR-local outstanding
// count) once older than feedback_stale_after.
TEST(TorScheduler, StaleFeedbackFallsBackToOutstanding) {
  rack::TorParams params = unit_params();
  params.feedback_stale_after = sim::Duration::micros(10);
  TorHarness h(params, 2);

  h.send_request(1);  // tie -> host 0
  h.send_response(0, 1, 100, std::nullopt);

  // Fresh sample: host 0's depth 100 loses to unseeded host 1.
  h.send_request(2);
  EXPECT_EQ(h.host_rx[1]->request_ids(), (std::vector<std::uint64_t>{2}));

  // Let the sample age past tolerance. Now host 0 scores on outstanding
  // alone (0) and beats host 1 (1 in flight) despite the recorded depth.
  h.sim.run_for(sim::Duration::micros(50));
  const std::uint64_t stale_before = h.tor.stats().stale_decisions;
  h.send_request(3);
  EXPECT_EQ(h.host_rx[0]->request_ids(), (std::vector<std::uint64_t>{1, 3}));
  EXPECT_EQ(h.tor.stats().stale_decisions, stale_before + 1);
}

// mark_host_reset starts a new feedback epoch: samples riding responses to
// requests steered before the reset are discarded instead of resurrecting
// the previous incarnation's estimate (the rack-level analogue of the
// per-worker reset-on-death EWMA rule).
TEST(TorScheduler, ResetDiscardsPreEpochFeedback) {
  TorHarness h(unit_params(), 2);
  h.send_request(50);  // tie -> host 0
  h.tor.mark_host_reset(0);
  h.send_response(0, 50, 100, sim::Duration::micros(500).to_picos());

  rack::RackStats stats = h.tor.stats();
  EXPECT_EQ(stats.hosts[0].resets, 1u);
  EXPECT_EQ(stats.hosts[0].feedback_discarded, 1u);
  EXPECT_EQ(stats.feedback_discarded_dead, 1u);
  EXPECT_EQ(stats.feedback_samples, 0u);
  EXPECT_EQ(stats.hosts[0].queue_depth, 0u);
  EXPECT_EQ(stats.hosts[0].sojourn_ewma_us, 0.0);
  // The response itself still completes the request and reaches the client.
  EXPECT_EQ(stats.hosts[0].responses, 1u);
  EXPECT_EQ(h.tor.outstanding(0), 0u);
  EXPECT_EQ(h.client_rx.packets.size(), 1u);

  // Post-epoch traffic folds normally.
  h.send_request(51);  // tie -> host 0
  h.send_response(0, 51, 7, std::nullopt);
  stats = h.tor.stats();
  EXPECT_EQ(stats.feedback_samples, 1u);
  EXPECT_EQ(stats.hosts[0].queue_depth, 7u);
}

// A host silent past host_timeout with requests in flight draws a death
// verdict: informed policies steer away, and when it is heard from again the
// verdict lifts but pre-verdict feedback stays discarded.
TEST(TorScheduler, SilenceVerdictSteersAwayAndRevivalKeepsEpoch) {
  rack::TorParams params = unit_params();
  params.host_timeout = sim::Duration::micros(100);
  TorHarness h(params, 2);

  h.send_request(60);  // tie -> host 0, then silence
  h.sim.run_for(sim::Duration::micros(300));

  // Scoring for the next request passes the death verdict on host 0.
  h.send_request(61);
  rack::RackStats stats = h.tor.stats();
  EXPECT_EQ(stats.hosts[0].deaths, 1u);
  EXPECT_EQ(h.host_rx[1]->request_ids(), (std::vector<std::uint64_t>{61}));

  // The late response revives host 0 but its feedback predates the verdict
  // epoch, so the sample is discarded.
  h.send_response(0, 60, 40, sim::Duration::micros(200).to_picos());
  stats = h.tor.stats();
  EXPECT_EQ(stats.hosts[0].revivals, 1u);
  EXPECT_EQ(stats.hosts[0].feedback_discarded, 1u);
  EXPECT_EQ(stats.hosts[0].responses, 1u);

  // Revived and idle, host 0 wins the next comparison again.
  h.send_request(62);
  EXPECT_EQ(h.host_rx[0]->request_ids(),
            (std::vector<std::uint64_t>{60, 62}));
}

// ---- integration: full rack experiments through the testbed --------------

core::ExperimentConfig rack_config(std::uint64_t seed, std::size_t hosts,
                                   double offered_rps) {
  auto config = core::ExperimentConfig::offload()
                    .workers(2)
                    .outstanding(2)
                    .bimodal()
                    .load(offered_rps)
                    .clients(2, 16)
                    .measure_for(sim::Duration::millis(2))
                    .with_seed(seed)
                    .with_rack(hosts, rack::TorPolicy::kPowerOfTwo);
  config.warmup = sim::Duration::millis(1);
  config.drain = sim::Duration::millis(1);
  return config;
}

// Rack-wide conservation identities hold for every seed: every steered
// request is accounted to exactly one host, every forwarded return frame is
// either matched or counted unknown, and in-flight slots balance the books.
TEST(RackDispatch, ConservationIdentitiesAcrossSeeds) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const auto result = core::run_experiment(rack_config(seed, 4, 800e3));
    ASSERT_TRUE(result.rack.has_value()) << "seed=" << seed;
    const rack::RackStats& tor = *result.rack;
    ASSERT_EQ(tor.hosts.size(), 4u);
    EXPECT_EQ(result.rack_hosts.size(), 4u);

    std::uint64_t steered = 0;
    std::uint64_t responses = 0;
    std::uint64_t rejects = 0;
    std::uint64_t outstanding = 0;
    for (const rack::RackHostStats& host : tor.hosts) {
      steered += host.requests;
      responses += host.responses;
      rejects += host.rejects;
      outstanding += host.outstanding;
    }
    EXPECT_EQ(steered, tor.requests_forwarded) << "seed=" << seed;
    EXPECT_EQ(tor.responses_forwarded + tor.rejects_forwarded,
              responses + rejects + tor.unknown_responses)
        << "seed=" << seed;
    // New affinity entries = forwarded - retransmit hits; each is retired by
    // a matched completion, a TTL eviction, or is still in flight.
    EXPECT_EQ(tor.requests_forwarded - tor.affinity_hits,
              responses + rejects + tor.affinity_expired + outstanding)
        << "seed=" << seed;
    EXPECT_EQ(tor.malformed_dropped, 0u) << "seed=" << seed;
    EXPECT_GT(result.summary.completed, 0u) << "seed=" << seed;
    EXPECT_LE(result.summary.completed, tor.responses_forwarded)
        << "seed=" << seed;
  }
}

// Distrusting feedback degrades p2c gracefully toward outstanding-only
// steering: tail within a small multiple of the fresh-feedback tail, and
// throughput preserved.
TEST(RackDispatch, StaleFeedbackDegradesGracefully) {
  auto run = [](double stale_us) {
    core::RackConfig topology;
    topology.hosts = 2;
    topology.policy = rack::TorPolicy::kPowerOfTwo;
    rack::TorParams tor;
    tor.policy = rack::TorPolicy::kPowerOfTwo;
    tor.feedback_stale_after = sim::Duration::micros(stale_us);
    topology.tor = tor;
    auto config = rack_config(42, 2, 500e3);
    config.rack = topology;
    return core::run_experiment(config);
  };
  const auto fresh = run(1000.0);
  const auto blind = run(1.0);

  ASSERT_TRUE(fresh.rack && blind.rack);
  EXPECT_GT(fresh.rack->informed_decisions, fresh.rack->stale_decisions);
  EXPECT_GT(blind.rack->stale_decisions, blind.rack->informed_decisions);
  EXPECT_LE(blind.summary.p99_us, 3.0 * fresh.summary.p99_us);
  EXPECT_GT(blind.summary.completed, 9 * fresh.summary.completed / 10);
}

// ---- N=1 regression: a one-host rack config is the rackless testbed ------

class Digest {
 public:
  void add(std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (value >> (8 * i)) & 0xff;
      hash_ *= 1099511628211ULL;  // FNV-1a 64
    }
  }
  void add_signed(std::int64_t value) {
    add(static_cast<std::uint64_t>(value));
  }
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 14695981039346656037ULL;
};

std::uint64_t run_digest(core::SystemKind kind, std::uint64_t seed,
                         bool one_host_rack) {
  stats::ResponseLog log;
  auto config = core::ExperimentConfig::of(kind)
                    .workers(2)
                    .outstanding(2)
                    .bimodal()
                    .load(150e3)
                    .clients(2, 16)
                    .measure_for(sim::Duration::millis(1))
                    .with_seed(seed);
  config.warmup = sim::Duration::millis(1);
  config.drain = sim::Duration::millis(1);
  config.response_log = &log;
  if (one_host_rack) {
    core::RackConfig topology;
    topology.hosts = 1;
    config.with_rack(topology);
  }

  const core::ExperimentResult result = core::run_experiment(config);
  EXPECT_FALSE(result.rack.has_value());  // hosts <= 1 builds no ToR

  Digest digest;
  digest.add(log.seen());
  for (const auto& r : log.records()) {
    digest.add(r.request_id);
    digest.add(r.kind);
    digest.add(r.preempt_count);
    digest.add_signed(r.sent_at.to_picos());
    digest.add_signed(r.received_at.to_picos());
    digest.add_signed(r.work.to_picos());
  }
  const core::ServerStats& s = result.server;
  digest.add(s.requests_received);
  digest.add(s.responses_sent);
  digest.add(s.preemptions);
  digest.add(s.steals);
  digest.add(s.drops);
  digest.add(s.queue_max_depth);
  return digest.value();
}

// with_rack(hosts = 1) must degenerate to exactly the single-server testbed:
// same responses, same timestamps, same counters, for every family and seed.
TEST(RackDispatch, OneHostRackIsBitIdenticalToRackless) {
  for (const auto kind :
       {core::SystemKind::kShinjuku, core::SystemKind::kShinjukuOffload,
        core::SystemKind::kRss, core::SystemKind::kIdealNic}) {
    for (const std::uint64_t seed : {1u, 2u, 3u}) {
      const std::uint64_t rackless = run_digest(kind, seed, false);
      const std::uint64_t one_host = run_digest(kind, seed, true);
      EXPECT_EQ(rackless, one_host)
          << "kind=" << core::to_string(kind) << " seed=" << seed;
    }
  }
}

}  // namespace
}  // namespace nicsched
