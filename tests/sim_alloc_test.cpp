// Zero-allocation guarantees for the simulator fast path.
//
// This binary replaces global operator new/delete with counting shims, warms
// a scenario up, then asserts that a steady-state window performs ZERO heap
// allocations:
//
//  * the event hot loop with the common capture (component pointer + id),
//  * the cancellation-churn loop (guard timer re-armed per event),
//  * the packet path (make_udp_datagram + parse_udp_datagram round trip).
//
// This is the enforcement teeth behind the slab event queue, the SmallFn
// inline buffer, and the packet-buffer pool: a regression that reintroduces
// a per-event or per-frame allocation fails here, not in a profiler.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <memory_resource>
#include <new>
#include <unordered_map>
#include <unordered_set>

#include "hw/channel.h"
#include "net/packet.h"
#include "net/packet_pool.h"
#include "proto/messages.h"
#include "sim/arena.h"
#include "sim/simulator.h"
#include "sim/small_fn.h"

namespace {
std::atomic<std::uint64_t> g_allocations{0};

std::uint64_t allocation_count() {
  return g_allocations.load(std::memory_order_relaxed);
}
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace nicsched {
namespace {

// The common simulation event: a component re-arming itself with a capture
// of one pointer and one id. Must never leave SmallFn's inline buffer.
struct TickingComponent {
  sim::Simulator& sim;
  std::uint64_t id;
  std::uint64_t fires = 0;

  void arm() {
    sim.after(sim::Duration::nanos(100), [this, my_id = id]() {
      fires += (my_id != 0 ? 1 : 1);
      arm();
    });
  }
};

TEST(SimAlloc, HotEventLoopIsAllocationFree) {
  sim::Simulator sim;
  TickingComponent component{sim, 42};
  component.arm();
  // Warmup must cover one full timer-wheel revolution (~268us): each of the
  // 256 bucket vectors grows to its stationary population once, and every
  // revolution after that recycles the same storage.
  sim.run_for(sim::Duration::micros(300));

  const std::uint64_t before = allocation_count();
  sim.run_for(sim::Duration::millis(1));  // 10'000 events
  const std::uint64_t after = allocation_count();

  EXPECT_EQ(after - before, 0u)
      << "steady-state events must not touch the heap";
  EXPECT_GE(component.fires, 10'000u);
}

// Timer churn: every event cancels a pending guard and re-arms it — the
// pattern preemption timers follow. Cancellation recycles the slot in O(1)
// and must not allocate either.
struct ChurningComponent {
  sim::Simulator& sim;
  sim::EventHandle guard = {};
  std::uint64_t fires = 0;
  std::uint64_t guard_fires = 0;

  void arm() {
    guard.cancel();
    // 5us timeout: short enough that the dead-entry population in the heap
    // (cancelled guards waiting to be pruned at their timestamp) plateaus
    // within the warmup window below.
    guard = sim.after(sim::Duration::micros(5),
                      [this]() { ++guard_fires; });
    sim.after(sim::Duration::nanos(200), [this]() {
      ++fires;
      arm();
    });
  }
};

TEST(SimAlloc, CancellationChurnIsAllocationFree) {
  sim::Simulator sim;
  ChurningComponent component{sim};
  component.arm();
  // One wheel revolution (see HotEventLoop) plus the dead-guard plateau.
  sim.run_for(sim::Duration::micros(300));

  const std::uint64_t before = allocation_count();
  sim.run_for(sim::Duration::millis(1));
  const std::uint64_t after = allocation_count();

  EXPECT_EQ(after - before, 0u);
  EXPECT_GE(component.fires, 4'000u);
  EXPECT_EQ(component.guard_fires, 0u);  // always re-armed in time
}

TEST(SimAlloc, PacketBuildParseRoundTripIsAllocationFree) {
  net::DatagramAddress address;
  address.src_mac = net::MacAddress::from_index(1);
  address.dst_mac = net::MacAddress::from_index(2);
  address.src_ip = net::Ipv4Address(10, 0, 0, 1);
  address.dst_ip = net::Ipv4Address(10, 0, 0, 2);
  address.src_port = 40'000;
  address.dst_port = 9'000;
  std::array<std::uint8_t, 64> payload{};
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i);
  }

  // Warm the pool and the thread-local scratch segment.
  for (int i = 0; i < 16; ++i) {
    net::Packet packet = net::make_udp_datagram(address, payload);
    ASSERT_TRUE(net::parse_udp_datagram(packet).has_value());
  }

  const std::uint64_t before = allocation_count();
  std::uint64_t parsed = 0;
  for (int i = 0; i < 10'000; ++i) {
    net::Packet packet = net::make_udp_datagram(address, payload);
    if (net::parse_udp_datagram(packet)) ++parsed;
  }
  const std::uint64_t after = allocation_count();

  EXPECT_EQ(after - before, 0u)
      << "steady-state frames must recycle pooled buffers";
  EXPECT_EQ(parsed, 10'000u);
}

// The dispatch hop: descriptor-sized messages through a MessageChannel. The
// grow-only ring must absorb steady-state send/pop churn without touching the
// heap — the deque-node churn *and* the per-send closure spill (a captured
// descriptor exceeds SmallFn's inline buffer) both used to allocate here.
TEST(SimAlloc, MessageChannelSteadyStateIsAllocationFree) {
  sim::Simulator sim;
  hw::MessageChannel<proto::RequestDescriptor> channel(
      sim, sim::Duration::nanos(500));
  std::uint64_t received = 0;
  channel.set_on_message([&channel, &received]() {
    while (auto descriptor = channel.pop()) {
      received += descriptor->request_id != 0 ? 1 : 1;
    }
  });

  std::uint64_t next_id = 1;
  std::function<void()> produce = [&]() {
    proto::RequestDescriptor descriptor;
    descriptor.request_id = next_id++;
    descriptor.remaining_ps = 5'000'000;
    channel.send(descriptor);
    sim.after(sim::Duration::nanos(200), [&produce]() { produce(); });
  };
  produce();
  // Warm the ring past its high-water mark and the timer wheel through one
  // full revolution.
  sim.run_for(sim::Duration::micros(300));

  const std::uint64_t before = allocation_count();
  sim.run_for(sim::Duration::millis(1));
  const std::uint64_t after = allocation_count();

  EXPECT_EQ(after - before, 0u)
      << "steady-state channel traffic must recycle the ring";
  EXPECT_GE(received, 4'000u);
}

// The TX hot path: serialize_into the thread-local scratch, wrap in a frame,
// parse it back. Covers every message family the servers emit per request.
TEST(SimAlloc, ScratchSerializationRoundTripIsAllocationFree) {
  net::DatagramAddress address;
  address.src_mac = net::MacAddress::from_index(3);
  address.dst_mac = net::MacAddress::from_index(4);
  address.src_ip = net::Ipv4Address(10, 0, 0, 3);
  address.dst_ip = net::Ipv4Address(10, 0, 0, 4);
  address.src_port = 41'000;
  address.dst_port = 8'080;

  proto::RequestMessage request;
  request.request_id = 7;
  request.work_ps = 5'000'000;
  request.deadline_ps = 123'456'789;  // forces the larger v2 layout
  request.padding = 24;
  proto::RequestDescriptor descriptor;
  descriptor.request_id = 7;
  descriptor.remaining_ps = 5'000'000;
  proto::CompletionMessage completion;
  completion.request_id = 7;
  completion.has_sojourn = true;
  completion.sojourn_ps = 1'000'000;
  proto::ResponseMessage response;
  response.request_id = 7;
  proto::RejectMessage reject;
  reject.request_id = 7;
  reject.queue_depth = 512;

  auto& scratch = proto::serialization_scratch();
  auto transmit_all = [&]() {
    std::uint64_t ok = 0;
    request.serialize_into(scratch);
    ok += net::parse_udp_datagram(net::make_udp_datagram(address, scratch))
              .has_value();
    descriptor.serialize_into(proto::MessageType::kAssignment, scratch);
    ok += net::parse_udp_datagram(net::make_udp_datagram(address, scratch))
              .has_value();
    completion.serialize_into(scratch);
    ok += net::parse_udp_datagram(net::make_udp_datagram(address, scratch))
              .has_value();
    response.serialize_into(scratch);
    ok += net::parse_udp_datagram(net::make_udp_datagram(address, scratch))
              .has_value();
    reject.serialize_into(scratch);
    ok += net::parse_udp_datagram(net::make_udp_datagram(address, scratch))
              .has_value();
    return ok;
  };

  for (int i = 0; i < 16; ++i) transmit_all();  // warm scratch + packet pool

  const std::uint64_t before = allocation_count();
  std::uint64_t parsed = 0;
  for (int i = 0; i < 10'000; ++i) parsed += transmit_all();
  const std::uint64_t after = allocation_count();

  EXPECT_EQ(after - before, 0u)
      << "scratch serialization must reuse the thread-local buffer";
  EXPECT_EQ(parsed, 50'000u);
}

// The reliable-dispatch bookkeeping shape: map/set nodes that churn once per
// tracked request. On an ArenaResource the first wave warms exact-size
// freelists; after that, insert/erase cycles must never reach the global
// allocator. This is the same arena + container layout
// ShinjukuOffloadServer uses for its inflight/seq/dedupe tables.
TEST(SimAlloc, ArenaBackedReliableTablesAreAllocationFree) {
  sim::ArenaResource arena;
  struct Inflight {
    std::uint64_t seq = 0;
    std::uint32_t attempts = 1;
    sim::EventHandle timer;
  };
  std::pmr::unordered_map<std::uint64_t, Inflight> inflight{&arena};
  std::pmr::unordered_map<std::uint64_t, std::uint64_t> seq_to_request{&arena};
  std::pmr::unordered_set<std::uint64_t> dedupe{&arena};

  // Warm: grow bucket arrays and node freelists past the steady population
  // (which transiently reaches kWindow + 1: each ack lands after the next
  // insert), doubled for rehash-threshold margin.
  constexpr std::uint64_t kWindow = 64;
  for (std::uint64_t id = 1; id <= 2 * kWindow; ++id) {
    inflight.emplace(id, Inflight{id, 1, {}});
    seq_to_request.emplace(id, id);
    dedupe.insert(id);
  }
  for (std::uint64_t id = 1; id <= 2 * kWindow; ++id) {
    inflight.erase(id);
    seq_to_request.erase(id);
  }
  dedupe.clear();

  const std::uint64_t before = allocation_count();
  for (std::uint64_t id = kWindow + 1; id <= kWindow + 10'000; ++id) {
    inflight.emplace(id, Inflight{id, 1, {}});
    seq_to_request.emplace(id, id);
    dedupe.insert(id);
    const std::uint64_t retire = id - kWindow;  // ack lands a window later
    inflight.erase(retire);
    seq_to_request.erase(retire);
    dedupe.erase(retire);
  }
  const std::uint64_t after = allocation_count();

  EXPECT_EQ(after - before, 0u)
      << "steady-state reliable bookkeeping must recycle arena freelists";
  EXPECT_GT(arena.reused_allocations(), 0u);
}

// Direct checks that the hot capture shapes stay inline in SmallFn.
TEST(SimAlloc, CommonCapturesStayInline) {
  int dummy = 0;
  std::uint64_t id = 7;
  sim::EventFn pointer_and_id = [ptr = &dummy, id]() { (void)ptr, (void)id; };
  EXPECT_TRUE(pointer_and_id.is_inline());

  net::Packet packet;
  sim::EventFn pointer_and_packet = [ptr = &dummy,
                                     p = std::move(packet)]() { (void)ptr; };
  EXPECT_TRUE(pointer_and_packet.is_inline())
      << "a moved-in Packet must fit the inline buffer";
}

}  // namespace
}  // namespace nicsched
