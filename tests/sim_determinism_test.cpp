// Determinism regression: for 3 seeds x 4 server kinds, the full observable
// output of a run — every response record, every span, and the ServerStats
// counters — is hashed into one digest and compared against golden values
// recorded at the pre-fast-path (shared_ptr EventQueue, per-frame-allocating
// packet path) implementation. The slab event queue, the packet-buffer pool,
// and checksum elision must all reproduce these digests bit for bit.
//
// Regenerate goldens (only legitimate after a change that intentionally
// alters modelled behaviour, never for a perf change):
//   NICSCHED_PRINT_GOLDEN=1 ./build/tests/sim_determinism_test
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include <gtest/gtest.h>

#include <bit>

#include "core/testbed.h"
#include "net/packet.h"
#include "obs/capture.h"
#include "stats/response_log.h"

namespace nicsched {
namespace {

class Digest {
 public:
  void add(std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (value >> (8 * i)) & 0xff;
      hash_ *= 1099511628211ULL;  // FNV-1a 64
    }
  }
  void add_signed(std::int64_t value) {
    add(static_cast<std::uint64_t>(value));
  }
  void add_double(double value) { add(std::bit_cast<std::uint64_t>(value)); }
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 14695981039346656037ULL;
};

void hash_lifecycles(Digest& digest,
                     const std::vector<obs::RequestLifecycle>& lifecycles) {
  digest.add(lifecycles.size());
  for (const auto& lifecycle : lifecycles) {
    digest.add(lifecycle.request_id);
    digest.add(lifecycle.complete ? 1 : 0);
    digest.add(lifecycle.spans.size());
    for (const auto& span : lifecycle.spans) {
      digest.add(static_cast<std::uint64_t>(span.kind));
      digest.add(span.component);
      digest.add_signed(span.begin.to_picos());
      digest.add_signed(span.end.to_picos());
    }
  }
}

std::uint64_t run_digest(core::SystemKind kind, std::uint64_t seed) {
  stats::ResponseLog log;
  obs::CaptureOptions capture;
  capture.enabled = true;
  capture.spans = true;
  capture.metric_cadence = sim::Duration::zero();  // spans only
  capture.label = "determinism";

  auto config = core::ExperimentConfig::of(kind)
                    .workers(2)
                    .outstanding(2)
                    .bimodal()  // 5us/100us: exercises preemption + requeue
                    .load(150e3)
                    .clients(2, 16)
                    .measure_for(sim::Duration::millis(2))
                    .with_seed(seed)
                    .with_capture(capture);
  config.warmup = sim::Duration::millis(1);
  config.drain = sim::Duration::millis(1);
  config.response_log = &log;

  const core::ExperimentResult result = core::run_experiment(config);

  Digest digest;
  // Response log: every in-window record, every field.
  digest.add(log.seen());
  for (const auto& r : log.records()) {
    digest.add(r.request_id);
    digest.add(r.kind);
    digest.add(r.preempt_count);
    digest.add_signed(r.sent_at.to_picos());
    digest.add_signed(r.received_at.to_picos());
    digest.add_signed(r.work.to_picos());
  }
  // Span streams: completed and truncated lifecycles, in recorder order.
  if (result.capture) {
    hash_lifecycles(digest, result.capture->spans().completed());
    hash_lifecycles(digest, result.capture->spans().incomplete());
    digest.add(result.capture->spans().violations());
  }
  // Server counters.
  const core::ServerStats& s = result.server;
  digest.add(s.requests_received);
  digest.add(s.responses_sent);
  digest.add(s.preemptions);
  digest.add(s.spurious_interrupts);
  digest.add(s.steals);
  digest.add(s.drops);
  digest.add(s.queue_max_depth);
  for (double u : s.worker_utilization) digest.add_double(u);
  digest.add(s.ddio.l1_touches);
  digest.add(s.ddio.llc_touches);
  digest.add(s.ddio.dram_touches);
  digest.add(s.reliability.retransmits);
  digest.add(s.reliability.abandoned);
  return digest.value();
}

struct Golden {
  core::SystemKind kind;
  std::uint64_t seed;
  std::uint64_t digest;
};

// Recorded at the seed implementation (PR 3 tree: weak_ptr EventQueue,
// per-frame allocations, always-verify checksums) — see header comment.
const Golden kGoldens[] = {
    {core::SystemKind::kShinjuku, 1, 0x60c08ff1cc40f049ULL},
    {core::SystemKind::kShinjuku, 2, 0xd50f92db774edff6ULL},
    {core::SystemKind::kShinjuku, 3, 0xcce6907a2752b602ULL},
    {core::SystemKind::kShinjukuOffload, 1, 0x457d12fa6596f1a8ULL},
    {core::SystemKind::kShinjukuOffload, 2, 0xc09c47c4962ff9daULL},
    {core::SystemKind::kShinjukuOffload, 3, 0x7e018d2725d7a171ULL},
    {core::SystemKind::kRss, 1, 0xfc314144d2f2aaf3ULL},
    {core::SystemKind::kRss, 2, 0xaad73592be769783ULL},
    {core::SystemKind::kRss, 3, 0xdc04f4c9c72a59c7ULL},
    {core::SystemKind::kIdealNic, 1, 0x13be2ff67a0b9d70ULL},
    {core::SystemKind::kIdealNic, 2, 0x9b0ee4ade6aee287ULL},
    {core::SystemKind::kIdealNic, 3, 0x507fe88b06cf7f47ULL},
};

TEST(SimDeterminism, BitIdenticalToPreFastPathGoldens) {
  const bool print = std::getenv("NICSCHED_PRINT_GOLDEN") != nullptr;
  for (const Golden& golden : kGoldens) {
    const std::uint64_t digest = run_digest(golden.kind, golden.seed);
    if (print) {
      std::printf("    {core::SystemKind::k%s, %llu, 0x%llxULL},\n",
                  golden.kind == core::SystemKind::kShinjuku ? "Shinjuku"
                  : golden.kind == core::SystemKind::kShinjukuOffload
                      ? "ShinjukuOffload"
                  : golden.kind == core::SystemKind::kRss ? "Rss"
                                                          : "IdealNic",
                  static_cast<unsigned long long>(golden.seed),
                  static_cast<unsigned long long>(digest));
      continue;
    }
    EXPECT_EQ(digest, golden.digest)
        << "kind=" << core::to_string(golden.kind) << " seed=" << golden.seed;
  }
  if (print) GTEST_SKIP() << "golden print mode";
}

// Two identical runs in one process must agree exactly — catches any hidden
// global state (pool reuse order, static caches) leaking into results.
TEST(SimDeterminism, RepeatedRunsAgree) {
  const std::uint64_t first =
      run_digest(core::SystemKind::kShinjukuOffload, 7);
  const std::uint64_t second =
      run_digest(core::SystemKind::kShinjukuOffload, 7);
  EXPECT_EQ(first, second);
}

// Checksum elision must be invisible to modelled results: every frame the
// simulation builds carries a correct checksum, so skipping the verification
// can only change wall time, never behaviour. Guard with an RAII restore so
// a failing EXPECT can't leak elision into later tests.
TEST(SimDeterminism, ChecksumElisionIsInvisible) {
  struct Restore {
    ~Restore() { net::set_checksum_elision(false); }
  } restore;
  for (const auto kind :
       {core::SystemKind::kShinjuku, core::SystemKind::kShinjukuOffload}) {
    net::set_checksum_elision(false);
    const std::uint64_t verified = run_digest(kind, 5);
    net::set_checksum_elision(true);
    const std::uint64_t elided = run_digest(kind, 5);
    EXPECT_EQ(verified, elided) << "kind=" << core::to_string(kind);
  }
}

}  // namespace
}  // namespace nicsched
