#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

namespace nicsched::sim {
namespace {

TimePoint at_us(std::int64_t us) {
  return TimePoint::origin() + Duration::micros(us);
}

void drain(EventQueue& queue) {
  TimePoint when;
  EventFn callback;
  while (queue.pop_next(when, callback)) callback();
}

TEST(EventQueue, FiresInTimestampOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(at_us(30), [&]() { order.push_back(3); });
  queue.schedule(at_us(10), [&]() { order.push_back(1); });
  queue.schedule(at_us(20), [&]() { order.push_back(2); });

  drain(queue);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SimultaneousEventsFireInScheduleOrder) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    queue.schedule(at_us(7), [&order, i]() { order.push_back(i); });
  }
  drain(queue);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue queue;
  bool fired = false;
  EventHandle handle = queue.schedule(at_us(5), [&]() { fired = true; });
  EXPECT_TRUE(handle.pending());
  handle.cancel();
  EXPECT_FALSE(handle.pending());

  TimePoint when;
  EventFn callback;
  EXPECT_FALSE(queue.pop_next(when, callback));
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelIsIdempotentAndSafeAfterFire) {
  EventQueue queue;
  EventHandle handle = queue.schedule(at_us(1), []() {});
  TimePoint when;
  EventFn callback;
  ASSERT_TRUE(queue.pop_next(when, callback));
  callback();
  handle.cancel();  // no effect, no crash
  handle.cancel();
  EXPECT_FALSE(handle.pending());

  EventHandle empty;  // default-constructed
  empty.cancel();
  EXPECT_FALSE(empty.pending());
}

TEST(EventQueue, CancelledEventsAreSkippedNotReturned) {
  EventQueue queue;
  std::vector<int> order;
  auto h1 = queue.schedule(at_us(1), [&]() { order.push_back(1); });
  queue.schedule(at_us(2), [&]() { order.push_back(2); });
  auto h3 = queue.schedule(at_us(3), [&]() { order.push_back(3); });
  h1.cancel();
  h3.cancel();

  drain(queue);
  EXPECT_EQ(order, (std::vector<int>{2}));
}

TEST(EventQueue, NextEventTimeSkipsCancelled) {
  EventQueue queue;
  auto h1 = queue.schedule(at_us(1), []() {});
  queue.schedule(at_us(9), []() {});
  EXPECT_EQ(queue.next_event_time(), at_us(1));
  h1.cancel();
  EXPECT_EQ(queue.next_event_time(), at_us(9));
}

TEST(EventQueue, EmptyAccountsForCancellation) {
  EventQueue queue;
  // empty()/next_event_time() are const now — exercise them through a
  // const reference, as monitoring code does.
  const EventQueue& view = queue;
  EXPECT_TRUE(view.empty());
  EXPECT_EQ(view.next_event_time(), TimePoint::max());
  auto handle = queue.schedule(at_us(1), []() {});
  EXPECT_FALSE(view.empty());
  handle.cancel();
  EXPECT_TRUE(view.empty());
}

TEST(EventQueue, LiveCountExcludesCancelled) {
  EventQueue queue;
  auto h1 = queue.schedule(at_us(1), []() {});
  queue.schedule(at_us(2), []() {});
  queue.schedule(at_us(3), []() {});
  const EventQueue& view = queue;  // O(1) and const
  EXPECT_EQ(view.live_count(), 3u);
  h1.cancel();
  EXPECT_EQ(view.live_count(), 2u);
  EXPECT_EQ(view.scheduled_count(), 3u);
}

TEST(EventQueue, CallbackMayScheduleMoreEvents) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(at_us(1), [&]() {
    order.push_back(1);
    queue.schedule(at_us(2), [&]() { order.push_back(2); });
  });
  drain(queue);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

// ---------------------------------------------------------------------------
// Slab-specific behaviour: slot recycling, generation safety, churn.

// A handle whose event fired (or was cancelled) must stay inert even after
// its slot is recycled for a brand-new event: the generation check keeps the
// stale handle from cancelling the slot's new occupant.
TEST(EventQueueSlab, StaleHandleCannotTouchRecycledSlot) {
  EventQueue queue;
  bool first_fired = false;
  EventHandle stale = queue.schedule(at_us(1), [&]() { first_fired = true; });
  drain(queue);
  EXPECT_TRUE(first_fired);
  EXPECT_FALSE(stale.pending());

  // The queue is empty, so the next schedule recycles the same slot.
  bool second_fired = false;
  EventHandle fresh = queue.schedule(at_us(2), [&]() { second_fired = true; });
  EXPECT_EQ(queue.slab_size(), 1u);

  stale.cancel();  // must NOT cancel the recycled slot's new event
  EXPECT_FALSE(stale.pending());
  EXPECT_TRUE(fresh.pending());
  drain(queue);
  EXPECT_TRUE(second_fired);
}

TEST(EventQueueSlab, StaleHandleAfterCancelIsAlsoInert) {
  EventQueue queue;
  EventHandle stale = queue.schedule(at_us(1), []() {});
  stale.cancel();

  bool fired = false;
  queue.schedule(at_us(1), [&]() { fired = true; });
  stale.cancel();  // stale generation, same slot: no-op
  EXPECT_FALSE(stale.pending());
  drain(queue);
  EXPECT_TRUE(fired);
}

// The re-armed timer idiom: cancel + reschedule on every packet. The slab
// must recycle slots (bounded slab growth) and the orphaned heap entries
// must never fire or corrupt ordering.
TEST(EventQueueSlab, CancellationChurnRecyclesSlots) {
  EventQueue queue;
  std::uint64_t fired = 0;
  EventHandle timer;
  for (int i = 0; i < 10'000; ++i) {
    timer.cancel();
    timer = queue.schedule(at_us(100 + i), [&]() { ++fired; });
    EXPECT_EQ(queue.live_count(), 1u);
  }
  // One live event plus whatever transient slots the warmup used; the slab
  // must not have grown per-iteration.
  EXPECT_LE(queue.slab_size(), 4u);
  drain(queue);
  EXPECT_EQ(fired, 1u);  // only the last armed timer survives
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.live_count(), 0u);
}

// (time, seq) ordering holds across recycled slots: slot reuse must not
// perturb the deterministic tie-break.
TEST(EventQueueSlab, OrderingStableAcrossSlotReuse) {
  EventQueue queue;
  std::vector<int> order;
  // Round 1 populates and drains slots 0..2.
  for (int i = 0; i < 3; ++i) {
    queue.schedule(at_us(1), [&order, i]() { order.push_back(i); });
  }
  drain(queue);
  // Round 2 reuses those slots in some order; same timestamps, so the
  // insertion sequence alone must decide firing order.
  for (int i = 3; i < 9; ++i) {
    queue.schedule(at_us(2), [&order, i]() { order.push_back(i); });
  }
  drain(queue);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8}));
}

TEST(EventQueueSlab, MixedCancelAndFireKeepsCountsExact) {
  EventQueue queue;
  std::vector<EventHandle> handles;
  handles.reserve(100);
  for (int i = 0; i < 100; ++i) {
    handles.push_back(queue.schedule(at_us(i), []() {}));
  }
  for (std::size_t i = 0; i < handles.size(); i += 2) handles[i].cancel();
  EXPECT_EQ(queue.live_count(), 50u);
  TimePoint when;
  EventFn callback;
  std::size_t popped = 0;
  while (queue.pop_next(when, callback)) ++popped;
  EXPECT_EQ(popped, 50u);
  EXPECT_EQ(queue.live_count(), 0u);
  EXPECT_TRUE(queue.empty());
  for (auto& handle : handles) EXPECT_FALSE(handle.pending());
}

// Move-only captures now flow straight into event closures — the property
// the packet path relies on instead of shared_ptr wrappers.
TEST(EventQueueSlab, HoldsMoveOnlyCaptures) {
  EventQueue queue;
  auto payload = std::make_unique<int>(41);
  int result = 0;
  queue.schedule(at_us(1), [&result, p = std::move(payload)]() {
    result = *p + 1;
  });
  drain(queue);
  EXPECT_EQ(result, 42);
}

}  // namespace
}  // namespace nicsched::sim
