#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace nicsched::sim {
namespace {

TimePoint at_us(std::int64_t us) {
  return TimePoint::origin() + Duration::micros(us);
}

void drain(EventQueue& queue) {
  TimePoint when;
  EventFn callback;
  while (queue.pop_next(when, callback)) callback();
}

TEST(EventQueue, FiresInTimestampOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(at_us(30), [&]() { order.push_back(3); });
  queue.schedule(at_us(10), [&]() { order.push_back(1); });
  queue.schedule(at_us(20), [&]() { order.push_back(2); });

  drain(queue);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SimultaneousEventsFireInScheduleOrder) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    queue.schedule(at_us(7), [&order, i]() { order.push_back(i); });
  }
  drain(queue);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue queue;
  bool fired = false;
  EventHandle handle = queue.schedule(at_us(5), [&]() { fired = true; });
  EXPECT_TRUE(handle.pending());
  handle.cancel();
  EXPECT_FALSE(handle.pending());

  TimePoint when;
  EventFn callback;
  EXPECT_FALSE(queue.pop_next(when, callback));
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelIsIdempotentAndSafeAfterFire) {
  EventQueue queue;
  EventHandle handle = queue.schedule(at_us(1), []() {});
  TimePoint when;
  EventFn callback;
  ASSERT_TRUE(queue.pop_next(when, callback));
  callback();
  handle.cancel();  // no effect, no crash
  handle.cancel();
  EXPECT_FALSE(handle.pending());

  EventHandle empty;  // default-constructed
  empty.cancel();
  EXPECT_FALSE(empty.pending());
}

TEST(EventQueue, CancelledEventsAreSkippedNotReturned) {
  EventQueue queue;
  std::vector<int> order;
  auto h1 = queue.schedule(at_us(1), [&]() { order.push_back(1); });
  queue.schedule(at_us(2), [&]() { order.push_back(2); });
  auto h3 = queue.schedule(at_us(3), [&]() { order.push_back(3); });
  h1.cancel();
  h3.cancel();

  drain(queue);
  EXPECT_EQ(order, (std::vector<int>{2}));
}

TEST(EventQueue, NextEventTimeSkipsCancelled) {
  EventQueue queue;
  auto h1 = queue.schedule(at_us(1), []() {});
  queue.schedule(at_us(9), []() {});
  EXPECT_EQ(queue.next_event_time(), at_us(1));
  h1.cancel();
  EXPECT_EQ(queue.next_event_time(), at_us(9));
}

TEST(EventQueue, EmptyAccountsForCancellation) {
  EventQueue queue;
  // empty()/next_event_time() are const now — exercise them through a
  // const reference, as monitoring code does.
  const EventQueue& view = queue;
  EXPECT_TRUE(view.empty());
  EXPECT_EQ(view.next_event_time(), TimePoint::max());
  auto handle = queue.schedule(at_us(1), []() {});
  EXPECT_FALSE(view.empty());
  handle.cancel();
  EXPECT_TRUE(view.empty());
}

TEST(EventQueue, LiveCountExcludesCancelled) {
  EventQueue queue;
  auto h1 = queue.schedule(at_us(1), []() {});
  queue.schedule(at_us(2), []() {});
  queue.schedule(at_us(3), []() {});
  const EventQueue& view = queue;  // O(1) and const
  EXPECT_EQ(view.live_count(), 3u);
  h1.cancel();
  EXPECT_EQ(view.live_count(), 2u);
  EXPECT_EQ(view.scheduled_count(), 3u);
}

TEST(EventQueue, CallbackMayScheduleMoreEvents) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(at_us(1), [&]() {
    order.push_back(1);
    queue.schedule(at_us(2), [&]() { order.push_back(2); });
  });
  drain(queue);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

// ---------------------------------------------------------------------------
// Slab-specific behaviour: slot recycling, generation safety, churn.

// A handle whose event fired (or was cancelled) must stay inert even after
// its slot is recycled for a brand-new event: the generation check keeps the
// stale handle from cancelling the slot's new occupant.
TEST(EventQueueSlab, StaleHandleCannotTouchRecycledSlot) {
  EventQueue queue;
  bool first_fired = false;
  EventHandle stale = queue.schedule(at_us(1), [&]() { first_fired = true; });
  drain(queue);
  EXPECT_TRUE(first_fired);
  EXPECT_FALSE(stale.pending());

  // The queue is empty, so the next schedule recycles the same slot.
  bool second_fired = false;
  EventHandle fresh = queue.schedule(at_us(2), [&]() { second_fired = true; });
  EXPECT_EQ(queue.slab_size(), 1u);

  stale.cancel();  // must NOT cancel the recycled slot's new event
  EXPECT_FALSE(stale.pending());
  EXPECT_TRUE(fresh.pending());
  drain(queue);
  EXPECT_TRUE(second_fired);
}

TEST(EventQueueSlab, StaleHandleAfterCancelIsAlsoInert) {
  EventQueue queue;
  EventHandle stale = queue.schedule(at_us(1), []() {});
  stale.cancel();

  bool fired = false;
  queue.schedule(at_us(1), [&]() { fired = true; });
  stale.cancel();  // stale generation, same slot: no-op
  EXPECT_FALSE(stale.pending());
  drain(queue);
  EXPECT_TRUE(fired);
}

// The re-armed timer idiom: cancel + reschedule on every packet. The slab
// must recycle slots (bounded slab growth) and the orphaned heap entries
// must never fire or corrupt ordering.
TEST(EventQueueSlab, CancellationChurnRecyclesSlots) {
  EventQueue queue;
  std::uint64_t fired = 0;
  EventHandle timer;
  for (int i = 0; i < 10'000; ++i) {
    timer.cancel();
    timer = queue.schedule(at_us(100 + i), [&]() { ++fired; });
    EXPECT_EQ(queue.live_count(), 1u);
  }
  // One live event plus whatever transient slots the warmup used; the slab
  // must not have grown per-iteration.
  EXPECT_LE(queue.slab_size(), 4u);
  drain(queue);
  EXPECT_EQ(fired, 1u);  // only the last armed timer survives
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.live_count(), 0u);
}

// (time, seq) ordering holds across recycled slots: slot reuse must not
// perturb the deterministic tie-break.
TEST(EventQueueSlab, OrderingStableAcrossSlotReuse) {
  EventQueue queue;
  std::vector<int> order;
  // Round 1 populates and drains slots 0..2.
  for (int i = 0; i < 3; ++i) {
    queue.schedule(at_us(1), [&order, i]() { order.push_back(i); });
  }
  drain(queue);
  // Round 2 reuses those slots in some order; same timestamps, so the
  // insertion sequence alone must decide firing order.
  for (int i = 3; i < 9; ++i) {
    queue.schedule(at_us(2), [&order, i]() { order.push_back(i); });
  }
  drain(queue);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8}));
}

TEST(EventQueueSlab, MixedCancelAndFireKeepsCountsExact) {
  EventQueue queue;
  std::vector<EventHandle> handles;
  handles.reserve(100);
  for (int i = 0; i < 100; ++i) {
    handles.push_back(queue.schedule(at_us(i), []() {}));
  }
  for (std::size_t i = 0; i < handles.size(); i += 2) handles[i].cancel();
  EXPECT_EQ(queue.live_count(), 50u);
  TimePoint when;
  EventFn callback;
  std::size_t popped = 0;
  while (queue.pop_next(when, callback)) ++popped;
  EXPECT_EQ(popped, 50u);
  EXPECT_EQ(queue.live_count(), 0u);
  EXPECT_TRUE(queue.empty());
  for (auto& handle : handles) EXPECT_FALSE(handle.pending());
}

// ---------------------------------------------------------------------------
// Timer-wheel / 4-ary-heap hybrid: routing, cascade boundaries, wrap-around,
// lazy cancellation inside buckets, and a randomized model check against a
// reference sort. The hybrid is an ordering *cache* — none of these tests
// may observe anything but exact (time, seq) pop order.

TimePoint at_ps(std::int64_t ps) {
  return TimePoint::origin() + Duration::picos(ps);
}

// A schedule inside the wheel's horizon parks in a bucket; one past the
// horizon goes straight to the heap.
TEST(EventQueueWheel, RoutesByHorizon) {
  EventQueue queue;
  const Duration span = EventQueue::wheel_span();
  queue.schedule(TimePoint::origin() + span - Duration::picos(1), []() {});
  EXPECT_EQ(queue.wheel_size(), 1u);
  EXPECT_EQ(queue.heap_size(), 0u);

  queue.schedule(TimePoint::origin() + span, []() {});  // first step beyond
  EXPECT_EQ(queue.wheel_size(), 1u);
  EXPECT_EQ(queue.heap_size(), 1u);

  queue.schedule(TimePoint::origin() + Duration::millis(50), []() {});
  EXPECT_EQ(queue.heap_size(), 2u);
}

// Pop order is exact across the structures: heap-resident far events fire
// after wheel-resident near ones, and entries on either side of a bucket
// boundary (same bucket vs adjacent bucket) keep strict time order.
TEST(EventQueueWheel, BucketBoundariesPreserveOrder) {
  EventQueue queue;
  const std::int64_t width = EventQueue::bucket_width().to_picos();
  std::vector<int> order;
  // Last picosecond of bucket 0, first of bucket 1, plus a same-bucket pair
  // one tick apart and a far-future heap entry.
  queue.schedule(at_ps(width), [&]() { order.push_back(3); });
  queue.schedule(at_ps(width - 1), [&]() { order.push_back(2); });
  queue.schedule(at_ps(1), [&]() { order.push_back(0); });
  queue.schedule(at_ps(2), [&]() { order.push_back(1); });
  queue.schedule(TimePoint::origin() + EventQueue::wheel_span() * 2,
                 [&]() { order.push_back(4); });
  EXPECT_EQ(queue.heap_size(), 1u);
  drain(queue);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

// Same-instant events split across a cascade (scheduled before and after an
// intervening pop) still fire in seq order.
TEST(EventQueueWheel, SameInstantAcrossCascadeKeepsSeqOrder) {
  EventQueue queue;
  std::vector<int> order;
  const TimePoint later = at_us(100);
  queue.schedule(later, [&]() { order.push_back(1); });
  queue.schedule(at_us(1), [&]() { order.push_back(0); });
  TimePoint when;
  EventFn callback;
  ASSERT_TRUE(queue.pop_next(when, callback));  // forces a settle + cascade
  callback();
  queue.schedule(later, [&]() { order.push_back(2); });
  drain(queue);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

// The wheel window slides with the cursor: after a pop advances it, a time
// beyond cursor + span must route to the heap (parking it in a bucket would
// fire it one revolution early), and a time *behind* the cursor — whose
// bucket already drained — must route to the heap as well, never resurrect
// the stale bucket.
TEST(EventQueueWheel, SlidWindowRoutesOutOfRangeTimesToHeap) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(at_us(10), [&]() { order.push_back(0); });
  TimePoint when;
  EventFn callback;
  ASSERT_TRUE(queue.pop_next(when, callback));
  callback();
  // Cursor sits just past 10us; the window now covers ~[10us, 280us).
  queue.schedule(at_us(280), [&]() { order.push_back(3); });  // beyond window
  queue.schedule(at_us(5), [&]() { order.push_back(1); });    // behind cursor
  EXPECT_EQ(queue.heap_size(), 2u)
      << "out-of-window times must route to the heap, not alias a bucket";
  queue.schedule(at_us(20), [&]() { order.push_back(2); });  // in window
  EXPECT_EQ(queue.wheel_size(), 1u);
  drain(queue);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

// Cancelling a wheel-resident event is O(1) on the slot; the bucket entry is
// dropped lazily and never fires, and the queue's live view is immediate.
TEST(EventQueueWheel, CancellationInsideBucketIsLazyButExact) {
  EventQueue queue;
  bool fired = false;
  EventHandle doomed = queue.schedule(at_us(3), [&]() { fired = true; });
  queue.schedule(at_us(5), []() {});
  ASSERT_EQ(queue.wheel_size(), 2u);
  doomed.cancel();
  EXPECT_EQ(queue.wheel_size(), 2u);  // entry parked until its bucket drains
  EXPECT_EQ(queue.live_count(), 1u);
  EXPECT_EQ(queue.next_event_time(), at_us(5));
  drain(queue);
  EXPECT_FALSE(fired);
  EXPECT_EQ(queue.wheel_size(), 0u);
}

// Reserved sequence numbers give an insert the tie-break rank of the moment
// its cause happened, regardless of actual insertion order — the contract
// Wire's burst batching leans on.
TEST(EventQueueWheel, ReservedSeqOutranksLaterSchedulesAtSameInstant) {
  EventQueue queue;
  std::vector<int> order;
  const std::uint64_t early = queue.reserve_seq();
  queue.schedule(at_us(4), [&]() { order.push_back(1); });
  queue.schedule_reserved(at_us(4), early, [&]() { order.push_back(0); });
  EXPECT_EQ(queue.scheduled_count(), 2u);
  drain(queue);
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

// Randomized model check: a few thousand schedules spanning wheel and heap
// horizons, with a slice cancelled, must pop in exactly the reference
// (time, seq) order. Deterministic LCG, so a failure is replayable.
TEST(EventQueueWheel, RandomizedPopOrderMatchesReferenceSort) {
  EventQueue queue;
  std::uint64_t state = 0x9E3779B97F4A7C15ull;
  auto next_random = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 11;
  };
  const std::int64_t horizon = EventQueue::wheel_span().to_picos() * 3;
  std::vector<std::pair<std::int64_t, std::uint64_t>> reference;  // (ps, seq)
  std::vector<std::uint64_t> popped;
  std::vector<EventHandle> handles;
  for (std::uint64_t seq = 0; seq < 5000; ++seq) {
    const std::int64_t ps =
        static_cast<std::int64_t>(next_random() % horizon);
    handles.push_back(
        queue.schedule(at_ps(ps), [&popped, seq]() { popped.push_back(seq); }));
    if (next_random() % 10 == 0) {
      handles.back().cancel();
    } else {
      reference.emplace_back(ps, seq);
    }
  }
  std::sort(reference.begin(), reference.end());
  drain(queue);
  ASSERT_EQ(popped.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(popped[i], reference[i].second) << "divergence at pop " << i;
  }
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.wheel_size(), 0u);
  EXPECT_EQ(queue.heap_size(), 0u);
}

// Interleaved pop/schedule with a moving cursor: events scheduled relative
// to "now" as the clock advances (the simulation's actual usage pattern)
// never fire out of order even as buckets recycle across revolutions.
TEST(EventQueueWheel, InterleavedScheduleAndPopAcrossRevolutions) {
  EventQueue queue;
  std::uint64_t state = 42;
  auto next_random = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 11;
  };
  TimePoint now = TimePoint::origin();
  std::vector<TimePoint> fired;
  const std::int64_t reach = EventQueue::wheel_span().to_picos();  // 1 lap
  for (int i = 0; i < 64; ++i) {
    queue.schedule(now + Duration::picos(static_cast<std::int64_t>(
                             next_random() % reach)),
                   [&fired, &now]() { fired.push_back(now); });
  }
  TimePoint when;
  EventFn callback;
  while (queue.pop_next(when, callback)) {
    ASSERT_GE(when, now);
    now = when;
    callback();
    // Keep ~4 revolutions of churn flowing through the recycled buckets.
    if (fired.size() < 512) {
      queue.schedule(now + Duration::picos(static_cast<std::int64_t>(
                               next_random() % reach) + 1),
                     [&fired, &now]() { fired.push_back(now); });
    }
  }
  EXPECT_GE(fired.size(), 512u);
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
}

// Move-only captures now flow straight into event closures — the property
// the packet path relies on instead of shared_ptr wrappers.
TEST(EventQueueSlab, HoldsMoveOnlyCaptures) {
  EventQueue queue;
  auto payload = std::make_unique<int>(41);
  int result = 0;
  queue.schedule(at_us(1), [&result, p = std::move(payload)]() {
    result = *p + 1;
  });
  drain(queue);
  EXPECT_EQ(result, 42);
}

}  // namespace
}  // namespace nicsched::sim
