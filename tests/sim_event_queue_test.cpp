#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace nicsched::sim {
namespace {

TimePoint at_us(std::int64_t us) {
  return TimePoint::origin() + Duration::micros(us);
}

std::vector<int> drain(EventQueue& queue) {
  std::vector<int> order;
  TimePoint when;
  std::function<void()> callback;
  while (queue.pop_next(when, callback)) callback();
  (void)order;
  return order;
}

TEST(EventQueue, FiresInTimestampOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(at_us(30), [&]() { order.push_back(3); });
  queue.schedule(at_us(10), [&]() { order.push_back(1); });
  queue.schedule(at_us(20), [&]() { order.push_back(2); });

  TimePoint when;
  std::function<void()> callback;
  while (queue.pop_next(when, callback)) callback();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SimultaneousEventsFireInScheduleOrder) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    queue.schedule(at_us(7), [&order, i]() { order.push_back(i); });
  }
  TimePoint when;
  std::function<void()> callback;
  while (queue.pop_next(when, callback)) callback();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue queue;
  bool fired = false;
  EventHandle handle = queue.schedule(at_us(5), [&]() { fired = true; });
  EXPECT_TRUE(handle.pending());
  handle.cancel();
  EXPECT_FALSE(handle.pending());

  TimePoint when;
  std::function<void()> callback;
  EXPECT_FALSE(queue.pop_next(when, callback));
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelIsIdempotentAndSafeAfterFire) {
  EventQueue queue;
  EventHandle handle = queue.schedule(at_us(1), []() {});
  TimePoint when;
  std::function<void()> callback;
  ASSERT_TRUE(queue.pop_next(when, callback));
  callback();
  handle.cancel();  // no effect, no crash
  handle.cancel();
  EXPECT_FALSE(handle.pending());

  EventHandle empty;  // default-constructed
  empty.cancel();
  EXPECT_FALSE(empty.pending());
}

TEST(EventQueue, CancelledEventsAreSkippedNotReturned) {
  EventQueue queue;
  std::vector<int> order;
  auto h1 = queue.schedule(at_us(1), [&]() { order.push_back(1); });
  queue.schedule(at_us(2), [&]() { order.push_back(2); });
  auto h3 = queue.schedule(at_us(3), [&]() { order.push_back(3); });
  h1.cancel();
  h3.cancel();

  TimePoint when;
  std::function<void()> callback;
  while (queue.pop_next(when, callback)) callback();
  EXPECT_EQ(order, (std::vector<int>{2}));
}

TEST(EventQueue, NextEventTimeSkipsCancelled) {
  EventQueue queue;
  auto h1 = queue.schedule(at_us(1), []() {});
  queue.schedule(at_us(9), []() {});
  EXPECT_EQ(queue.next_event_time(), at_us(1));
  h1.cancel();
  EXPECT_EQ(queue.next_event_time(), at_us(9));
}

TEST(EventQueue, EmptyAccountsForCancellation) {
  EventQueue queue;
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.next_event_time(), TimePoint::max());
  auto handle = queue.schedule(at_us(1), []() {});
  EXPECT_FALSE(queue.empty());
  handle.cancel();
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, LiveCountExcludesCancelled) {
  EventQueue queue;
  auto h1 = queue.schedule(at_us(1), []() {});
  queue.schedule(at_us(2), []() {});
  queue.schedule(at_us(3), []() {});
  EXPECT_EQ(queue.live_count(), 3u);
  h1.cancel();
  EXPECT_EQ(queue.live_count(), 2u);
  EXPECT_EQ(queue.scheduled_count(), 3u);
}

TEST(EventQueue, CallbackMayScheduleMoreEvents) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(at_us(1), [&]() {
    order.push_back(1);
    queue.schedule(at_us(2), [&]() { order.push_back(2); });
  });
  TimePoint when;
  std::function<void()> callback;
  while (queue.pop_next(when, callback)) callback();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

}  // namespace
}  // namespace nicsched::sim
