// Validation against closed-form queueing theory: a single simulated CPU
// core fed by a Poisson process must reproduce the M/M/1 and M/D/1 sojourn
// times, and utilization must equal ρ. If these fail, nothing measured on
// top of the simulator can be trusted.
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "hw/cpu_core.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace nicsched {
namespace {

struct QueueingResult {
  double mean_sojourn_us = 0.0;
  double utilization = 0.0;
  std::uint64_t completed = 0;
};

/// Drives one CpuCore as a FIFO single-server queue: Poisson(λ) arrivals,
/// service times from `draw_service`.
QueueingResult run_single_server(double lambda_per_us,
                                 std::function<double(sim::Rng&)> draw_service,
                                 double sim_ms, std::uint64_t seed) {
  sim::Simulator sim;
  hw::CpuCore core(sim, {"mm1", sim::Frequency::gigahertz(2.3), 1.0});
  sim::Rng arrivals_rng(seed);
  sim::Rng service_rng(seed + 1);

  QueueingResult result;
  double sojourn_sum_us = 0.0;
  const sim::TimePoint end =
      sim::TimePoint::origin() + sim::Duration::millis(sim_ms);

  std::function<void()> schedule_arrival = [&]() {
    const double gap_us = arrivals_rng.exponential(1.0 / lambda_per_us);
    sim.after(sim::Duration::micros(gap_us), [&]() {
      if (sim.now() > end) return;
      const sim::TimePoint arrived = sim.now();
      const double service_us = draw_service(service_rng);
      core.run(sim::Duration::micros(service_us), [&, arrived]() {
        sojourn_sum_us += (sim.now() - arrived).to_micros();
        ++result.completed;
      });
      schedule_arrival();
    });
  };
  schedule_arrival();
  sim.run();

  result.mean_sojourn_us =
      sojourn_sum_us / static_cast<double>(result.completed);
  result.utilization = core.stats().busy.to_micros() / (sim_ms * 1e3);
  return result;
}

TEST(QueueingTheory, MM1SojournMatchesClosedForm) {
  // M/M/1: E[T] = E[S] / (1 - ρ). E[S] = 1 us, λ = 0.5/us → ρ = 0.5,
  // E[T] = 2 us.
  const auto result = run_single_server(
      0.5, [](sim::Rng& rng) { return rng.exponential(1.0); }, 400.0, 11);
  ASSERT_GT(result.completed, 100'000u);
  EXPECT_NEAR(result.mean_sojourn_us, 2.0, 0.1);
  EXPECT_NEAR(result.utilization, 0.5, 0.02);
}

TEST(QueueingTheory, MM1HighLoad) {
  // ρ = 0.8 → E[T] = 5 us. Longer run: high-ρ estimators converge slowly.
  const auto result = run_single_server(
      0.8, [](sim::Rng& rng) { return rng.exponential(1.0); }, 3000.0, 12);
  EXPECT_NEAR(result.mean_sojourn_us, 5.0, 0.5);
  EXPECT_NEAR(result.utilization, 0.8, 0.02);
}

TEST(QueueingTheory, MD1WaitIsHalfOfMM1) {
  // M/D/1: E[W] = ρ E[S] / (2(1-ρ)) — half the M/M/1 wait. With E[S] = 1 us
  // and ρ = 0.5: E[T] = 1 + 0.5 = 1.5 us.
  const auto result = run_single_server(
      0.5, [](sim::Rng&) { return 1.0; }, 400.0, 13);
  EXPECT_NEAR(result.mean_sojourn_us, 1.5, 0.08);
}

TEST(QueueingTheory, MG1PollaczekKhinchine) {
  // M/G/1 with a bimodal service (95 % x 0.5 us, 5 % x 10 us):
  // E[S] = 0.975 us, E[S^2] = 5.11875 us², λ = 0.4/us → ρ = 0.39.
  // P-K: E[W] = λ E[S^2] / (2(1-ρ)) = 0.4*5.11875/(2*0.61) = 1.678 us.
  const double expected_wait = 0.4 * 5.11875 / (2.0 * (1.0 - 0.39));
  const auto result = run_single_server(
      0.4,
      [](sim::Rng& rng) { return rng.bernoulli(0.05) ? 10.0 : 0.5; }, 2000.0,
      14);
  EXPECT_NEAR(result.mean_sojourn_us, 0.975 + expected_wait,
              (0.975 + expected_wait) * 0.06);
}

TEST(QueueingTheory, UtilizationIsExactlyOfferedRho) {
  for (const double rho : {0.2, 0.6, 0.9}) {
    const auto result = run_single_server(
        rho, [](sim::Rng&) { return 1.0; }, 1000.0, 15);
    EXPECT_NEAR(result.utilization, rho, 0.02) << "rho=" << rho;
  }
}

}  // namespace
}  // namespace nicsched
