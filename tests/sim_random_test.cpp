#include "sim/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace nicsched::sim {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDifferentStreams) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, ForkProducesDistinctDeterministicChildren) {
  Rng parent1(777);
  Rng parent2(777);
  Rng childA1 = parent1.fork();
  Rng childA2 = parent1.fork();
  Rng childB1 = parent2.fork();
  Rng childB2 = parent2.fork();
  // Fork is deterministic in (seed, fork index)...
  EXPECT_EQ(childA1.seed(), childB1.seed());
  EXPECT_EQ(childA2.seed(), childB2.seed());
  // ...and successive forks differ.
  EXPECT_NE(childA1.seed(), childA2.seed());
}

TEST(Rng, UniformBounds) {
  Rng rng(9);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1'000; ++i) {
    const double u = rng.uniform(5.0, 7.0);
    EXPECT_GE(u, 5.0);
    EXPECT_LT(u, 7.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(10);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10'000; ++i) seen.insert(rng.uniform_int(3, 10));
  EXPECT_EQ(seen.size(), 8u);
  EXPECT_EQ(*seen.begin(), 3u);
  EXPECT_EQ(*seen.rbegin(), 10u);
}

TEST(Rng, ExponentialMean) {
  Rng rng(11);
  const double mean = 80.0;
  double sum = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(mean);
  EXPECT_NEAR(sum / n, mean, mean * 0.02);
}

TEST(Rng, BernoulliProbability) {
  Rng rng(13);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.005)) ++hits;
  }
  // 0.5 % of 100k = 500 expected; allow generous slack.
  EXPECT_GT(hits, 350);
  EXPECT_LT(hits, 700);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  double sum = 0, sq = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.1);
}

}  // namespace
}  // namespace nicsched::sim
