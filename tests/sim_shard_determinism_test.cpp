// Parallel-engine determinism tier (DESIGN §14).
//
// The sharded simulator's whole contract is that parallelism is invisible in
// results:
//
//   * one shard IS the serial engine — `ShardGroup(1)` delegates run/sync
//     straight to its single `Simulator`, so every pre-shard golden (see
//     sim_determinism_test) now runs through the group and still matches bit
//     for bit;
//   * N shards are *shard-count-invariant* — the full observable output of a
//     rack run (every response record, every span, client totals, server and
//     ToR counters) hashes to the same digest for 1, 2, and 4 shards, across
//     seeds, server families, reliable-dispatch retransmission, and fault
//     schedules;
//   * runs are seed-stable — repeating a 4-shard run yields the identical
//     digest regardless of thread scheduling.
//
// The smoke tier (NICSCHED_FAST=1, `ctest -L parallel`) keeps one seed and
// shard counts {1, 2}; the full tier runs three seeds and {1, 2, 4}.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "core/cluster.h"
#include "core/testbed.h"
#include "fault/fault_schedule.h"
#include "obs/capture.h"
#include "rack/tor_scheduler.h"
#include "sim/shard.h"
#include "stats/response_log.h"

namespace nicsched {
namespace {

sim::TimePoint at_ms(std::int64_t ms) {
  return sim::TimePoint::origin() + sim::Duration::millis(ms);
}

bool fast_mode() { return std::getenv("NICSCHED_FAST") != nullptr; }

std::vector<std::uint64_t> tier_seeds() {
  return fast_mode() ? std::vector<std::uint64_t>{1}
                     : std::vector<std::uint64_t>{1, 2, 3};
}

std::vector<std::size_t> tier_shard_counts() {
  return fast_mode() ? std::vector<std::size_t>{1, 2}
                     : std::vector<std::size_t>{1, 2, 4};
}

class Digest {
 public:
  void add(std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (value >> (8 * i)) & 0xff;
      hash_ *= 1099511628211ULL;  // FNV-1a 64
    }
  }
  void add_signed(std::int64_t value) {
    add(static_cast<std::uint64_t>(value));
  }
  void add_double(double value) { add(std::bit_cast<std::uint64_t>(value)); }
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 14695981039346656037ULL;
};

void hash_lifecycles(Digest& digest,
                     const std::vector<obs::RequestLifecycle>& lifecycles) {
  digest.add(lifecycles.size());
  for (const auto& lifecycle : lifecycles) {
    digest.add(lifecycle.request_id);
    digest.add(lifecycle.complete ? 1 : 0);
    digest.add(lifecycle.spans.size());
    for (const auto& span : lifecycle.spans) {
      digest.add(static_cast<std::uint64_t>(span.kind));
      digest.add(span.component);
      digest.add_signed(span.begin.to_picos());
      digest.add_signed(span.end.to_picos());
    }
  }
}

void hash_server_stats(Digest& digest, const core::ServerStats& s) {
  digest.add(s.requests_received);
  digest.add(s.responses_sent);
  digest.add(s.preemptions);
  digest.add(s.spurious_interrupts);
  digest.add(s.steals);
  digest.add(s.drops);
  digest.add(s.queue_max_depth);
  for (double u : s.worker_utilization) digest.add_double(u);
  digest.add(s.ddio.l1_touches);
  digest.add(s.ddio.llc_touches);
  digest.add(s.ddio.dram_touches);
  digest.add(s.reliability.retransmits);
  digest.add(s.reliability.timeouts);
  digest.add(s.reliability.redispatched);
  digest.add(s.reliability.abandoned);
  digest.add(s.reliability.duplicates);
  digest.add(s.overload.admitted);
  digest.add(s.overload.rejected);
  digest.add(s.overload.shed_expired);
}

/// Which extra machinery the rack run exercises on top of plain dispatch.
enum class Scenario {
  kPlain,
  kReliable,  // dispatcher↔worker reliable protocol + dispatch-frame loss
  kFaulted,   // ingress loss, link degrade, worker stall/crash on host 0
};

/// One 4-host rack run at `shards`, hashed over everything observable:
/// ordered response log, client totals, aggregate + per-host server stats,
/// ToR dispatch counters, and the merged span streams (lifecycles are keyed
/// by request id, so the hash is independent of merge bookkeeping).
std::uint64_t rack_digest(core::SystemKind kind, std::uint64_t seed,
                          std::size_t shards, Scenario scenario) {
  stats::ResponseLog log;
  obs::CaptureOptions capture;
  capture.enabled = true;
  capture.spans = true;
  capture.metric_cadence = sim::Duration::zero();  // spans only
  capture.label = "shard_determinism";

  auto config = core::ExperimentConfig::of(kind)
                    .workers(2)
                    .outstanding(2)
                    .bimodal()  // 5us/100us: preemption + requeue traffic
                    .load(200e3)
                    .clients(2, 8)
                    .measure_for(sim::Duration::millis(2))
                    .with_seed(seed)
                    .with_rack(4, rack::TorPolicy::kPowerOfTwo)
                    .with_shards(shards)
                    .with_capture(capture);
  config.warmup = sim::Duration::millis(1);
  config.drain = sim::Duration::millis(1);
  config.response_log = &log;
  if (scenario == Scenario::kReliable) {
    config.reliable();
    config.with_faults(fault::FaultSchedule{}
                           .with_seed(seed * 977 + 11)
                           .dispatch_loss(at_ms(1), at_ms(2), 0.05));
  } else if (scenario == Scenario::kFaulted) {
    config.with_faults(fault::FaultSchedule{}
                           .with_seed(seed * 977 + 11)
                           .ingress_loss(at_ms(1), at_ms(2), 0.02)
                           .degrade_ingress(at_ms(1), at_ms(3), 2.0)
                           .stall_worker(at_ms(1), 0, sim::Duration::micros(200))
                           .crash_worker(at_ms(2), 1)
                           .resume_worker(at_ms(3), 1));
  }

  const core::ExperimentResult result = core::run_experiment(config);

  Digest digest;
  digest.add(log.seen());
  for (const auto& r : log.records()) {
    digest.add(r.request_id);
    digest.add(r.kind);
    digest.add(r.preempt_count);
    digest.add_signed(r.sent_at.to_picos());
    digest.add_signed(r.received_at.to_picos());
    digest.add_signed(r.work.to_picos());
  }
  const auto& totals = result.clients;
  digest.add(totals.sent);
  digest.add(totals.completed);
  digest.add(totals.goodput);
  digest.add(totals.rejected);
  digest.add(totals.expired);
  digest.add(totals.abandoned);
  digest.add(totals.outstanding);
  digest.add(totals.retries);
  digest.add(totals.duplicates);
  hash_server_stats(digest, result.server);
  for (const auto& host : result.rack_hosts) hash_server_stats(digest, host);
  if (result.rack) {
    digest.add(result.rack->requests_forwarded);
    digest.add(result.rack->responses_forwarded);
    digest.add(result.rack->rejects_forwarded);
    digest.add(result.rack->affinity_hits);
    digest.add(result.rack->informed_decisions);
    digest.add(result.rack->stale_decisions);
    digest.add(result.rack->feedback_samples);
    for (const auto& host : result.rack->hosts) {
      digest.add(host.requests);
      digest.add(host.responses);
      digest.add(host.deaths);
      digest.add(host.revivals);
    }
  }
  if (result.capture) {
    hash_lifecycles(digest, result.capture->spans().completed());
    hash_lifecycles(digest, result.capture->spans().incomplete());
    digest.add(result.capture->spans().violations());
  }
  return digest.value();
}

const core::SystemKind kFamilies[] = {
    core::SystemKind::kShinjuku,
    core::SystemKind::kShinjukuOffload,
    core::SystemKind::kRss,
    core::SystemKind::kIdealNic,
    core::SystemKind::kRain,
};

// The headline invariant: the digest of a rack run does not depend on how
// many shards executed it.
TEST(ShardDeterminism, DigestInvariantAcrossShardCounts) {
  for (const core::SystemKind kind : kFamilies) {
    for (const std::uint64_t seed : tier_seeds()) {
      const std::uint64_t serial =
          rack_digest(kind, seed, 1, Scenario::kPlain);
      for (const std::size_t shards : tier_shard_counts()) {
        if (shards == 1) continue;
        EXPECT_EQ(rack_digest(kind, seed, shards, Scenario::kPlain), serial)
            << "kind=" << core::to_string(kind) << " seed=" << seed
            << " shards=" << shards;
      }
    }
  }
}

// Reliable dispatch adds retransmission timers and redispatch inside each
// host; dispatch-frame loss forces them to fire. All host-local, so the
// invariance must survive it.
TEST(ShardDeterminism, ReliableRetransmissionInvariant) {
  for (const std::uint64_t seed : tier_seeds()) {
    const std::uint64_t serial = rack_digest(
        core::SystemKind::kShinjukuOffload, seed, 1, Scenario::kReliable);
    for (const std::size_t shards : tier_shard_counts()) {
      if (shards == 1) continue;
      EXPECT_EQ(rack_digest(core::SystemKind::kShinjukuOffload, seed, shards,
                            Scenario::kReliable),
                serial)
          << "seed=" << seed << " shards=" << shards;
    }
  }
}

// Fault schedules target host 0, which lives on shard 1 in sharded builds;
// the injector's events must interleave with the host's own identically.
TEST(ShardDeterminism, FaultScheduleInvariant) {
  for (const std::uint64_t seed : tier_seeds()) {
    const std::uint64_t serial = rack_digest(
        core::SystemKind::kShinjukuOffload, seed, 1, Scenario::kFaulted);
    for (const std::size_t shards : tier_shard_counts()) {
      if (shards == 1) continue;
      EXPECT_EQ(rack_digest(core::SystemKind::kShinjukuOffload, seed, shards,
                            Scenario::kFaulted),
                serial)
          << "seed=" << seed << " shards=" << shards;
    }
  }
}

// Thread-schedule independence: the same 4-shard run twice in one process.
TEST(ShardDeterminism, RepeatedShardedRunsAgree) {
  const std::size_t shards = fast_mode() ? 2 : 4;
  const std::uint64_t first =
      rack_digest(core::SystemKind::kShinjukuOffload, 7, shards,
                  Scenario::kPlain);
  const std::uint64_t second =
      rack_digest(core::SystemKind::kShinjukuOffload, 7, shards,
                  Scenario::kPlain);
  EXPECT_EQ(first, second);
  // And the digest is not degenerate: a different seed must not collide.
  EXPECT_NE(first, rack_digest(core::SystemKind::kShinjukuOffload, 8, shards,
                               Scenario::kPlain));
}

// Topologies with no wire boundary clamp to one shard rather than failing:
// requesting 4 shards for a single-host run is the serial run.
TEST(ShardDeterminism, SingleHostClampsToSerial) {
  stats::ResponseLog log_a;
  stats::ResponseLog log_b;
  auto config = core::ExperimentConfig::of(core::SystemKind::kShinjukuOffload)
                    .workers(2)
                    .outstanding(2)
                    .bimodal()
                    .load(150e3)
                    .clients(2, 8)
                    .measure_for(sim::Duration::millis(2))
                    .with_seed(5);
  config.response_log = &log_a;
  auto shardy = config;
  shardy.with_shards(4);
  shardy.response_log = &log_b;
  const auto serial = core::run_experiment(config);
  const auto clamped = core::run_experiment(shardy);
  EXPECT_EQ(serial.events_fired, clamped.events_fired);
  ASSERT_EQ(log_a.records().size(), log_b.records().size());
  for (std::size_t i = 0; i < log_a.records().size(); ++i) {
    EXPECT_EQ(log_a.records()[i].request_id, log_b.records()[i].request_id);
    EXPECT_EQ(log_a.records()[i].received_at, log_b.records()[i].received_at);
  }
}

// The kJsqIdeal oracle reads live cross-shard telemetry, which no lookahead
// licenses: run_experiment clamps it to one shard, and building the same
// topology over a multi-shard group by hand throws.
TEST(ShardDeterminism, JsqIdealClampsAndBuilderRejects) {
  const std::uint64_t serial = rack_digest(core::SystemKind::kShinjukuOffload,
                                           1, 1, Scenario::kPlain);
  (void)serial;  // rack_digest above also warms the comparison path
  auto config = core::ExperimentConfig::of(core::SystemKind::kShinjukuOffload)
                    .workers(2)
                    .bimodal()
                    .load(150e3)
                    .clients(2, 8)
                    .measure_for(sim::Duration::millis(1))
                    .with_rack(4, rack::TorPolicy::kJsqIdeal)
                    .with_seed(1);
  auto clamped = config;
  clamped.with_shards(4);
  const auto a = core::run_experiment(config);
  const auto b = core::run_experiment(clamped);
  EXPECT_EQ(a.events_fired, b.events_fired);
  EXPECT_EQ(a.clients.completed, b.clients.completed);

  // Direct builder misuse is loud, not silently serial.
  sim::ShardGroup group(3);
  core::ClusterBuilder single(group);
  single.add_host(core::HostSpec::offload());
  EXPECT_THROW(single.build(), std::invalid_argument);

  core::ClusterBuilder oracle(group);
  rack::TorParams params;
  params.policy = rack::TorPolicy::kJsqIdeal;
  oracle.with_rack(params);
  for (int i = 0; i < 4; ++i) oracle.add_host(core::HostSpec::offload());
  EXPECT_THROW(oracle.build(), std::invalid_argument);
}

}  // namespace
}  // namespace nicsched
