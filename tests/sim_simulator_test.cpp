#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace nicsched::sim {
namespace {

TEST(Simulator, ClockIsCurrentInsideCallbacks) {
  // Regression test: callbacks must observe the event's own timestamp, not
  // the previous event's. A stale clock silently compresses every relative
  // delay in the simulation.
  Simulator sim;
  TimePoint observed;
  sim.after(Duration::micros(80), [&]() { observed = sim.now(); });
  sim.run();
  EXPECT_EQ(observed, TimePoint::origin() + Duration::micros(80));
}

TEST(Simulator, ChainedDelaysAccumulate) {
  Simulator sim;
  int steps = 0;
  std::function<void()> chain = [&]() {
    if (++steps < 5) sim.after(Duration::micros(80), chain);
  };
  sim.after(Duration::micros(80), chain);
  sim.run();
  EXPECT_EQ(steps, 5);
  EXPECT_EQ(sim.now(), TimePoint::origin() + Duration::micros(400));
}

TEST(Simulator, RunUntilStopsAtDeadlineAndAdvancesClock) {
  Simulator sim;
  std::vector<int> fired;
  sim.after(Duration::micros(10), [&]() { fired.push_back(1); });
  sim.after(Duration::micros(30), [&]() { fired.push_back(2); });

  sim.run_until(TimePoint::origin() + Duration::micros(20));
  EXPECT_EQ(fired, (std::vector<int>{1}));
  // Clock advances to the deadline even though no event sits there.
  EXPECT_EQ(sim.now(), TimePoint::origin() + Duration::micros(20));

  sim.run_until(TimePoint::origin() + Duration::micros(40));
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
}

TEST(Simulator, RunUntilIncludesEventsExactlyAtDeadline) {
  Simulator sim;
  bool fired = false;
  sim.after(Duration::micros(20), [&]() { fired = true; });
  sim.run_until(TimePoint::origin() + Duration::micros(20));
  EXPECT_TRUE(fired);
}

TEST(Simulator, DeferRunsAtCurrentInstantAfterQueuedWork) {
  Simulator sim;
  std::vector<int> order;
  sim.after(Duration::micros(1), [&]() {
    order.push_back(1);
    sim.defer([&]() { order.push_back(3); });
    order.push_back(2);
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), TimePoint::origin() + Duration::micros(1));
}

TEST(Simulator, StopEndsRunEarly) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.after(Duration::micros(i), [&]() {
      if (++count == 3) sim.stop();
    });
  }
  sim.run();
  EXPECT_EQ(count, 3);
  // A later run() resumes with remaining events.
  sim.run();
  EXPECT_EQ(count, 10);
}

TEST(Simulator, SchedulingIntoThePastThrows) {
  Simulator sim;
  sim.after(Duration::micros(10), []() {});
  sim.run();
  EXPECT_THROW(sim.at(TimePoint::origin(), []() {}), std::logic_error);
  EXPECT_THROW(sim.after(Duration::micros(-1), []() {}), std::logic_error);
}

TEST(Simulator, StepFiresOneEvent) {
  Simulator sim;
  int count = 0;
  sim.after(Duration::micros(1), [&]() { ++count; });
  sim.after(Duration::micros(2), [&]() { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, EventsFiredCounts) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.after(Duration::micros(i + 1), []() {});
  sim.run();
  EXPECT_EQ(sim.events_fired(), 7u);
}

TEST(Simulator, RunReturnsFiredCount) {
  Simulator sim;
  for (int i = 0; i < 4; ++i) sim.after(Duration::micros(i + 1), []() {});
  EXPECT_EQ(sim.run(), 4u);
  EXPECT_EQ(sim.run(), 0u);
}

TEST(Simulator, CancelledTimerDoesNotFire) {
  Simulator sim;
  bool fired = false;
  EventHandle timer = sim.after(Duration::micros(10), [&]() { fired = true; });
  sim.after(Duration::micros(5), [&]() { timer.cancel(); });
  sim.run();
  EXPECT_FALSE(fired);
}

}  // namespace
}  // namespace nicsched::sim
