// Stress and determinism properties of the event queue under randomized
// schedule/cancel storms, checked against a simple reference model.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "sim/random.h"
#include "sim/simulator.h"

namespace nicsched::sim {
namespace {

class EventStorm : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventStorm, MatchesReferenceModelUnderRandomCancellation) {
  Rng rng(GetParam());
  Simulator sim;

  struct Planned {
    std::int64_t when_ps;
    std::uint64_t id;
    bool cancelled = false;
  };
  std::vector<Planned> plan;
  std::vector<EventHandle> handles;
  std::vector<std::uint64_t> fired;

  constexpr int kEvents = 5000;
  for (std::uint64_t i = 0; i < kEvents; ++i) {
    const auto when_ps =
        static_cast<std::int64_t>(rng.uniform_int(1, 1'000'000));
    plan.push_back({when_ps, i});
    handles.push_back(
        sim.at(TimePoint::from_picos(when_ps),
               [&fired, i]() { fired.push_back(i); }));
  }
  // Cancel a random ~30 %.
  for (std::size_t i = 0; i < plan.size(); ++i) {
    if (rng.bernoulli(0.3)) {
      plan[i].cancelled = true;
      handles[i].cancel();
    }
  }
  sim.run();

  // Reference: stable sort of uncancelled events by (time, insertion id).
  std::vector<Planned> expected;
  for (const auto& planned : plan) {
    if (!planned.cancelled) expected.push_back(planned);
  }
  std::stable_sort(expected.begin(), expected.end(),
                   [](const Planned& a, const Planned& b) {
                     return a.when_ps < b.when_ps;
                   });
  ASSERT_EQ(fired.size(), expected.size());
  for (std::size_t i = 0; i < fired.size(); ++i) {
    EXPECT_EQ(fired[i], expected[i].id) << "position " << i;
  }
}

TEST_P(EventStorm, RecursiveSchedulingIsDeterministic) {
  auto run_once = [](std::uint64_t seed) {
    Simulator sim;
    Rng rng(seed);
    std::vector<std::int64_t> trace;
    int remaining = 4000;
    std::function<void()> spawn = [&]() {
      if (--remaining < 0) return;
      trace.push_back(sim.now().to_picos());
      const int children = static_cast<int>(rng.uniform_int(0, 2));
      for (int c = 0; c < children; ++c) {
        sim.after(Duration::picos(
                      static_cast<std::int64_t>(rng.uniform_int(1, 1000))),
                  spawn);
      }
    };
    for (int i = 0; i < 50; ++i) {
      sim.after(Duration::picos(static_cast<std::int64_t>(i + 1)), spawn);
    }
    sim.run();
    return trace;
  };
  const auto a = run_once(GetParam());
  const auto b = run_once(GetParam());
  EXPECT_EQ(a, b);
  EXPECT_GT(a.size(), 100u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventStorm, ::testing::Values(1, 2, 3));

TEST(SimStress, MillionEventThroughputSanity) {
  Simulator sim;
  std::uint64_t count = 0;
  std::function<void()> chain = [&]() {
    if (++count < 1'000'000) sim.after(Duration::picos(100), chain);
  };
  chain();
  sim.run();
  EXPECT_EQ(count, 1'000'000u);
  // The first increment happens synchronously at t=0; 999'999 chained
  // events of 100 ps each follow.
  EXPECT_EQ(sim.now().to_picos(), 99'999'900);
}

}  // namespace
}  // namespace nicsched::sim
