#include "sim/time.h"

#include <gtest/gtest.h>

namespace nicsched::sim {
namespace {

TEST(Duration, UnitConstructorsAgree) {
  EXPECT_EQ(Duration::nanos(1), Duration::picos(1'000));
  EXPECT_EQ(Duration::micros(1), Duration::nanos(1'000));
  EXPECT_EQ(Duration::millis(1), Duration::micros(1'000));
  EXPECT_EQ(Duration::seconds(1), Duration::millis(1'000));
}

TEST(Duration, FractionalConstructorsRound) {
  EXPECT_EQ(Duration::micros(2.56).to_picos(), 2'560'000);
  EXPECT_EQ(Duration::nanos(0.4).to_picos(), 400);
  EXPECT_EQ(Duration::nanos(0.0004).to_picos(), 0);
  EXPECT_EQ(Duration::nanos(-1.5).to_picos(), -1'500);
}

TEST(Duration, Arithmetic) {
  const Duration a = Duration::micros(10);
  const Duration b = Duration::micros(4);
  EXPECT_EQ((a + b).to_micros(), 14.0);
  EXPECT_EQ((a - b).to_micros(), 6.0);
  EXPECT_EQ((-b).to_micros(), -4.0);
  EXPECT_EQ((a * 3).to_micros(), 30.0);
  EXPECT_EQ((3 * a).to_micros(), 30.0);
  EXPECT_EQ((a * 0.5).to_micros(), 5.0);
  EXPECT_EQ((a / 2).to_micros(), 5.0);
  EXPECT_DOUBLE_EQ(a / b, 2.5);

  Duration c = a;
  c += b;
  EXPECT_EQ(c, Duration::micros(14));
  c -= a;
  EXPECT_EQ(c, b);
}

TEST(Duration, Comparisons) {
  EXPECT_LT(Duration::nanos(999), Duration::micros(1));
  EXPECT_GT(Duration::millis(1), Duration::micros(999));
  EXPECT_LE(Duration::zero(), Duration::zero());
  EXPECT_TRUE(Duration::zero().is_zero());
  EXPECT_TRUE((Duration::zero() - Duration::nanos(1)).is_negative());
  EXPECT_FALSE(Duration::nanos(1).is_negative());
}

TEST(Duration, ToStringPicksUnits) {
  EXPECT_EQ(Duration::picos(500).to_string(), "500ps");
  EXPECT_EQ(Duration::nanos(250).to_string(), "250ns");
  EXPECT_EQ(Duration::micros(2.56).to_string(), "2.56us");
  EXPECT_EQ(Duration::millis(12).to_string(), "12ms");
  EXPECT_EQ(Duration::seconds(3).to_string(), "3s");
}

TEST(TimePoint, ArithmeticAndOrdering) {
  const TimePoint origin = TimePoint::origin();
  const TimePoint later = origin + Duration::micros(5);
  EXPECT_EQ(later - origin, Duration::micros(5));
  EXPECT_EQ(later - Duration::micros(5), origin);
  EXPECT_LT(origin, later);
  EXPECT_EQ(later.since_origin(), Duration::micros(5));

  TimePoint t = origin;
  t += Duration::nanos(1500);
  EXPECT_EQ(t.to_picos(), 1'500'000);
}

TEST(Frequency, CycleDurations) {
  const Frequency xeon = Frequency::gigahertz(2.3);
  // One cycle at 2.3 GHz is ~434.78 ps.
  EXPECT_EQ(xeon.cycles(1).to_picos(), 435);
  // The paper's preemption costs: 40 cycles ≈ 17.4 ns, 1272 ≈ 553 ns.
  EXPECT_NEAR(xeon.cycles(40).to_nanos(), 17.4, 0.1);
  EXPECT_NEAR(xeon.cycles(1272).to_nanos(), 553.0, 1.0);
  EXPECT_NEAR(xeon.cycles(4193).to_nanos(), 1823.0, 2.0);
}

TEST(Frequency, CyclesInDuration) {
  const Frequency xeon = Frequency::gigahertz(2.3);
  EXPECT_EQ(xeon.cycles_in(Duration::micros(1)), 2300);
  EXPECT_EQ(Frequency::gigahertz(1.0).cycles_in(Duration::nanos(10)), 10);
}

TEST(Frequency, MegahertzConstructor) {
  EXPECT_EQ(Frequency::megahertz(2300.0), Frequency::gigahertz(2.3));
}

class DurationRoundTrip : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(DurationRoundTrip, PicosSurviveConversionChain) {
  const std::int64_t ps = GetParam();
  const Duration d = Duration::picos(ps);
  EXPECT_EQ(Duration::picos(d.to_picos()), d);
  // Converting to double micros and back is exact for magnitudes below 2^53.
  EXPECT_EQ(Duration::micros(d.to_micros()).to_picos(), ps);
}

INSTANTIATE_TEST_SUITE_P(Values, DurationRoundTrip,
                         ::testing::Values(0, 1, 435, 1'000, 2'560'000,
                                           1'000'000'000'000LL,
                                           -2'560'000));

}  // namespace
}  // namespace nicsched::sim
