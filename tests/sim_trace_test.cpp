// Tracer mechanics and end-to-end trace content from the offload system.
#include <gtest/gtest.h>

#include <memory>

#include "core/cluster.h"
#include "core/testbed.h"
#include "sim/simulator.h"
#include "sim/trace.h"
#include "workload/client.h"

namespace nicsched {
namespace {

TEST(Tracer, DisabledByDefaultAndCostsNothing) {
  sim::Simulator sim;
  EXPECT_FALSE(sim.tracer().enabled());
  // Emitting with no sink is a no-op.
  sim.trace(sim::TraceCategory::kPacket, "x", "y");
}

TEST(Tracer, CollectorReceivesRecordsWithTimestamps) {
  sim::Simulator sim;
  sim::TraceCollector collector;
  sim.tracer().set_sink(collector.sink());
  EXPECT_TRUE(sim.tracer().enabled());

  sim.after(sim::Duration::micros(3), [&]() {
    sim.trace(sim::TraceCategory::kDispatch, "dispatcher", "assign 1");
  });
  sim.run();

  ASSERT_EQ(collector.records().size(), 1u);
  const auto& record = collector.records()[0];
  EXPECT_EQ(record.when, sim::TimePoint::origin() + sim::Duration::micros(3));
  EXPECT_EQ(record.category, sim::TraceCategory::kDispatch);
  EXPECT_EQ(record.component, "dispatcher");
  EXPECT_EQ(record.message, "assign 1");
}

TEST(Tracer, SetSinkReturnsPrevious) {
  sim::Simulator sim;
  sim::TraceCollector collector;
  auto previous = sim.tracer().set_sink(collector.sink());
  EXPECT_FALSE(previous);  // none installed before
  auto installed = sim.tracer().set_sink(nullptr);
  EXPECT_TRUE(installed);
  EXPECT_FALSE(sim.tracer().enabled());
}

TEST(Tracer, CategoryNames) {
  EXPECT_STREQ(to_string(sim::TraceCategory::kPacket), "packet");
  EXPECT_STREQ(to_string(sim::TraceCategory::kPreempt), "preempt");
  EXPECT_STREQ(to_string(sim::TraceCategory::kClient), "client");
}

TEST(TracerEndToEnd, OffloadRequestLifecycleIsVisible) {
  sim::Simulator sim;
  sim::TraceCollector collector;
  sim.tracer().set_sink(collector.sink());

  const core::ModelParams params = core::ModelParams::defaults();
  const auto experiment = core::ExperimentConfig::offload().workers(1).slice(
      sim::Duration::micros(10));
  core::ClusterBuilder topology(sim);
  topology.switch_latency(params.switch_forward_latency);
  topology.add_host(core::HostSpec::from_config(experiment));
  core::Cluster cluster = topology.build();
  net::EthernetSwitch& network = cluster.client_network();
  core::Server& server = cluster.server();

  workload::ClientMachine::Config client_config;
  client_config.client_id = 1;
  client_config.mac = net::MacAddress::from_index(1);
  client_config.ip = net::Ipv4Address::from_index(1);
  client_config.server_mac = server.ingress_mac();
  client_config.server_ip = server.ingress_ip();
  client_config.server_port = server.port();
  // One 25 us request: expect received → assigned → started → preempted
  // (twice) → requeued → restarted → completed.
  workload::ClientMachine client(
      sim, network, client_config,
      std::make_shared<workload::FixedDistribution>(sim::Duration::micros(25)),
      std::make_unique<workload::UniformArrivals>(1.0), sim::Rng(1));
  client.start(sim::TimePoint::origin() + sim::Duration::seconds(1));
  sim.run_until(sim::TimePoint::origin() + sim::Duration::seconds(1) +
                sim::Duration::millis(1));

  ASSERT_EQ(client.received(), 1u);
  int received = 0, assigned = 0, started = 0, preempted = 0, requeued = 0,
      completed = 0;
  for (const auto& record : collector.records()) {
    switch (record.category) {
      case sim::TraceCategory::kClient: ++received; break;
      case sim::TraceCategory::kDispatch: ++assigned; break;
      case sim::TraceCategory::kQueue: ++requeued; break;
      case sim::TraceCategory::kPreempt: ++preempted; break;
      case sim::TraceCategory::kWorker:
        if (record.message.rfind("start", 0) == 0) ++started;
        if (record.message.rfind("complete", 0) == 0) ++completed;
        break;
      default: break;
    }
  }
  EXPECT_EQ(received, 1);
  EXPECT_EQ(completed, 1);
  // 25 us of work in 10 us slices: two preemptions, each causing a requeue
  // and a re-assignment.
  EXPECT_EQ(preempted, 2);
  EXPECT_EQ(requeued, 2);
  EXPECT_EQ(assigned, 3);
  EXPECT_EQ(started, 3);
}

}  // namespace
}  // namespace nicsched
