#include "stats/response_log.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "core/testbed.h"

namespace nicsched::stats {
namespace {

workload::ResponseRecord make_record(double sent_us, double latency_us,
                                     std::uint16_t kind) {
  workload::ResponseRecord record;
  record.sent_at = sim::TimePoint::origin() + sim::Duration::micros(sent_us);
  record.received_at = record.sent_at + sim::Duration::micros(latency_us);
  record.kind = kind;
  record.work = sim::Duration::micros(1);
  return record;
}

TEST(ResponseLog, StoresAndExportsCsv) {
  ResponseLog log;
  log.record(make_record(10, 5.5, 0));
  log.record(make_record(20, 100.25, 1));
  EXPECT_EQ(log.seen(), 2u);
  EXPECT_FALSE(log.truncated());

  std::ostringstream out;
  log.write_csv(out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("sent_us,latency_us,kind,preempts,work_us"),
            std::string::npos);
  EXPECT_NE(csv.find("10.000,5.500,0,0,1.000"), std::string::npos);
  EXPECT_NE(csv.find("20.000,100.250,1,0,1.000"), std::string::npos);
}

TEST(ResponseLog, CapacityBoundsMemory) {
  ResponseLog log(/*capacity=*/3);
  for (int i = 0; i < 10; ++i) log.record(make_record(i, 1, 0));
  EXPECT_EQ(log.records().size(), 3u);
  EXPECT_EQ(log.seen(), 10u);
  EXPECT_TRUE(log.truncated());
}

TEST(ResponseLog, TestbedFillsItWithInWindowRecordsOnly) {
  ResponseLog log;
  core::ExperimentConfig config;
  config.system = core::SystemKind::kRss;
  config.worker_count = 2;
  config.service = std::make_shared<workload::FixedDistribution>(
      sim::Duration::micros(2));
  config.offered_rps = 100e3;
  config.warmup = sim::Duration::millis(2);
  config.measure = sim::Duration::millis(10);
  config.response_log = &log;
  const auto result = core::run_experiment(config);

  EXPECT_EQ(log.seen(), result.summary.completed);
  for (const auto& record : log.records()) {
    EXPECT_GE(record.sent_at,
              sim::TimePoint::origin() + sim::Duration::millis(2));
  }
}

}  // namespace
}  // namespace nicsched::stats
