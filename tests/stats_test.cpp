// Histogram accuracy, recorder windowing, and table rendering.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "sim/random.h"
#include "stats/histogram.h"
#include "stats/recorder.h"
#include "stats/table.h"

namespace nicsched::stats {
namespace {

TEST(Histogram, EmptyHistogramIsZero) {
  Histogram histogram;
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.quantile(0.99), sim::Duration::zero());
  EXPECT_EQ(histogram.mean(), sim::Duration::zero());
  EXPECT_EQ(histogram.min(), sim::Duration::zero());
}

TEST(Histogram, SingleValue) {
  Histogram histogram;
  histogram.record(sim::Duration::micros(42));
  EXPECT_EQ(histogram.count(), 1u);
  EXPECT_NEAR(histogram.quantile(0.5).to_micros(), 42.0, 42.0 * 0.01);
  EXPECT_EQ(histogram.min(), sim::Duration::micros(42));
  EXPECT_EQ(histogram.max(), sim::Duration::micros(42));
  EXPECT_NEAR(histogram.mean().to_micros(), 42.0, 1e-9);
}

TEST(Histogram, SmallValuesAreExact) {
  // Values below the sub-bucket count (127 ns) land in exact buckets.
  Histogram histogram;
  for (int ns = 0; ns <= 100; ++ns) {
    histogram.record(sim::Duration::nanos(ns));
  }
  EXPECT_EQ(histogram.quantile(0.5).to_nanos(), 50.0);
  EXPECT_EQ(histogram.quantile(1.0).to_nanos(), 100.0);
}

TEST(Histogram, NegativeValuesClampToZero) {
  Histogram histogram;
  histogram.record(sim::Duration::nanos(-500));
  EXPECT_EQ(histogram.count(), 1u);
  EXPECT_EQ(histogram.quantile(1.0), sim::Duration::zero());
}

class HistogramAccuracy : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HistogramAccuracy, QuantilesWithinRelativeErrorBound) {
  sim::Rng rng(GetParam());
  Histogram histogram;
  std::vector<double> exact;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    // Latency-like heavy-tailed values from 100 ns to ~100 ms.
    const double us = rng.exponential(50.0) + rng.uniform(0.1, 10.0) +
                      (rng.bernoulli(0.001) ? 50'000.0 : 0.0);
    exact.push_back(us);
    histogram.record(sim::Duration::micros(us));
  }
  std::sort(exact.begin(), exact.end());
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    const double reference =
        exact[static_cast<std::size_t>(q * (n - 1))];
    const double measured = histogram.quantile(q).to_micros();
    // Log-linear buckets with 128 sub-buckets: <1 % relative error, plus a
    // tiny slack for the rank-vs-index difference.
    EXPECT_NEAR(measured, reference, reference * 0.02 + 0.2)
        << "quantile " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramAccuracy,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Histogram, MergeCombinesCounts) {
  Histogram a, b;
  for (int i = 0; i < 100; ++i) a.record(sim::Duration::micros(10));
  for (int i = 0; i < 100; ++i) b.record(sim::Duration::micros(1000));
  a.merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_NEAR(a.quantile(0.25).to_micros(), 10.0, 0.2);
  EXPECT_NEAR(a.quantile(0.75).to_micros(), 1000.0, 10.0);
  EXPECT_EQ(a.max(), sim::Duration::micros(1000));
  EXPECT_EQ(a.min(), sim::Duration::micros(10));
}

TEST(Histogram, ClearResets) {
  Histogram histogram;
  histogram.record(sim::Duration::micros(1));
  histogram.clear();
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.quantile(0.5), sim::Duration::zero());
}

workload::ResponseRecord record_at(double sent_us, double latency_us,
                                   std::uint16_t kind = 0,
                                   std::uint16_t preempts = 0) {
  workload::ResponseRecord record;
  record.sent_at = sim::TimePoint::origin() + sim::Duration::micros(sent_us);
  record.received_at = record.sent_at + sim::Duration::micros(latency_us);
  record.kind = kind;
  record.preempt_count = preempts;
  return record;
}

TEST(LatencyRecorder, WindowFiltersOnSendTime) {
  LatencyRecorder recorder;
  recorder.set_window(sim::TimePoint::origin() + sim::Duration::micros(100),
                      sim::TimePoint::origin() + sim::Duration::micros(200));
  recorder.record(record_at(50, 10));    // before window
  recorder.record(record_at(150, 10));   // inside
  recorder.record(record_at(199, 10));   // inside (received after end is fine)
  recorder.record(record_at(201, 10));   // after window
  EXPECT_EQ(recorder.completed_in_window(), 2u);
  EXPECT_EQ(recorder.overall().count(), 2u);
}

TEST(LatencyRecorder, PerKindHistograms) {
  LatencyRecorder recorder;
  recorder.set_window(sim::TimePoint::origin(), sim::TimePoint::max());
  recorder.record(record_at(1, 5, 0));
  recorder.record(record_at(2, 100, 1));
  recorder.record(record_at(3, 5, 0));
  EXPECT_EQ(recorder.by_kind(0).count(), 2u);
  EXPECT_EQ(recorder.by_kind(1).count(), 1u);
  EXPECT_EQ(recorder.by_kind(9).count(), 0u);
}

TEST(LatencyRecorder, SummaryMath) {
  LatencyRecorder recorder;
  recorder.set_window(sim::TimePoint::origin(),
                      sim::TimePoint::origin() + sim::Duration::seconds(1));
  for (int i = 0; i < 1000; ++i) {
    recorder.note_issued(sim::TimePoint::origin() +
                         sim::Duration::micros(i));
    recorder.record(record_at(i, 10, 0, 2));
  }
  const RunSummary summary = recorder.summarize(1000.0);
  EXPECT_EQ(summary.issued, 1000u);
  EXPECT_EQ(summary.completed, 1000u);
  EXPECT_DOUBLE_EQ(summary.achieved_rps, 1000.0);
  EXPECT_NEAR(summary.p50_us, 10.0, 0.2);
  EXPECT_NEAR(summary.p99_us, 10.0, 0.2);
  EXPECT_EQ(summary.preemptions, 2000u);
}

TEST(Table, AlignedRendering) {
  Table table({"a", "long_header"});
  table.add_row({"1", "2"});
  table.add_row({"100", "20000"});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("long_header"), std::string::npos);
  EXPECT_NE(text.find("20000"), std::string::npos);
  EXPECT_NE(text.find("---"), std::string::npos);
}

TEST(Table, CsvRendering) {
  Table table({"x", "y"});
  table.add_row({"1", "2"});
  std::ostringstream out;
  table.print_csv(out);
  EXPECT_EQ(out.str(), "x,y\n1,2\n");
}

TEST(Table, WrongCellCountThrows) {
  Table table({"x", "y"});
  EXPECT_THROW(table.add_row({"1"}), std::invalid_argument);
}

TEST(Fmt, Digits) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(100.0, 0), "100");
}

TEST(SweepTable, OneRowPerPoint) {
  RunSummary a;
  a.offered_rps = 100e3;
  a.achieved_rps = 99e3;
  RunSummary b;
  b.offered_rps = 200e3;
  const Table table = make_sweep_table({a, b});
  EXPECT_EQ(table.row_count(), 2u);
}

}  // namespace
}  // namespace nicsched::stats
