// Per-tenant accounting (DESIGN §13): under a real multi-tenant mix — with
// overload control on, so rejects and sheds occur — every tenant's own
// client ledger satisfies the conservation identity at quiescence,
//
//   sent == completed + rejected + expired + abandoned + outstanding,
//
// and the per-tenant rows sum exactly to the global ClientTotals. Runs 3
// seeds across the four dispatcherful/RTC server families so no family's
// wiring can silently drop or double-count a tenant's traffic.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/testbed.h"
#include "overload/overload.h"
#include "tenant/tenant.h"

namespace nicsched {
namespace {

overload::OverloadParams overload_on() {
  overload::OverloadParams params;
  params.enabled = true;
  params.admission_enabled = true;
  params.shedding_enabled = true;
  params.deadline = sim::Duration::micros(200);
  params.retry_budget = 0;
  return params;
}

core::ExperimentConfig mixed_config(core::SystemKind kind,
                                    std::uint64_t seed) {
  auto config = core::ExperimentConfig::of(kind)
                    .workers(2)
                    .outstanding(2)
                    .load(400e3)
                    .clients(2, 16)
                    .measure_for(sim::Duration::millis(1))
                    .with_seed(seed)
                    .with_overload(overload_on())
                    .with_tenants({
                        tenant::make_tenant(1)
                            .named("gold")
                            .weighted(4.0)
                            .slo_class(tenant::SloClass::kLatencyCritical)
                            .fixed(sim::Duration::micros(4)),
                        tenant::make_tenant(2)
                            .named("batch")
                            .slo_class(tenant::SloClass::kBestEffort)
                            .bimodal(sim::Duration::micros(5),
                                     sim::Duration::micros(100), 0.005),
                    });
  config.warmup = sim::Duration::millis(1);
  config.drain = sim::Duration::millis(2);  // long drain -> quiescence
  return config;
}

void expect_conserved(const core::ExperimentResult::ClientTotals& t,
                      const std::string& label) {
  EXPECT_EQ(t.sent, t.completed + t.rejected + t.expired + t.abandoned +
                        t.outstanding)
      << label;
}

TEST(TenantConservation, PerTenantLedgersConserveAndSumToGlobal) {
  for (const auto kind :
       {core::SystemKind::kShinjuku, core::SystemKind::kShinjukuOffload,
        core::SystemKind::kRss, core::SystemKind::kIdealNic,
        core::SystemKind::kRain}) {
    for (const std::uint64_t seed : {1u, 2u, 3u}) {
      const std::string label = std::string("kind=") + core::to_string(kind) +
                                " seed=" + std::to_string(seed);
      const auto result = core::run_experiment(mixed_config(kind, seed));

      ASSERT_EQ(result.tenants.size(), 2u) << label;
      EXPECT_EQ(result.tenants[0].spec.id, 1u) << label;
      EXPECT_EQ(result.tenants[1].spec.id, 2u) << label;

      core::ExperimentResult::ClientTotals sum;
      for (const auto& row : result.tenants) {
        expect_conserved(row.clients, label + " tenant " + row.spec.label());
        EXPECT_GT(row.clients.sent, 0u)
            << label << " tenant " << row.spec.label();
        sum.sent += row.clients.sent;
        sum.completed += row.clients.completed;
        sum.goodput += row.clients.goodput;
        sum.rejected += row.clients.rejected;
        sum.expired += row.clients.expired;
        sum.abandoned += row.clients.abandoned;
        sum.outstanding += row.clients.outstanding;
        sum.retries += row.clients.retries;
        sum.duplicates += row.clients.duplicates;
      }
      const auto& total = result.clients;
      EXPECT_EQ(sum.sent, total.sent) << label;
      EXPECT_EQ(sum.completed, total.completed) << label;
      EXPECT_EQ(sum.goodput, total.goodput) << label;
      EXPECT_EQ(sum.rejected, total.rejected) << label;
      EXPECT_EQ(sum.expired, total.expired) << label;
      EXPECT_EQ(sum.abandoned, total.abandoned) << label;
      EXPECT_EQ(sum.outstanding, total.outstanding) << label;
      EXPECT_EQ(sum.retries, total.retries) << label;
      EXPECT_EQ(sum.duplicates, total.duplicates) << label;
      expect_conserved(total, label + " global");

      // The weighted split of the offered load covers the whole rate: the
      // two resolved per-tenant rates sum to the experiment's offered_rps.
      EXPECT_DOUBLE_EQ(
          result.tenants[0].offered_rps + result.tenants[1].offered_rps,
          400e3)
          << label;

      // Server-side per-tenant rows exist for every family and carry this
      // mix's ids in slot order.
      ASSERT_EQ(result.server.tenants.size(), 2u) << label;
      EXPECT_EQ(result.server.tenants[0].id, 1u) << label;
      EXPECT_EQ(result.server.tenants[1].id, 2u) << label;
      EXPECT_GT(result.server.tenants[0].overload.admitted +
                    result.server.tenants[1].overload.admitted,
                0u)
          << label;
    }
  }
}

}  // namespace
}  // namespace nicsched
