// Multi-tenant dispatch/admission (DESIGN §13): unit tests drive the
// TenantDispatchQueue and TenantAdmission directly — strict SLO-class
// priority, DRR work-share ratios inside a class, the FIFO interference
// baseline, shed-at-pop accounting — plus the TenantSpec plumbing
// (parse_tenant_list, from_specs shim gating, NICSCHED_TENANTS).
#include <algorithm>
#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "overload/overload.h"
#include "proto/messages.h"
#include "tenant/tenant.h"

namespace nicsched {
namespace {

using tenant::SloClass;
using tenant::TenantDispatchQueue;
using tenant::TenantParams;
using tenant::TenantSpec;

proto::RequestDescriptor request(std::uint64_t id, std::uint16_t tenant_id,
                                 sim::Duration work) {
  proto::RequestDescriptor descriptor;
  descriptor.request_id = id;
  descriptor.tenant = tenant_id;
  descriptor.remaining_ps = static_cast<std::uint64_t>(work.to_picos());
  descriptor.total_ps = descriptor.remaining_ps;
  return descriptor;
}

TenantParams three_class_params() {
  return TenantParams::from_specs({
      tenant::make_tenant(1).slo_class(SloClass::kBestEffort),
      tenant::make_tenant(2).slo_class(SloClass::kLatencyCritical),
      tenant::make_tenant(3).slo_class(SloClass::kStandard),
  });
}

// Pops drain by SLO class regardless of arrival order: every queued
// latency-critical request is served before any standard one, and standard
// before best-effort.
TEST(TenantDispatchQueue, StrictPriorityAcrossSloClasses) {
  TenantDispatchQueue queue(three_class_params());
  const sim::TimePoint now{};
  const sim::Duration work = sim::Duration::micros(1);
  queue.push_new(request(10, 1, work), now);  // best-effort
  queue.push_new(request(20, 2, work), now);  // latency-critical
  queue.push_new(request(30, 3, work), now);  // standard
  queue.push_new(request(21, 2, work), now);  // latency-critical

  std::vector<std::uint64_t> order;
  while (auto popped = queue.pop(now)) {
    order.push_back(popped->descriptor.request_id);
  }
  EXPECT_EQ(order, (std::vector<std::uint64_t>{20, 21, 30, 10}));
  EXPECT_TRUE(queue.empty());
}

// Two backlogged same-class tenants at weight 3:1 with equal request cost
// split dispatches 3:1 per DRR round; the weight buys worker time, not a
// turn count.
TEST(TenantDispatchQueue, DrrSharesWorkByWeightWithinClass) {
  TenantParams params = TenantParams::from_specs({
      tenant::make_tenant(1).weighted(3.0),
      tenant::make_tenant(2).weighted(1.0),
  });
  params.quantum = sim::Duration::micros(5);
  TenantDispatchQueue queue(params);
  const sim::TimePoint now{};
  const sim::Duration work = sim::Duration::micros(5);  // == quantum
  for (std::uint64_t i = 0; i < 12; ++i) {
    queue.push_new(request(100 + i, 1, work), now);
    queue.push_new(request(200 + i, 2, work), now);
  }

  // Two full rounds: each grants tenant 1 three requests' credit and tenant
  // 2 one — so the first 8 pops split 6:2 exactly.
  std::uint64_t from_t1 = 0;
  std::uint64_t from_t2 = 0;
  for (int i = 0; i < 8; ++i) {
    const auto popped = queue.pop(now);
    ASSERT_TRUE(popped.has_value());
    (popped->tenant_index == 0 ? from_t1 : from_t2) += 1;
  }
  EXPECT_EQ(from_t1, 6u);
  EXPECT_EQ(from_t2, 2u);

  // The rotation also interleaves: tenant 2 is never starved for a whole
  // extra round even though tenant 1 stays backlogged.
  const auto ninth = queue.pop(now);
  ASSERT_TRUE(ninth.has_value());
  const auto& stats = queue.stats();
  EXPECT_EQ(stats[0].dispatched + stats[1].dispatched, 9u);
  EXPECT_GE(stats[1].dispatched, 2u);
}

// A request costing more than one grant is still served once enough turns
// bank credit — outsized work delays a tenant, it does not wedge the queue.
TEST(TenantDispatchQueue, OversizedRequestAccumulatesCreditAcrossRounds) {
  TenantParams params = TenantParams::from_specs({
      tenant::make_tenant(1),
      tenant::make_tenant(2),
  });
  params.quantum = sim::Duration::micros(5);
  TenantDispatchQueue queue(params);
  const sim::TimePoint now{};
  queue.push_new(request(1, 1, sim::Duration::micros(12)), now);
  queue.push_new(request(2, 2, sim::Duration::micros(1)), now);

  const auto first = queue.pop(now);
  const auto second = queue.pop(now);
  ASSERT_TRUE(first && second);
  // Tenant 1's 12us head cannot be covered by one 5us grant; tenant 2's 1us
  // request overtakes it, then the banked credit serves the big one.
  EXPECT_EQ(first->descriptor.request_id, 2u);
  EXPECT_EQ(second->descriptor.request_id, 1u);
  EXPECT_TRUE(queue.empty());
}

// fair_dispatch = false is the interference baseline: one global FIFO in
// arrival order, weights and classes ignored, per-tenant counters intact.
TEST(TenantDispatchQueue, FifoModeIgnoresWeightsAndClasses) {
  TenantParams params = TenantParams::from_specs({
      tenant::make_tenant(1).weighted(100.0).slo_class(
          SloClass::kLatencyCritical),
      tenant::make_tenant(2).weighted(0.01).slo_class(SloClass::kBestEffort),
  });
  params.fair_dispatch = false;
  TenantDispatchQueue queue(params);
  const sim::TimePoint now{};
  const sim::Duration work = sim::Duration::micros(1);
  queue.push_new(request(1, 2, work), now);
  queue.push_new(request(2, 1, work), now);
  queue.push_new(request(3, 2, work), now);

  std::vector<std::uint64_t> order;
  while (auto popped = queue.pop(now)) {
    order.push_back(popped->descriptor.request_id);
  }
  EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(queue.stats()[0].dispatched, 1u);
  EXPECT_EQ(queue.stats()[1].dispatched, 2u);
}

// Shed-at-pop: expired entries are dropped and charged to their tenant, in
// both dispatch modes; entries without deadlines are untouched.
TEST(TenantDispatchQueue, ShedsExpiredEntriesPerTenant) {
  for (const bool fair : {true, false}) {
    SCOPED_TRACE(fair ? "drr" : "fifo");
    TenantParams params = TenantParams::from_specs({
        tenant::make_tenant(1),
        tenant::make_tenant(2),
    });
    params.fair_dispatch = fair;
    TenantDispatchQueue queue(params);
    queue.set_shed_expired(true);

    const sim::TimePoint start{};
    const sim::Duration work = sim::Duration::micros(1);
    auto expired = request(1, 1, work);
    expired.deadline_ps = sim::Duration::micros(10).to_picos();
    auto alive = request(2, 1, work);
    alive.deadline_ps = sim::Duration::millis(10).to_picos();
    queue.push_new(expired, start);
    queue.push_new(alive, start);
    queue.push_new(request(3, 2, work), start);  // no deadline

    const sim::TimePoint later =
        sim::TimePoint{} + sim::Duration::micros(20);
    std::vector<std::uint64_t> order;
    while (auto popped = queue.pop(later)) {
      order.push_back(popped->descriptor.request_id);
    }
    EXPECT_EQ(order.size(), 2u);
    EXPECT_TRUE(std::find(order.begin(), order.end(), 1u) == order.end());
    EXPECT_EQ(queue.shed_total(), 1u);
    EXPECT_EQ(queue.stats()[0].overload.shed_expired, 1u);
    EXPECT_EQ(queue.stats()[1].overload.shed_expired, 0u);
  }
}

// Unknown wire ids ride slot 0 (nothing is dropped for lack of a spec), and
// the queue reports the popped entry's waiting time for the admission EWMA.
TEST(TenantDispatchQueue, UnknownIdRidesSlotZeroAndReportsDelay) {
  TenantDispatchQueue queue(TenantParams::from_specs({
      tenant::make_tenant(1),
      tenant::make_tenant(2),
  }));
  const sim::TimePoint start{};
  queue.push_new(request(9, 999, sim::Duration::micros(1)), start);
  EXPECT_EQ(queue.depth_of(0), 1u);

  const sim::TimePoint later = sim::TimePoint{} + sim::Duration::micros(7);
  const auto popped = queue.pop(later);
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(popped->tenant_index, 0u);
  EXPECT_EQ(popped->queue_delay, sim::Duration::micros(7));
}

// Per-tenant admission: a saturating tenant's delay samples close its own
// gate while its neighbour's gate stays open — the isolation property the
// shared PR 5 gate cannot give.
TEST(TenantAdmission, GatesAreIndependentPerTenant) {
  const TenantParams params = TenantParams::from_specs({
      tenant::make_tenant(1),
      tenant::make_tenant(2),
  });
  overload::OverloadParams knobs;
  knobs.enabled = true;
  knobs.admission_enabled = true;
  knobs.admission_alpha = 1.0;  // gate follows the latest sample exactly
  knobs.admission_delay_limit = sim::Duration::micros(50);
  tenant::TenantAdmission admission(params, knobs);

  admission.observe(0, sim::Duration::micros(500));  // tenant 1 saturates
  admission.observe(1, sim::Duration::micros(1));

  // Non-zero depth: an empty lane is direct evidence of zero delay and
  // always admits, so judge both gates against a backlogged lane.
  EXPECT_FALSE(admission.admit(0, 5));
  EXPECT_TRUE(admission.admit(1, 5));
  EXPECT_EQ(admission.stats()[0].rejected, 1u);
  EXPECT_EQ(admission.stats()[1].admitted, 1u);
}

// ---- spec plumbing -------------------------------------------------------

// The enabled flag keys on a real (non-zero) tenant id: the id-0 one-tenant
// shim must leave the server's classic path untouched.
TEST(TenantParams, FromSpecsEnablesOnlyForRealTenants) {
  EXPECT_FALSE(TenantParams::from_specs({}).enabled);
  EXPECT_FALSE(TenantParams::from_specs({tenant::make_tenant(0)}).enabled);
  const TenantParams real = TenantParams::from_specs(
      {tenant::make_tenant(0), tenant::make_tenant(1)});
  EXPECT_TRUE(real.enabled);
  ASSERT_EQ(real.tenants.size(), 2u);
  EXPECT_EQ(real.index_of(1), 1u);
  EXPECT_EQ(real.index_of(777), 0u);  // unknown -> slot 0
}

TEST(TenantSpec, ParseTenantListAcceptsTheDocumentedGrammar) {
  const auto specs = tenant::parse_tenant_list("1:4:lc,2:1:be:250000");
  ASSERT_TRUE(specs.has_value());
  ASSERT_EQ(specs->size(), 2u);
  EXPECT_EQ((*specs)[0].id, 1u);
  EXPECT_EQ((*specs)[0].weight, 4.0);
  EXPECT_EQ((*specs)[0].slo, SloClass::kLatencyCritical);
  EXPECT_EQ((*specs)[0].rate_rps, 0.0);  // inherit
  EXPECT_EQ((*specs)[1].id, 2u);
  EXPECT_EQ((*specs)[1].slo, SloClass::kBestEffort);
  EXPECT_EQ((*specs)[1].rate_rps, 250000.0);

  EXPECT_FALSE(tenant::parse_tenant_list("").has_value());
  EXPECT_FALSE(tenant::parse_tenant_list("1:4").has_value());
  EXPECT_FALSE(tenant::parse_tenant_list("1:4:warp").has_value());
  EXPECT_FALSE(tenant::parse_tenant_list("1:-2:lc").has_value());
  EXPECT_FALSE(tenant::parse_tenant_list("99999:1:std").has_value());
  EXPECT_FALSE(tenant::parse_tenant_list("1:1:lc,").has_value());
}

TEST(TenantSpec, EnvOverrideParsesAndIgnoresMalformedInput) {
  ::setenv("NICSCHED_TENANTS", "1:2:std,2:1:be", 1);
  const auto specs = tenant::tenants_from_env();
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].weight, 2.0);

  ::setenv("NICSCHED_TENANTS", "not-a-spec", 1);
  EXPECT_TRUE(tenant::tenants_from_env().empty());
  ::unsetenv("NICSCHED_TENANTS");
  EXPECT_TRUE(tenant::tenants_from_env().empty());
}

TEST(TenantSpec, LabelsAndSloRoundTrip) {
  EXPECT_EQ(tenant::make_tenant(4).label(), "t4");
  EXPECT_EQ(tenant::make_tenant(4).named("gold").label(), "gold");
  for (const SloClass slo : {SloClass::kLatencyCritical, SloClass::kStandard,
                             SloClass::kBestEffort}) {
    const auto parsed = tenant::slo_class_from_string(tenant::to_string(slo));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, slo);
  }
}

}  // namespace
}  // namespace nicsched
