// The one-tenant shim contract (DESIGN §13): describing the classic
// single-stream workload through the TenantSpec API — either an id-0 spec
// inheriting the experiment's service knob, or one carrying an identical
// distribution of its own — must reproduce the legacy configuration bit for
// bit: same responses, same timestamps, same counters, for every server
// family and seed. This is what lets with_tenants() supersede the deprecated
// with_service() without perturbing a single golden.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/testbed.h"
#include "stats/response_log.h"
#include "tenant/tenant.h"

namespace nicsched {
namespace {

class Digest {
 public:
  void add(std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (value >> (8 * i)) & 0xff;
      hash_ *= 1099511628211ULL;  // FNV-1a 64
    }
  }
  void add_signed(std::int64_t value) {
    add(static_cast<std::uint64_t>(value));
  }
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 14695981039346656037ULL;
};

enum class Shim {
  kLegacy,           // classic single-stream knobs, no tenant mix
  kInheritService,   // with_tenants({id-0 spec}), service inherited
  kExplicitService,  // with_tenants({id-0 spec carrying the same bimodal})
};

std::uint64_t run_digest(core::SystemKind kind, std::uint64_t seed,
                         Shim shim) {
  stats::ResponseLog log;
  auto config = core::ExperimentConfig::of(kind)
                    .workers(2)
                    .outstanding(2)
                    .bimodal()
                    .load(150e3)
                    .clients(2, 16)
                    .measure_for(sim::Duration::millis(1))
                    .with_seed(seed);
  config.warmup = sim::Duration::millis(1);
  config.drain = sim::Duration::millis(1);
  config.response_log = &log;
  switch (shim) {
    case Shim::kLegacy:
      break;
    case Shim::kInheritService:
      config.with_tenants({tenant::make_tenant(0)});
      break;
    case Shim::kExplicitService:
      config.with_tenants({tenant::make_tenant(0).bimodal(
          sim::Duration::micros(5), sim::Duration::micros(100), 0.005)});
      break;
  }

  const core::ExperimentResult result = core::run_experiment(config);
  // The shim is untenanted end to end: no per-tenant result rows, no
  // per-tenant server stats, version-1 frames only.
  EXPECT_TRUE(result.tenants.empty());
  EXPECT_TRUE(result.server.tenants.empty());

  Digest digest;
  digest.add(log.seen());
  for (const auto& r : log.records()) {
    digest.add(r.request_id);
    digest.add(r.kind);
    digest.add(r.preempt_count);
    digest.add_signed(r.sent_at.to_picos());
    digest.add_signed(r.received_at.to_picos());
    digest.add_signed(r.work.to_picos());
  }
  const core::ServerStats& s = result.server;
  digest.add(s.requests_received);
  digest.add(s.responses_sent);
  digest.add(s.preemptions);
  digest.add(s.steals);
  digest.add(s.drops);
  digest.add(s.queue_max_depth);
  return digest.value();
}

TEST(TenantShim, OneTenantMixIsBitIdenticalToLegacyKnobs) {
  for (const auto kind :
       {core::SystemKind::kShinjuku, core::SystemKind::kShinjukuOffload,
        core::SystemKind::kRss, core::SystemKind::kIdealNic}) {
    for (const std::uint64_t seed : {1u, 2u, 3u}) {
      const std::uint64_t legacy = run_digest(kind, seed, Shim::kLegacy);
      const std::uint64_t inherit =
          run_digest(kind, seed, Shim::kInheritService);
      const std::uint64_t explicit_service =
          run_digest(kind, seed, Shim::kExplicitService);
      EXPECT_EQ(legacy, inherit)
          << "kind=" << core::to_string(kind) << " seed=" << seed;
      EXPECT_EQ(legacy, explicit_service)
          << "kind=" << core::to_string(kind) << " seed=" << seed;
    }
  }
}

}  // namespace
}  // namespace nicsched
