#include "workload/client.h"

#include <gtest/gtest.h>

#include <set>

#include "proto/messages.h"

namespace nicsched::workload {
namespace {

/// A zero-latency echo server: parses each request and responds immediately
/// from the stack, so client mechanics can be tested in isolation.
class EchoServer : public net::PacketSink {
 public:
  EchoServer(sim::Simulator& sim, net::EthernetSwitch& network)
      : sim_(sim), nic_(sim, zero_latency_config()) {
    iface_ = &nic_.add_interface("echo", net::MacAddress::from_index(500),
                                 net::Ipv4Address::from_index(500));
    nic_.attach_to_switch(network, sim::Duration::nanos(10), 10.0);
    iface_->ring(0).set_on_packet([this]() { drain(); });
  }

  net::MacAddress mac() const { return iface_->mac(); }
  net::Ipv4Address ip() const { return iface_->ip(); }
  std::uint64_t requests() const { return requests_; }
  const std::set<std::uint16_t>& dst_ports() const { return dst_ports_; }
  const std::set<std::uint16_t>& src_ports() const { return src_ports_; }

  void deliver(net::Packet) override {}

 private:
  static net::Nic::Config zero_latency_config() {
    net::Nic::Config config;
    config.rx_latency = sim::Duration::zero();
    config.tx_latency = sim::Duration::zero();
    return config;
  }

  void drain() {
    while (auto packet = iface_->ring(0).pop()) {
      const auto datagram = net::parse_udp_datagram(*packet);
      if (!datagram) continue;
      const auto request = proto::RequestMessage::parse(datagram->payload);
      if (!request) continue;
      ++requests_;
      dst_ports_.insert(datagram->udp.dst_port);
      src_ports_.insert(datagram->udp.src_port);

      proto::ResponseMessage response;
      response.request_id = request->request_id;
      response.client_id = request->client_id;
      response.kind = request->kind;
      iface_->transmit(net::make_udp_datagram(
          datagram->address().reversed(), response.serialize()));
    }
  }

  sim::Simulator& sim_;
  net::Nic nic_;
  net::NicInterface* iface_ = nullptr;
  std::uint64_t requests_ = 0;
  std::set<std::uint16_t> dst_ports_;
  std::set<std::uint16_t> src_ports_;
};

struct ClientFixture : ::testing::Test {
  ClientFixture()
      : network(sim, sim::Duration::nanos(50)), server(sim, network) {}

  ClientMachine::Config client_config() {
    ClientMachine::Config config;
    config.client_id = 1;
    config.mac = net::MacAddress::from_index(1);
    config.ip = net::Ipv4Address::from_index(1);
    config.server_mac = server.mac();
    config.server_ip = server.ip();
    config.server_port = 8080;
    return config;
  }

  sim::Simulator sim;
  net::EthernetSwitch network;
  EchoServer server;
};

TEST_F(ClientFixture, OpenLoopRateIsRespected) {
  ClientMachine client(sim, network, client_config(),
                       std::make_shared<FixedDistribution>(
                           sim::Duration::micros(1)),
                       std::make_unique<PoissonArrivals>(100'000.0),
                       sim::Rng(42));
  client.start(sim::TimePoint::origin() + sim::Duration::millis(100));
  sim.run_until(sim::TimePoint::origin() + sim::Duration::millis(101));
  // 100k RPS for 100 ms → ~10'000 requests, Poisson noise ~1 %.
  EXPECT_NEAR(static_cast<double>(client.sent()), 10'000.0, 300.0);
  EXPECT_EQ(client.received(), client.sent());
  EXPECT_EQ(client.outstanding(), 0u);
}

TEST_F(ClientFixture, LatencyRecordsIncludeWireAndKind) {
  std::vector<ResponseRecord> records;
  ClientMachine client(sim, network, client_config(),
                       std::make_shared<BimodalDistribution>(
                           sim::Duration::micros(5),
                           sim::Duration::micros(100), 0.5),
                       std::make_unique<UniformArrivals>(10'000.0),
                       sim::Rng(42));
  client.set_on_response(
      [&](const ResponseRecord& record) { records.push_back(record); });
  client.start(sim::TimePoint::origin() + sim::Duration::millis(5));
  sim.run_until(sim::TimePoint::origin() + sim::Duration::millis(6));

  ASSERT_GT(records.size(), 10u);
  std::set<std::uint16_t> kinds;
  for (const auto& record : records) {
    // Echo server responds instantly: latency is pure network path, well
    // under 5 us and strictly positive.
    EXPECT_GT(record.latency(), sim::Duration::zero());
    EXPECT_LT(record.latency(), sim::Duration::micros(5));
    EXPECT_GT(record.received_at, record.sent_at);
    kinds.insert(record.kind);
  }
  EXPECT_EQ(kinds.size(), 2u);  // both bimodal modes observed at 50/50
}

TEST_F(ClientFixture, FlowPortsStayInConfiguredRange) {
  auto config = client_config();
  config.port_base = 30000;
  config.flow_count = 8;
  ClientMachine client(sim, network, config,
                       std::make_shared<FixedDistribution>(
                           sim::Duration::micros(1)),
                       std::make_unique<UniformArrivals>(50'000.0),
                       sim::Rng(1));
  client.start(sim::TimePoint::origin() + sim::Duration::millis(10));
  sim.run_until(sim::TimePoint::origin() + sim::Duration::millis(11));

  EXPECT_EQ(server.src_ports().size(), 8u);
  for (const std::uint16_t port : server.src_ports()) {
    EXPECT_GE(port, 30000);
    EXPECT_LT(port, 30008);
  }
  EXPECT_EQ(server.dst_ports(), std::set<std::uint16_t>{8080});
}

TEST_F(ClientFixture, PartitionedModeSpreadsDstPorts) {
  auto config = client_config();
  config.partition_count = 4;
  ClientMachine client(sim, network, config,
                       std::make_shared<FixedDistribution>(
                           sim::Duration::micros(1)),
                       std::make_unique<UniformArrivals>(50'000.0),
                       sim::Rng(1));
  client.start(sim::TimePoint::origin() + sim::Duration::millis(10));
  sim.run_until(sim::TimePoint::origin() + sim::Duration::millis(11));

  EXPECT_EQ(server.dst_ports(),
            (std::set<std::uint16_t>{8080, 8081, 8082, 8083}));
}

TEST_F(ClientFixture, StopsIssuingAtDeadline) {
  ClientMachine client(sim, network, client_config(),
                       std::make_shared<FixedDistribution>(
                           sim::Duration::micros(1)),
                       std::make_unique<UniformArrivals>(100'000.0),
                       sim::Rng(2));
  client.start(sim::TimePoint::origin() + sim::Duration::millis(1));
  sim.run_until(sim::TimePoint::origin() + sim::Duration::millis(50));
  EXPECT_NEAR(static_cast<double>(client.sent()), 100.0, 2.0);
}

TEST_F(ClientFixture, IssueCallbackFiresPerRequest) {
  ClientMachine client(sim, network, client_config(),
                       std::make_shared<FixedDistribution>(
                           sim::Duration::micros(1)),
                       std::make_unique<UniformArrivals>(100'000.0),
                       sim::Rng(3));
  std::uint64_t issued = 0;
  client.set_on_issue([&](sim::TimePoint) { ++issued; });
  client.start(sim::TimePoint::origin() + sim::Duration::millis(2));
  sim.run_until(sim::TimePoint::origin() + sim::Duration::millis(3));
  EXPECT_EQ(issued, client.sent());
}

}  // namespace
}  // namespace nicsched::workload
