#include "workload/distribution.h"

#include <gtest/gtest.h>

#include <memory>

#include "workload/arrival.h"

namespace nicsched::workload {
namespace {

double empirical_mean_us(ServiceDistribution& distribution, int n,
                         std::uint64_t seed = 1) {
  sim::Rng rng(seed);
  double sum = 0;
  for (int i = 0; i < n; ++i) {
    sum += distribution.sample(rng).work.to_micros();
  }
  return sum / n;
}

TEST(FixedDistribution, AlwaysExactValue) {
  FixedDistribution fixed(sim::Duration::micros(5));
  sim::Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const ServiceSample sample = fixed.sample(rng);
    EXPECT_EQ(sample.work, sim::Duration::micros(5));
    EXPECT_EQ(sample.kind, 0);
  }
  EXPECT_EQ(fixed.mean(), sim::Duration::micros(5));
}

TEST(BimodalDistribution, PaperWorkloadMoments) {
  // Figure 2's workload: 99.5 % x 5 us + 0.5 % x 100 us → mean 5.475 us.
  BimodalDistribution bimodal(sim::Duration::micros(5),
                              sim::Duration::micros(100), 0.005);
  EXPECT_DOUBLE_EQ(bimodal.mean().to_micros(), 5.475);

  sim::Rng rng(2);
  int longs = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    const ServiceSample sample = bimodal.sample(rng);
    if (sample.kind == BimodalDistribution::kLongKind) {
      EXPECT_EQ(sample.work, sim::Duration::micros(100));
      ++longs;
    } else {
      EXPECT_EQ(sample.work, sim::Duration::micros(5));
    }
  }
  EXPECT_NEAR(static_cast<double>(longs) / n, 0.005, 0.001);
}

TEST(BimodalDistribution, RejectsBadFraction) {
  EXPECT_THROW(BimodalDistribution(sim::Duration::micros(1),
                                   sim::Duration::micros(2), -0.1),
               std::invalid_argument);
  EXPECT_THROW(BimodalDistribution(sim::Duration::micros(1),
                                   sim::Duration::micros(2), 1.1),
               std::invalid_argument);
}

TEST(ExponentialDistribution, MeanMatches) {
  ExponentialDistribution exponential(sim::Duration::micros(10));
  EXPECT_EQ(exponential.mean(), sim::Duration::micros(10));
  EXPECT_NEAR(empirical_mean_us(exponential, 200'000), 10.0, 0.2);
}

TEST(LogNormalDistribution, MeanAndCv) {
  LogNormalDistribution lognormal(sim::Duration::micros(20), 2.0);
  EXPECT_NEAR(empirical_mean_us(lognormal, 400'000), 20.0, 1.0);

  sim::Rng rng(5);
  double sum = 0, sq = 0;
  const int n = 400'000;
  for (int i = 0; i < n; ++i) {
    const double x = lognormal.sample(rng).work.to_micros();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double cv = std::sqrt(sq / n - mean * mean) / mean;
  EXPECT_NEAR(cv, 2.0, 0.15);
  EXPECT_THROW(LogNormalDistribution(sim::Duration::micros(1), 0.0),
               std::invalid_argument);
}

TEST(BoundedParetoDistribution, SamplesStayInBounds) {
  BoundedParetoDistribution pareto(sim::Duration::micros(1),
                                   sim::Duration::micros(1000), 1.1);
  sim::Rng rng(6);
  for (int i = 0; i < 50'000; ++i) {
    const double us = pareto.sample(rng).work.to_micros();
    EXPECT_GE(us, 0.999);
    EXPECT_LE(us, 1000.001);
  }
  EXPECT_NEAR(empirical_mean_us(pareto, 400'000),
              pareto.mean().to_micros(), pareto.mean().to_micros() * 0.05);
}

TEST(BoundedParetoDistribution, RejectsBadParameters) {
  EXPECT_THROW(BoundedParetoDistribution(sim::Duration::micros(10),
                                         sim::Duration::micros(1), 1.1),
               std::invalid_argument);
  EXPECT_THROW(BoundedParetoDistribution(sim::Duration::micros(1),
                                         sim::Duration::micros(10), 0.0),
               std::invalid_argument);
}

TEST(MixtureDistribution, WeightsAndKindTagging) {
  std::vector<MixtureDistribution::Component> components;
  components.push_back({std::make_shared<FixedDistribution>(
                            sim::Duration::micros(1)),
                        3.0});
  components.push_back({std::make_shared<FixedDistribution>(
                            sim::Duration::micros(10)),
                        1.0});
  MixtureDistribution mixture(std::move(components));

  // Mean = 0.75*1 + 0.25*10 = 3.25 us.
  EXPECT_NEAR(mixture.mean().to_micros(), 3.25, 1e-9);

  sim::Rng rng(7);
  int first = 0, second = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const ServiceSample sample = mixture.sample(rng);
    if (sample.kind == 0) {
      EXPECT_EQ(sample.work, sim::Duration::micros(1));
      ++first;
    } else {
      EXPECT_EQ(sample.kind, 1);
      EXPECT_EQ(sample.work, sim::Duration::micros(10));
      ++second;
    }
  }
  EXPECT_NEAR(static_cast<double>(first) / n, 0.75, 0.01);
}

TEST(MixtureDistribution, RejectsEmptyAndBadComponents) {
  EXPECT_THROW(MixtureDistribution({}), std::invalid_argument);
  std::vector<MixtureDistribution::Component> bad;
  bad.push_back({nullptr, 1.0});
  EXPECT_THROW(MixtureDistribution(std::move(bad)), std::invalid_argument);
  std::vector<MixtureDistribution::Component> zero_weight;
  zero_weight.push_back(
      {std::make_shared<FixedDistribution>(sim::Duration::micros(1)), 0.0});
  EXPECT_THROW(MixtureDistribution(std::move(zero_weight)),
               std::invalid_argument);
}

TEST(Distributions, NamesAreDescriptive) {
  EXPECT_EQ(FixedDistribution(sim::Duration::micros(5)).name(),
            "fixed(5us)");
  BimodalDistribution bimodal(sim::Duration::micros(5),
                              sim::Duration::micros(100), 0.005);
  EXPECT_NE(bimodal.name().find("bimodal"), std::string::npos);
  EXPECT_NE(ExponentialDistribution(sim::Duration::micros(1)).name().find(
                "exp"),
            std::string::npos);
}

TEST(PoissonArrivals, MeanGapMatchesRate) {
  PoissonArrivals arrivals(100'000.0);
  sim::Rng rng(8);
  double sum = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += arrivals.next_gap(rng).to_micros();
  EXPECT_NEAR(sum / n, 10.0, 0.2);  // 100k RPS → 10 us mean gap
}

TEST(BurstyArrivals, LongRunRateMatchesFormula) {
  BurstyArrivals::Config config;
  config.normal_rps = 100'000.0;
  config.burst_rps = 500'000.0;
  config.mean_normal_spell = sim::Duration::millis(4);
  config.mean_burst_spell = sim::Duration::millis(1);
  BurstyArrivals arrivals(config);
  // (100k*4 + 500k*1) / 5 = 180k.
  EXPECT_NEAR(arrivals.mean_rate_rps(), 180'000.0, 1.0);

  sim::Rng rng(21);
  double total_s = 0.0;
  const int n = 400'000;
  for (int i = 0; i < n; ++i) total_s += arrivals.next_gap(rng).to_seconds();
  EXPECT_NEAR(n / total_s, 180'000.0, 9'000.0);
}

TEST(BurstyArrivals, GapsAreShorterDuringBursts) {
  BurstyArrivals::Config config;
  config.normal_rps = 50'000.0;
  config.burst_rps = 1'000'000.0;
  BurstyArrivals arrivals(config);
  sim::Rng rng(22);
  double normal_sum = 0, burst_sum = 0;
  int normal_n = 0, burst_n = 0;
  for (int i = 0; i < 300'000; ++i) {
    const bool was_burst = arrivals.in_burst();
    const double gap_us = arrivals.next_gap(rng).to_micros();
    if (was_burst) {
      burst_sum += gap_us;
      ++burst_n;
    } else {
      normal_sum += gap_us;
      ++normal_n;
    }
  }
  ASSERT_GT(burst_n, 1000);
  ASSERT_GT(normal_n, 1000);
  EXPECT_NEAR(normal_sum / normal_n, 20.0, 1.0);  // 50 kRPS → 20 us
  EXPECT_NEAR(burst_sum / burst_n, 1.0, 0.05);    // 1 MRPS → 1 us
}

TEST(UniformArrivals, ExactGap) {
  UniformArrivals arrivals(50'000.0);
  sim::Rng rng(9);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(arrivals.next_gap(rng), sim::Duration::micros(20));
  }
}

class DistributionMeanProperty
    : public ::testing::TestWithParam<std::shared_ptr<ServiceDistribution>> {};

TEST_P(DistributionMeanProperty, EmpiricalMeanMatchesDeclaredMean) {
  auto distribution = GetParam();
  const double declared = distribution->mean().to_micros();
  const double empirical = empirical_mean_us(*distribution, 300'000, 99);
  EXPECT_NEAR(empirical, declared, declared * 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    AllDistributions, DistributionMeanProperty,
    ::testing::Values(
        std::make_shared<FixedDistribution>(sim::Duration::micros(5)),
        std::make_shared<BimodalDistribution>(sim::Duration::micros(5),
                                              sim::Duration::micros(100),
                                              0.005),
        std::make_shared<ExponentialDistribution>(sim::Duration::micros(25)),
        std::make_shared<LogNormalDistribution>(sim::Duration::micros(10),
                                                1.5),
        std::make_shared<BoundedParetoDistribution>(
            sim::Duration::micros(1), sim::Duration::micros(500), 1.3)));

}  // namespace
}  // namespace nicsched::workload
