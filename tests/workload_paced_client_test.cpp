// The JIT-paced closed-loop client: window adaptation and conservation.
#include "workload/paced_client.h"

#include <gtest/gtest.h>

#include "core/ideal_nic_server.h"
#include "stats/recorder.h"

namespace nicsched::workload {
namespace {

struct PacedFixture : ::testing::Test {
  PacedFixture()
      : params(core::ModelParams::defaults()),
        network(sim, params.switch_forward_latency) {}

  core::IdealNicServer& make_server(std::size_t workers) {
    core::IdealNicServer::Config config;
    config.worker_count = workers;
    config.outstanding_per_worker = 2;
    config.preemption_enabled = false;
    server = std::make_unique<core::IdealNicServer>(sim, network, params,
                                                    config);
    return *server;
  }

  std::unique_ptr<PacedClient> make_client(
      std::shared_ptr<ServiceDistribution> service, std::uint32_t target) {
    PacedClient::Config config;
    config.client_id = 1;
    config.mac = net::MacAddress::from_index(1);
    config.ip = net::Ipv4Address::from_index(1);
    config.server_mac = server->ingress_mac();
    config.server_ip = server->ingress_ip();
    config.server_port = server->port();
    config.target_queue_depth = target;
    return std::make_unique<PacedClient>(sim, network, config,
                                         std::move(service), sim::Rng(5));
  }

  sim::Simulator sim;
  core::ModelParams params;
  net::EthernetSwitch network;
  std::unique_ptr<core::IdealNicServer> server;
};

TEST_F(PacedFixture, EveryRequestGetsExactlyOneResponse) {
  make_server(2);
  auto client = make_client(
      std::make_shared<FixedDistribution>(sim::Duration::micros(5)), 4);
  std::uint64_t responses = 0;
  client->set_on_response([&](const ResponseRecord&) { ++responses; });
  client->start(sim::TimePoint::origin() + sim::Duration::millis(20));
  sim.run_until(sim::TimePoint::origin() + sim::Duration::millis(25));

  EXPECT_GT(client->sent(), 1000u);
  EXPECT_EQ(client->received(), client->sent());
  EXPECT_EQ(responses, client->received());
  EXPECT_EQ(client->outstanding(), 0u);
}

TEST_F(PacedFixture, WindowGrowsToSaturateIdleServer) {
  make_server(8);
  auto client = make_client(
      std::make_shared<FixedDistribution>(sim::Duration::micros(5)), 8);
  const double initial = client->window();
  client->start(sim::TimePoint::origin() + sim::Duration::millis(20));
  sim.run_until(sim::TimePoint::origin() + sim::Duration::millis(20));
  // 8 workers x 5 us need ~tens of requests in flight to stay busy; the
  // window must have grown well past its initial value.
  EXPECT_GT(client->window(), initial * 1.5);
  // And achieved throughput should be a solid fraction of the 1.55 MRPS
  // capacity even with a single client.
  const double achieved =
      static_cast<double>(client->received()) / 20e-3;
  EXPECT_GT(achieved, 0.4e6);
}

TEST_F(PacedFixture, WindowBacksOffWhenServerQueueBuilds) {
  // One worker and slow requests: any window above ~target immediately
  // reports deep queues, so AIMD must keep the window small.
  make_server(1);
  auto client = make_client(
      std::make_shared<FixedDistribution>(sim::Duration::micros(100)), 2);
  client->start(sim::TimePoint::origin() + sim::Duration::millis(30));
  sim.run_until(sim::TimePoint::origin() + sim::Duration::millis(30));
  EXPECT_LT(client->window(), 16.0);
  EXPECT_GT(client->received(), 100u);
}

TEST_F(PacedFixture, BoundedTailUnderPersistentOverpressure) {
  make_server(2);
  auto client = make_client(
      std::make_shared<FixedDistribution>(sim::Duration::micros(10)), 4);
  stats::LatencyRecorder recorder;
  recorder.set_window(sim::TimePoint::origin() + sim::Duration::millis(5),
                      sim::TimePoint::origin() + sim::Duration::millis(40));
  client->set_on_response(
      [&](const ResponseRecord& record) { recorder.record(record); });
  client->start(sim::TimePoint::origin() + sim::Duration::millis(40));
  sim.run_until(sim::TimePoint::origin() + sim::Duration::millis(45));

  // The closed loop cannot melt down: p99 stays within a small multiple of
  // the no-load round trip (~20 us) instead of growing with time.
  EXPECT_LT(recorder.overall().quantile(0.99).to_micros(), 200.0);
  EXPECT_GT(recorder.completed_in_window(), 1000u);
}

}  // namespace
}  // namespace nicsched::workload
