#include "workload/replay.h"

#include <gtest/gtest.h>

#include "net/ethernet_switch.h"
#include "workload/client.h"

namespace nicsched::workload {
namespace {

TEST(WorkloadTrace, ParsesCsvWithCommentsAndBlankLines) {
  const char* csv =
      "# gap_ns,work_ns,kind\n"
      "1000,5000,0\n"
      "\n"
      "2000,100000,1\r\n"
      "500,750\n";
  const auto trace = WorkloadTrace::parse_csv(csv);
  ASSERT_TRUE(trace.has_value());
  ASSERT_EQ(trace->size(), 3u);
  EXPECT_EQ(trace->entry(0).gap, sim::Duration::nanos(1000));
  EXPECT_EQ(trace->entry(0).work, sim::Duration::nanos(5000));
  EXPECT_EQ(trace->entry(1).kind, 1);
  EXPECT_EQ(trace->entry(2).kind, 0);  // kind column optional
}

TEST(WorkloadTrace, RejectsMalformedCsv) {
  std::string error;
  EXPECT_FALSE(WorkloadTrace::parse_csv("garbage\n", &error).has_value());
  EXPECT_NE(error.find("line 1"), std::string::npos);
  EXPECT_FALSE(WorkloadTrace::parse_csv("1000\n", &error).has_value());
  EXPECT_FALSE(WorkloadTrace::parse_csv("1000,2000,99999\n", &error)
                   .has_value());  // kind > uint16
  EXPECT_FALSE(WorkloadTrace::parse_csv("1000,-5\n", &error).has_value());
  EXPECT_FALSE(WorkloadTrace::parse_csv("1000,2000junk\n", &error)
                   .has_value());
  EXPECT_FALSE(WorkloadTrace::parse_csv("# only comments\n", &error)
                   .has_value());
}

TEST(WorkloadTrace, MeansMatchEntries) {
  const auto trace =
      WorkloadTrace::parse_csv("10000,1000\n10000,3000\n");  // 100k RPS
  ASSERT_TRUE(trace.has_value());
  EXPECT_EQ(trace->mean_work(), sim::Duration::nanos(2000));
  EXPECT_NEAR(trace->mean_rate_rps(), 100'000.0, 1.0);
}

TEST(WorkloadTrace, ReplayLoopsInOrder) {
  auto trace = std::make_shared<WorkloadTrace>(
      *WorkloadTrace::parse_csv("100,1,0\n200,2,1\n300,3,2\n"));
  TraceArrivals arrivals(trace);
  TraceService service(trace);
  sim::Rng rng(1);
  for (int loop = 0; loop < 2; ++loop) {
    EXPECT_EQ(arrivals.next_gap(rng), sim::Duration::nanos(100));
    EXPECT_EQ(arrivals.next_gap(rng), sim::Duration::nanos(200));
    EXPECT_EQ(arrivals.next_gap(rng), sim::Duration::nanos(300));
    EXPECT_EQ(service.sample(rng).kind, 0);
    EXPECT_EQ(service.sample(rng).work, sim::Duration::nanos(2));
    EXPECT_EQ(service.sample(rng).kind, 2);
  }
}

TEST(WorkloadTrace, DrivesAClientWithExactTiming) {
  sim::Simulator sim;
  net::EthernetSwitch network(sim, sim::Duration::nanos(50));

  auto trace = std::make_shared<WorkloadTrace>(
      *WorkloadTrace::parse_csv("10000,1000,0\n20000,2000,1\n"));

  ClientMachine::Config config;
  config.client_id = 1;
  config.mac = net::MacAddress::from_index(1);
  config.ip = net::Ipv4Address::from_index(1);
  config.server_mac = net::MacAddress::from_index(99);  // sink; no responses
  config.server_ip = net::Ipv4Address::from_index(99);

  ClientMachine client(sim, network, config,
                       std::make_shared<TraceService>(trace),
                       std::make_unique<TraceArrivals>(trace), sim::Rng(1));

  std::vector<sim::TimePoint> issue_times;
  client.set_on_issue([&](sim::TimePoint at) { issue_times.push_back(at); });
  client.start(sim::TimePoint::origin() + sim::Duration::micros(100));
  sim.run_until(sim::TimePoint::origin() + sim::Duration::micros(100));

  // Gaps 10+20 us looping: arrivals at 10, 30, 40, 60, 70, 90 us.
  ASSERT_GE(issue_times.size(), 6u);
  EXPECT_EQ(issue_times[0], sim::TimePoint::origin() + sim::Duration::micros(10));
  EXPECT_EQ(issue_times[1], sim::TimePoint::origin() + sim::Duration::micros(30));
  EXPECT_EQ(issue_times[2], sim::TimePoint::origin() + sim::Duration::micros(40));
  EXPECT_EQ(issue_times[3], sim::TimePoint::origin() + sim::Duration::micros(60));
}

TEST(WorkloadTrace, EmptyTraceThrows) {
  EXPECT_THROW(WorkloadTrace({}), std::invalid_argument);
}

}  // namespace
}  // namespace nicsched::workload
