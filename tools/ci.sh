#!/usr/bin/env bash
# The repo's one-command CI gate, in three tiers:
#
#   1. tier-1: configure, build, full ctest — the bar every change must hold
#   2. perf smoke: the sim-core perf harness under NICSCHED_FAST=1 (schema
#      and throughput-nonzero hard-fail; speedup ratios informational on
#      loaded machines)
#   3. fault smoke: one-seed conservation invariant, same NICSCHED_FAST tier
#   4. rack smoke: ToR dispatch tests + the rack_sweep shape checks, same tier
#   5. tenant smoke: tenant dispatch/shim/conservation tests + the
#      tenant_isolation interference checks, same NICSCHED_FAST tier
#   6. parallel smoke: the sharded-engine determinism tier (serial
#      bit-identity + shard-count digest invariance), same NICSCHED_FAST tier
#   7. rdma smoke: the RDMA-assisted dispatch tier (queue-pair + rain-server
#      unit tests, the dispatch-path ablation and rain_sweep shape checks),
#      same NICSCHED_FAST tier
#   8. chaos smoke: the rack-scale fault-tolerance tier (chaos storms +
#      the rack_failover acceptance demo) under NICSCHED_FAST=1, then the
#      fault + chaos labels again in a separate ASan+UBSan build
#      ($BUILD_DIR-asan) — the fault paths tear down mid-flight state, so
#      they get the sanitizer pass
#
# Usage: tools/ci.sh [build-dir]    (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

echo "==> tier-1: configure + build + full test suite"
cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j
(cd "$BUILD_DIR" && ctest --output-on-failure -j)

echo "==> perf smoke (NICSCHED_FAST=1, ctest -L perf)"
(cd "$BUILD_DIR" && NICSCHED_FAST=1 ctest -L perf --output-on-failure)

echo "==> fault smoke (NICSCHED_FAST=1, ctest -L fault)"
(cd "$BUILD_DIR" && NICSCHED_FAST=1 ctest -L fault --output-on-failure)

echo "==> rack smoke (NICSCHED_FAST=1, ctest -L rack)"
(cd "$BUILD_DIR" && NICSCHED_FAST=1 ctest -L rack --output-on-failure)

echo "==> tenant smoke (NICSCHED_FAST=1, ctest -L tenant)"
(cd "$BUILD_DIR" && NICSCHED_FAST=1 ctest -L tenant --output-on-failure)

echo "==> parallel smoke (NICSCHED_FAST=1, ctest -L parallel)"
(cd "$BUILD_DIR" && NICSCHED_FAST=1 ctest -L parallel --output-on-failure)

echo "==> rdma smoke (NICSCHED_FAST=1, ctest -L rdma)"
(cd "$BUILD_DIR" && NICSCHED_FAST=1 ctest -L rdma --output-on-failure)

echo "==> chaos smoke (NICSCHED_FAST=1, ctest -L chaos)"
(cd "$BUILD_DIR" && NICSCHED_FAST=1 ctest -L chaos --output-on-failure)

echo "==> sanitizer pass: fault + chaos labels under ASan+UBSan"
cmake -B "$BUILD_DIR-asan" -S . -DNICSCHED_SANITIZE=ON
cmake --build "$BUILD_DIR-asan" -j
(cd "$BUILD_DIR-asan" && NICSCHED_FAST=1 ctest -L 'fault|chaos' --output-on-failure)

echo "==> ci.sh: all tiers green"
