// run_benches: the single documented command behind BENCH_SIM_CORE.json.
//
// Runs every perf kernel (event-queue ops/sec, end-to-end events/sec per
// server kind, switch frames/sec) in-process, loads the recorded baseline
// (bench/baseline_sim_core.json, measured at the pre-fast-path commit on the
// same container class), and emits BENCH_SIM_CORE.json into
// NICSCHED_RESULT_DIR containing baseline_*, current_* and speedup_* metrics
// plus PASS/FAIL checks — so every future PR can show its perf delta against
// the recorded trajectory.
//
//   ./build/tools/run_benches                 # compare against the baseline
//   ./build/tools/run_benches --record-baseline
//                                             # (re)write the baseline file
//   --baseline=<path>                         # explicit baseline location
//
// NICSCHED_BASELINE_FILE overrides the default baseline path; NICSCHED_FAST
// shrinks budgets and downgrades the >=1.5x gate to informational (tiny
// budgets are too noisy to enforce a ratio).
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "exp/exp.h"
#include "perf_common.h"
#include "stats/table.h"

namespace {

std::string default_baseline_path() {
  if (const char* env = std::getenv("NICSCHED_BASELINE_FILE")) {
    if (*env != '\0') return env;
  }
#ifdef NICSCHED_SOURCE_DIR
  return std::string(NICSCHED_SOURCE_DIR) + "/bench/baseline_sim_core.json";
#else
  return "baseline_sim_core.json";
#endif
}

std::optional<nicsched::exp::ParsedResults> load_baseline(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return nicsched::exp::parse_json_results(buffer.str());
}

double find_metric(const nicsched::exp::ParsedResults& results,
                   const std::string& name) {
  for (const auto& [key, value] : results.metrics) {
    if (key == name) return value;
  }
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nicsched;

  bool record_baseline = false;
  std::string baseline_path = default_baseline_path();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--record-baseline") {
      record_baseline = true;
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(std::string("--baseline=").size());
    } else {
      std::cerr << "usage: run_benches [--record-baseline] "
                   "[--baseline=<path>]\n";
      return 2;
    }
  }

  const std::vector<perf::Measurement> current = perf::all_measurements();

  if (record_baseline) {
    exp::JsonResultSink sink("sim_core_baseline",
                             "Simulator-core perf baseline");
    for (const auto& m : current) {
      sink.add_metric(m.name + "_per_sec", m.per_sec);
      sink.add_metric(m.name + "_units", static_cast<double>(m.units));
    }
    if (!sink.write_file(baseline_path)) {
      std::cerr << "FAIL  could not write baseline " << baseline_path << "\n";
      return 1;
    }
    std::cout << "recorded baseline -> " << baseline_path << "\n";
    for (const auto& m : current) {
      std::cout << "  " << m.name << ": " << stats::fmt(m.per_sec, 0)
                << "/s\n";
    }
    return 0;
  }

  const auto baseline = load_baseline(baseline_path);
  const bool fast = exp::fast_mode();

  exp::JsonResultSink sink("SIM_CORE",
                           "Simulator-core perf trajectory vs baseline");
  stats::Table table({"metric", "baseline/s", "current/s", "speedup"});
  bool ok = true;
  double min_e2e_speedup = -1.0;
  double rack_serial_per_sec = 0.0;
  double rack_sharded_per_sec = 0.0;
  for (const auto& m : current) {
    const double base =
        baseline ? find_metric(*baseline, m.name + "_per_sec") : 0.0;
    const double speedup = base > 0.0 ? m.per_sec / base : 0.0;
    sink.add_metric("baseline_" + m.name + "_per_sec", base);
    sink.add_metric("current_" + m.name + "_per_sec", m.per_sec);
    sink.add_metric("speedup_" + m.name, speedup);
    // One row per kernel so downstream tooling sees the trajectory in the
    // rows table too, not only in flat metrics: achieved_rps carries the
    // wall-clock throughput, issued/completed the units retired.
    exp::ResultRow row;
    row.series = m.name;
    row.summary.achieved_rps = m.per_sec;
    row.summary.issued = m.units;
    row.summary.completed = m.units;
    sink.add(row);
    table.add_row({m.name, stats::fmt(base, 0), stats::fmt(m.per_sec, 0),
                   base > 0.0 ? stats::fmt(speedup, 2) + "x" : "n/a"});
    if (m.name.rfind("e2e_", 0) == 0 && base > 0.0) {
      if (min_e2e_speedup < 0.0 || speedup < min_e2e_speedup) {
        min_e2e_speedup = speedup;
      }
    }
    if (m.name == "rack_serial") rack_serial_per_sec = m.per_sec;
    if (m.name.rfind("rack_shard", 0) == 0) rack_sharded_per_sec = m.per_sec;
    const bool nonzero = m.per_sec > 0.0 && m.units > 0;
    sink.add_check(m.name + " throughput > 0", nonzero);
    ok = ok && nonzero;
  }
  sink.add_metric("min_e2e_speedup", min_e2e_speedup);
  table.print(std::cout);
  std::cout << "\n";

  // Parallel-engine speedup, informational only: >= 2x needs >= 4 real
  // cores, and CI containers often pin this binary to one.
  const double rack_parallel_speedup =
      rack_serial_per_sec > 0.0 ? rack_sharded_per_sec / rack_serial_per_sec
                                : 0.0;
  sink.add_metric("rack_parallel_speedup", rack_parallel_speedup);
  std::cout << "INFO  sharded rack engine vs serial: "
            << stats::fmt(rack_parallel_speedup, 2) << "x ("
            << std::thread::hardware_concurrency() << " hardware threads)\n";

  const bool have_baseline = baseline.has_value();
  sink.add_check("baseline loaded from " + baseline_path, have_baseline);
  if (!have_baseline) {
    std::cout << "FAIL  baseline not loadable: " << baseline_path << "\n";
    ok = false;
  }
  // The headline gate: >=1.5x events/sec on the fig3-shaped end-to-end
  // workload, minimum across server kinds. Informational under NICSCHED_FAST.
  const bool gate = min_e2e_speedup >= 1.5;
  std::cout << (gate ? "PASS" : (fast ? "INFO" : "FAIL"))
            << "  end-to-end events/sec >= 1.5x baseline (min across kinds: "
            << stats::fmt(min_e2e_speedup, 2) << "x)\n";
  sink.add_check("end-to-end events/sec >= 1.5x baseline (min across kinds)",
                 fast ? true : gate);
  ok = ok && (fast || gate);

  const std::string path = exp::result_file_path("BENCH_SIM_CORE.json");
  std::ostringstream buffer;
  sink.write(buffer);
  const bool schema_ok = exp::parse_json_results(buffer.str()).has_value();
  {
    std::ofstream out(path);
    if (out) out << buffer.str();
    if (!out) std::cerr << "warning: could not write " << path << "\n";
  }
  std::cout << (schema_ok ? "PASS" : "FAIL")
            << "  BENCH_SIM_CORE.json parses back (schema valid)\n";
  ok = ok && schema_ok;
  std::cout << (ok ? "\nOK\n" : "\nFAILED\n");
  return ok ? 0 : 1;
}
